//! Shape tests: the qualitative claims of each paper figure must hold in
//! the reproduction — who wins, monotonicity, crossovers — at test scale.
//! (EXPERIMENTS.md records the full-scale numbers.)

use sdpcm::core::experiments::{self, run_cell};
use sdpcm::core::{ExperimentParams, Scheme};
use sdpcm::osalloc::NmRatio;
use sdpcm::trace::BenchKind;

fn params() -> ExperimentParams {
    ExperimentParams {
        refs_per_core: 1_500,
        ..ExperimentParams::quick_test()
    }
}

#[test]
fn table1_reproduces_exactly() {
    let rows = experiments::table1();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].direction, "Word-line");
    assert!((rows[0].temp_c - 310.0).abs() < 0.5);
    assert!((rows[0].error_rate - 0.099).abs() < 1e-6);
    assert_eq!(rows[1].direction, "Bit-line");
    assert!((rows[1].temp_c - 320.0).abs() < 0.5);
    assert!((rows[1].error_rate - 0.115).abs() < 1e-6);
}

#[test]
fn fig4_shape_bitline_dominates_and_gems_is_mildest() {
    // Paper: WL errors well mitigated (avg ~0.4); up to 9 errors per
    // adjacent line; gemsFDTD flips few bits so it has the fewest errors.
    let p = params();
    let mcf = run_cell(&Scheme::baseline(), BenchKind::Mcf, &p);
    let gems = run_cell(&Scheme::baseline(), BenchKind::GemsFdtd, &p);

    let mcf_bl = mcf.ctrl.bl_errors_per_neighbor.mean();
    let mcf_wl = mcf.ctrl.wl_errors.mean();
    assert!(
        mcf_bl > mcf_wl,
        "bit-line errors dominate: {mcf_bl} vs {mcf_wl}"
    );
    assert!(mcf_wl < 2.0, "DIN keeps word-line errors low: {mcf_wl}");
    assert!(
        mcf.ctrl.bl_errors_per_neighbor.max_observed().unwrap_or(0) >= 5,
        "heavy writes occasionally disturb many cells at once"
    );
    assert!(
        gems.ctrl.bl_errors_per_neighbor.mean() < mcf_bl / 2.0,
        "gemsFDTD changes fewer bits and must see far fewer errors"
    );
}

#[test]
fn fig5_shape_vnc_overhead_splits_into_verify_and_correct() {
    let p = params();
    let din = run_cell(&Scheme::din(), BenchKind::Lbm, &p);
    let vnc = run_cell(&Scheme::baseline(), BenchKind::Lbm, &p);
    let total = vnc.cpi() / din.cpi() - 1.0;
    assert!(total > 0.10, "basic VnC has substantial overhead: {total}");
    let v = vnc.ctrl.phases.verification_total();
    let c = vnc.ctrl.phases.correction_total();
    assert!(v.0 > 0 && c.0 > 0, "both components present");
}

#[test]
fn fig12_13_shape_ecp_entries_slash_corrections() {
    // ECP-0 degenerates to basic VnC (~1.8 corrections/write in the
    // paper); ECP-6 nearly eliminates corrections and improves speed.
    let bench = BenchKind::Mcf;
    let p0 = ExperimentParams {
        ecp_entries: 0,
        ..params()
    };
    let p6 = ExperimentParams {
        ecp_entries: 6,
        ..params()
    };
    let ecp0 = run_cell(&Scheme::baseline(), bench, &p0);
    let ecp6 = run_cell(&Scheme::lazyc(), bench, &p6);

    let c0 = ecp0.ctrl.corrections_per_write();
    let c6 = ecp6.ctrl.corrections_per_write();
    assert!(
        c0 > 1.0,
        "ECP-0 corrects nearly every write's neighbours: {c0}"
    );
    assert!(c6 < 0.3, "ECP-6 buffers almost everything: {c6}");
    assert!(
        ecp6.speedup_vs(&ecp0) > 1.05,
        "more ECP entries must speed things up"
    );
}

#[test]
fn fig14_shape_aging_costs_little() {
    let rows = experiments::fig14(
        &ExperimentParams {
            refs_per_core: 600,
            ..params()
        },
        &[0.0, 1.0],
    );
    assert_eq!(rows.len(), 2);
    let eol = rows[1].speedup_vs_fresh;
    assert!(eol <= 1.01, "aging cannot help: {eol}");
    assert!(eol > 0.9, "end-of-life degradation stays small: {eol}");
}

#[test]
fn fig15_shape_bigger_queues_help_preread() {
    let bench = BenchKind::Mcf;
    let speedup_at = |q: usize| {
        let p = ExperimentParams {
            write_queue_cap: q,
            refs_per_core: 2_000,
            ..params()
        };
        let base = run_cell(&Scheme::baseline(), bench, &p);
        run_cell(&Scheme::lazyc_preread(), bench, &p).speedup_vs(&base)
    };
    let s8 = speedup_at(8);
    let s64 = speedup_at(64);
    assert!(
        s64 > s8 * 0.95,
        "a larger write queue must not hurt PreRead: 8→{s8}, 64→{s64}"
    );
}

#[test]
fn fig16_shape_ratio_dial_is_monotone() {
    // 1:2 best, then 2:3, then 3:4, then 1:1 (Figure 16's monotone dial).
    let bench = BenchKind::Lbm;
    let p = ExperimentParams {
        refs_per_core: 2_000,
        ..params()
    };
    let base = run_cell(&Scheme::baseline(), bench, &p);
    let s = |r: NmRatio| run_cell(&Scheme::baseline_with_ratio(r), bench, &p).speedup_vs(&base);
    let s12 = s(NmRatio::one_two());
    let s23 = s(NmRatio::two_three());
    let s34 = s(NmRatio::three_four());
    assert!(
        s12 > s23 && s23 > s34 && s34 > 0.95,
        "monotone ratio dial violated: 1:2={s12} 2:3={s23} 3:4={s34}"
    );
}

#[test]
fn fig17_18_shape_ecp_chip_ages_faster_than_data_chips() {
    let p = params();
    let r = run_cell(&Scheme::lazyc(), BenchKind::Mcf, &p);
    let data = r.wear.data_lifetime_norm();
    let ecp = r.wear.ecp_lifetime_norm();
    assert!(data > 0.99, "data-chip degradation is tiny: {data}");
    assert!(
        ecp < data,
        "ECP chip carries the WD records: {ecp} vs {data}"
    );
    assert!(ecp > 0.5, "but the ECP chip is not devastated: {ecp}");
}

#[test]
fn capacity_comparisons_match_section_6_1() {
    let c = sdpcm::pcm::capacity::equal_area_comparison();
    assert!((c.improvement - 0.80).abs() < 0.01);
    let (din, sd, _) = sdpcm::pcm::capacity::equal_size_chip_comparison();
    assert_eq!((din, sd), (18, 10));
}
