//! Golden determinism contract of the capture/replay layer.
//!
//! The whole point of capture-once/replay-many is that it changes only
//! *wall-clock time*, never *results*: for every scheme the paper
//! compares, a replayed run must reproduce the inline run bit for bit —
//! the full `RunStats` (cycles, controller counters, wear, energy) and
//! the device's final content digest — at any sweep worker count. These
//! tests pin that contract; if one fails, replay mode is simulating a
//! different experiment and every figure built on it is suspect.

use std::sync::Arc;

use sdpcm_core::experiments::{run_cell, run_cell_replay};
use sdpcm_core::hiersim::{HierarchyParams, HierarchySim};
use sdpcm_core::sweep::parallel_map;
use sdpcm_core::{ExperimentParams, HierTrace, Scheme, SystemSim, TraceStore};
use sdpcm_trace::{BenchKind, RefTrace, Workload};

fn tiny() -> ExperimentParams {
    ExperimentParams {
        refs_per_core: 400,
        ..ExperimentParams::quick_test()
    }
}

/// Inline run of one cell: stats plus the device content digest.
fn inline_cell(scheme: &Scheme, bench: BenchKind, params: &ExperimentParams) -> (String, u64) {
    let mut sim = SystemSim::build(scheme, bench, params).unwrap();
    let stats = sim.run().unwrap();
    (
        format!("{stats:?}"),
        sim.controller().store().content_digest(),
    )
}

/// Replay run of one cell against a shared trace.
fn replay_cell(
    scheme: &Scheme,
    bench: BenchKind,
    params: &ExperimentParams,
    trace: &Arc<RefTrace>,
) -> (String, u64) {
    let workload = Workload::homogeneous(bench);
    let mut sim = SystemSim::build_replay(scheme, &workload, params, trace).unwrap();
    let stats = sim.run().unwrap();
    (
        format!("{stats:?}"),
        sim.controller().store().content_digest(),
    )
}

#[test]
fn every_figure11_scheme_replays_bit_identically_at_any_worker_count() {
    let params = tiny();
    let bench = BenchKind::Mcf;
    let schemes = Scheme::figure11_set();

    // Sequential inline reference, one run per scheme.
    let reference: Vec<(String, u64)> = schemes
        .iter()
        .map(|s| inline_cell(s, bench, &params))
        .collect();

    // One shared capture, replayed across the scheme set at 1 and 8
    // workers: all three result sets must be byte-identical.
    let trace = Arc::new(RefTrace::capture(
        &Workload::homogeneous(bench),
        params.seed,
        params.refs_per_core,
    ));
    for workers in [1, 8] {
        let replayed = parallel_map(&schemes, workers, |s| {
            replay_cell(s, bench, &params, &trace)
        });
        assert_eq!(
            replayed, reference,
            "replay diverged from inline at {workers} workers"
        );
    }
}

#[test]
fn trace_store_cells_match_inline_cells() {
    // The figure runners' actual path: run_cell_replay over a store.
    let params = tiny();
    let store = TraceStore::in_memory();
    for scheme in [Scheme::baseline(), Scheme::lazyc_preread()] {
        for bench in [BenchKind::Wrf, BenchKind::Mcf] {
            let a = run_cell(&scheme, bench, &params);
            let b = run_cell_replay(&store, &scheme, bench, &params);
            assert_eq!(a, b, "{}/{}", scheme.name, bench.name());
        }
    }
}

#[test]
fn hierarchy_replay_matches_inline_for_figure11_schemes() {
    let params = ExperimentParams::quick_test();
    let hparams = HierarchyParams::quick_test();
    let bench = BenchKind::Mcf;
    let trace = HierTrace::capture(bench, &params, &hparams);
    for scheme in Scheme::figure11_set() {
        let mut inline = HierarchySim::build(scheme.clone(), bench, &params, &hparams).unwrap();
        let a = inline.run().unwrap();
        let mut replay =
            HierarchySim::build_replay(scheme.clone(), bench, &params, &hparams, &trace).unwrap();
        let b = replay.run().unwrap();
        assert_eq!(a, b, "{} stats diverged", scheme.name);
        assert_eq!(inline.pcm_traffic(), replay.pcm_traffic());
        assert_eq!(
            inline.controller().store().content_digest(),
            replay.controller().store().content_digest(),
            "{} device state diverged",
            scheme.name
        );
    }
}

#[test]
fn profiler_gate_does_not_perturb_results() {
    // The internal profiler must be observationally free: a cell run
    // with probes firing (`SDPCM_PROF=1` / `--profile`) produces the
    // same `RunStats` and device content digest as one without.
    let params = tiny();
    for scheme in [Scheme::baseline(), Scheme::lazyc_preread()] {
        sdpcm_engine::prof::set_enabled(false);
        let off = inline_cell(&scheme, BenchKind::Mcf, &params);
        sdpcm_engine::prof::set_enabled(true);
        let on = inline_cell(&scheme, BenchKind::Mcf, &params);
        sdpcm_engine::prof::set_enabled(false);
        assert_eq!(off, on, "{}: probes changed the simulation", scheme.name);
    }
}

#[test]
fn corrupted_or_stale_disk_trace_is_rejected_and_regenerated() {
    let dir = std::env::temp_dir().join(format!("sdpcm-replay-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let params = tiny();
    let workload = Workload::homogeneous(BenchKind::Wrf);
    let reference = RefTrace::capture(&workload, params.seed, params.refs_per_core);
    let path = dir.join(format!("{:016x}.sdpt", reference.meta.content_key()));
    std::fs::create_dir_all(&dir).unwrap();

    // Bit-rotted cache entry: the digest check must reject it and the
    // store must recapture (and repair the file).
    let mut corrupt = reference.to_bytes();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    std::fs::write(&path, &corrupt).unwrap();
    let store = TraceStore::with_dir(dir.clone());
    let got = store.get(&workload, params.seed, params.refs_per_core);
    assert_eq!(*got, reference);
    assert_eq!(std::fs::read(&path).unwrap(), reference.to_bytes());

    // A trace from another schema version must be rejected too.
    let mut stale = reference.to_bytes();
    stale[4] ^= 0x01; // schema version follows the 4-byte magic
    let tail = stale.len() - 8;
    let digest = sdpcm_trace::wire::fnv1a(&stale[..tail]);
    stale[tail..].copy_from_slice(&digest.to_le_bytes());
    std::fs::write(&path, &stale).unwrap();
    let got = TraceStore::with_dir(dir.clone()).get(&workload, params.seed, params.refs_per_core);
    assert_eq!(*got, reference);

    // And the replayed cell still matches the inline cell end to end.
    let scheme = Scheme::lazyc();
    let a = run_cell(&scheme, BenchKind::Wrf, &params);
    let b = run_cell_replay(
        &TraceStore::with_dir(dir.clone()),
        &scheme,
        BenchKind::Wrf,
        &params,
    );
    assert_eq!(a, b);
    let _ = std::fs::remove_dir_all(&dir);
}
