//! Property-based tests (proptest) on the core data structures and
//! invariants: differential writes, DIN coding, ECP tables, the buddy
//! allocator, (n:m) marking, and the vulnerable-pattern analysis.

use proptest::collection::vec;
use proptest::prelude::*;

use sdpcm::engine::{ChanceGate, SimRng};
use sdpcm::memctrl::StartGap;
use sdpcm::osalloc::buddy::BuddyAllocator;
use sdpcm::osalloc::dma::DmaController;
use sdpcm::osalloc::NmRatio;
use sdpcm::pcm::ecp::{EcpKind, EcpTable};
use sdpcm::pcm::line::{DiffMask, LineBuf};
use sdpcm::trace::stream::StreamKernels;
use sdpcm::wd::din::{DinCodec, DinFlags};
use sdpcm::wd::pattern::{bitline_vulnerable, wordline_vulnerable};

fn line_strategy() -> impl Strategy<Value = LineBuf> {
    proptest::array::uniform8(any::<u64>()).prop_map(LineBuf::from_words)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn diff_apply_realizes_target(old in line_strategy(), new in line_strategy()) {
        let d = DiffMask::between(&old, &new);
        prop_assert_eq!(d.apply(&old), new);
        // SETs and RESETs partition the changed bits.
        prop_assert_eq!(d.set_count() + d.reset_count(), old.xor(&new).count_ones());
        // A diff against self is empty.
        prop_assert!(DiffMask::between(&new, &new).is_empty());
    }

    #[test]
    fn diff_masks_are_disjoint(old in line_strategy(), new in line_strategy()) {
        let d = DiffMask::between(&old, &new);
        for b in 0..512 {
            prop_assert!(!(d.is_set(b) && d.is_reset(b)), "bit {} both set and reset", b);
            if d.is_programmed(b) {
                prop_assert_ne!(old.bit(b), new.bit(b));
            } else {
                prop_assert_eq!(old.bit(b), new.bit(b));
            }
        }
    }

    #[test]
    fn line_byte_roundtrip(l in line_strategy()) {
        prop_assert_eq!(LineBuf::from_bytes(&l.to_bytes()), l);
        let ones: Vec<usize> = l.iter_ones().collect();
        prop_assert_eq!(ones.len() as u32, l.count_ones());
    }

    #[test]
    fn din_roundtrips_any_history(
        plains in vec(line_strategy(), 1..6),
        group_pow in 3usize..7, // 8..64-bit groups
    ) {
        let codec = DinCodec::new(1 << group_pow);
        let mut stored = LineBuf::zeroed();
        let mut flags = DinFlags::default();
        for plain in plains {
            let (enc, f) = codec.encode(&plain, &stored, flags);
            prop_assert_eq!(codec.decode(&enc, f), plain);
            stored = enc;
            flags = f;
        }
    }

    #[test]
    fn din_never_beats_raw_at_vulnerability(
        old in line_strategy(),
        new in line_strategy(),
    ) {
        // The encoder's greedy choice must not be worse than identity
        // coding when starting from identical stored state.
        let codec = DinCodec::paper_default();
        let raw_diff = DiffMask::between(&old, &new);
        let raw_victims = wordline_vulnerable(&new, &raw_diff).len();
        let (enc, _) = codec.encode(&new, &old, DinFlags::default());
        let din_diff = DiffMask::between(&old, &enc);
        let din_victims = wordline_vulnerable(&enc, &din_diff).len();
        prop_assert!(din_victims <= raw_victims,
            "DIN produced more victims ({}) than identity ({})", din_victims, raw_victims);
    }

    #[test]
    fn vulnerable_patterns_follow_the_rules(
        old in line_strategy(),
        new in line_strategy(),
        neighbor in line_strategy(),
    ) {
        let diff = DiffMask::between(&old, &new);
        for v in wordline_vulnerable(&new, &diff) {
            let b = v as usize;
            prop_assert!(!diff.is_programmed(b), "victim must be idle");
            prop_assert!(!new.bit(b), "victim must store 0");
            let l = b > 0 && diff.is_reset(b - 1);
            let r = b + 1 < 512 && diff.is_reset(b + 1);
            prop_assert!(l || r, "victim must neighbour a RESET");
        }
        for v in bitline_vulnerable(&diff, &neighbor) {
            let b = v as usize;
            prop_assert!(diff.is_reset(b), "bit-line victim under a RESET position");
            prop_assert!(!neighbor.bit(b), "bit-line victim stores 0");
        }
    }

    #[test]
    fn ecp_patch_fixes_exactly_recorded_cells(
        raw in line_strategy(),
        entries in vec((0u16..512, any::<bool>()), 0..6),
    ) {
        let mut t = EcpTable::new(6);
        for (bit, val) in &entries {
            prop_assert!(t.try_record(*bit, *val, EcpKind::Disturb));
        }
        let patched = t.patch(&raw);
        for b in 0..512u16 {
            let expected = t.entries().iter().find(|e| e.bit == b)
                .map_or(raw.bit(b as usize), |e| e.value);
            prop_assert_eq!(patched.bit(b as usize), expected);
        }
    }

    #[test]
    fn ecp_capacity_is_respected(
        cap in 0usize..8,
        bits in vec(0u16..512, 0..20),
    ) {
        let mut t = EcpTable::new(cap);
        for b in bits {
            let _ = t.try_record(b, false, EcpKind::Disturb);
            prop_assert!(t.entries().len() <= cap);
            prop_assert_eq!(t.free_slots(), cap - t.entries().len());
        }
        t.clear_disturb();
        prop_assert_eq!(t.free_slots(), cap);
    }

    #[test]
    fn buddy_conservation(
        total in 1u64..512,
        ops in vec((0u8..5, any::<bool>()), 1..40),
    ) {
        let mut b = BuddyAllocator::new(total);
        let mut held: Vec<(u64, u8)> = Vec::new();
        for (order, free_instead) in ops {
            if free_instead && !held.is_empty() {
                let (base, order) = held.swap_remove(0);
                b.free(base, order);
            } else if let Some(base) = b.alloc(order) {
                // Alignment and range invariants.
                prop_assert_eq!(base % (1 << order), 0);
                prop_assert!(base + (1 << order) <= total);
                held.push((base, order));
            }
            let held_pages: u64 = held.iter().map(|(_, o)| 1u64 << o).sum();
            prop_assert_eq!(b.free_pages() + held_pages, total);
        }
        // Outstanding blocks never overlap.
        let mut pages = std::collections::HashSet::new();
        for (base, order) in &held {
            for p in *base..*base + (1 << order) {
                prop_assert!(pages.insert(p), "page {} double-owned", p);
            }
        }
    }

    #[test]
    fn nm_marking_is_periodic_within_blocks(n in 1u8..5, m_extra in 0u8..4, strip in 0u64..100_000) {
        let m = n + m_extra;
        let ratio = NmRatio::new(n, m);
        // Marking depends only on the position within the 64 MB block.
        let in_block = strip % 1024;
        let twin = (strip + 1024 * 7) % (1024 * 128); // same position, other block
        let twin = twin - twin % 1024 + in_block;
        prop_assert_eq!(ratio.is_nouse_strip(strip), ratio.is_nouse_strip(twin));
        // (n:m) marks exactly m-n positions per full group.
        let marked = (0..u64::from(m)).filter(|&p| ratio.is_nouse_strip(p)).count();
        if u64::from(m) <= 1024 {
            prop_assert_eq!(marked, usize::from(m - n));
        }
    }

    #[test]
    fn start_gap_stays_bijective_and_in_range(
        n in 2u64..64,
        moves in 0u32..300,
    ) {
        let mut sg = StartGap::new(n, 1);
        for _ in 0..moves {
            let mv = sg.advance_gap();
            prop_assert!(mv.from <= n && mv.to <= n);
            prop_assert_ne!(mv.from, mv.to);
        }
        let mut seen = std::collections::HashSet::new();
        for la in 0..n {
            let pa = sg.map(la);
            prop_assert!(pa <= n);
            prop_assert!(seen.insert(pa), "collision at logical {}", la);
        }
    }

    #[test]
    fn stream_kernels_cover_all_arrays(pages in 1u64..8, take in 100usize..2000) {
        let mut s = StreamKernels::new(0, pages, 5, SimRng::from_seed(9));
        let total = s.total_pages();
        let mut reads = 0u64;
        let mut writes = 0u64;
        for _ in 0..take {
            let r = s.next_ref();
            prop_assert!(r.vpage < total);
            prop_assert!(u64::from(r.slot) < 64);
            prop_assert!(r.gap >= 1);
            if r.is_write {
                writes += 1;
                prop_assert!(r.flip_bits >= 1);
            } else {
                reads += 1;
                prop_assert_eq!(r.flip_bits, 0);
            }
        }
        // 3:2 read:write within rounding of partial kernels.
        prop_assert!(reads + writes == take as u64);
    }

    #[test]
    fn dma_one_two_walks_are_usable_and_monotone(
        base_strip in 0u64..64,
        frames in 1u64..200,
    ) {
        let d = DmaController::new();
        let base = base_strip * 2 * 16; // even strip start
        let walk = d.walk(NmRatio::one_two(), base, frames).unwrap();
        prop_assert_eq!(walk.len() as u64, frames);
        prop_assert!(walk.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(walk.iter().all(|f| (f / 16) % 2 == 0));
    }

    #[test]
    fn chance_gate_matches_f64_reference(
        seed in any::<u64>(),
        p in prop_oneof![
            4 => 0.0f64..=1.0,
            2 => 0.0f64..=0.01, // WD probabilities live down here
            1 => proptest::sample::select(vec![
                0.0,
                f64::MIN_POSITIVE,
                1e-12,
                0.115, // the paper's per-write disturbance headline number
                0.5,
                1.0 - f64::EPSILON,
                1.0,
            ]),
        ],
        draws in 1usize..200,
    ) {
        // Two identically seeded streams: one decides through the
        // integer-threshold gate, the other through the historical f64
        // procedure (`unit() < p`, no draw at the clamped extremes).
        // Every decision must match AND both must consume the same
        // number of raw draws, or downstream draw order shifts.
        let mut gate_rng = SimRng::from_seed(seed);
        let mut ref_rng = SimRng::from_seed(seed);
        let gate = ChanceGate::new(p);
        for i in 0..draws {
            let expect = if p <= 0.0 {
                false
            } else if p >= 1.0 {
                true
            } else {
                ref_rng.unit() < p
            };
            prop_assert_eq!(
                gate_rng.chance_gate(gate), expect,
                "gate diverged from f64 reference at draw {} (p={})", i, p
            );
        }
        // Stream alignment: the next raw word is identical.
        prop_assert_eq!(gate_rng.next_u64(), ref_rng.next_u64());
    }

    #[test]
    fn reset_only_masks_only_reset(bits in vec(0usize..512, 0..32)) {
        let d = DiffMask::reset_only(&bits);
        prop_assert_eq!(d.set_count(), 0);
        for b in &bits {
            prop_assert!(d.is_reset(*b));
        }
        let mut unique = bits.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(d.reset_count() as usize, unique.len());
    }
}
