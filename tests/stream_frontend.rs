//! Driving the memory controller with the exact STREAM kernels — the
//! structural front end — and checking timing and consistency against
//! the statistical front end used by the figures.

use std::collections::HashMap;

use sdpcm::engine::{Cycle, SimRng};
use sdpcm::memctrl::{Access, AccessKind, CtrlConfig, CtrlScheme, MemoryController, ReqId};
use sdpcm::osalloc::NmRatio;
use sdpcm::pcm::geometry::{LineAddr, MemGeometry, PageId};
use sdpcm::pcm::line::LineBuf;
use sdpcm::trace::stream::{Kernel, StreamKernels};

/// Runs `n` STREAM references through a controller, one core, with the
/// arrays identity-mapped to the first frames.
fn run_stream(scheme: CtrlScheme, n: usize) -> (MemoryController, HashMap<LineAddr, LineBuf>) {
    let geometry = MemGeometry::small(256);
    let mut ctrl = MemoryController::new(
        CtrlConfig::table2(scheme),
        geometry,
        SimRng::from_seed_label(55, "stream-ctrl"),
    );
    let mut gen = StreamKernels::new(0, 8, 50, SimRng::from_seed_label(55, "stream-gen"));
    let mut rng = SimRng::from_seed_label(55, "stream-payload");
    let mut shadow: HashMap<LineAddr, LineBuf> = HashMap::new();
    let mut now = Cycle::ZERO;
    for i in 0..n {
        let r = gen.next_ref();
        now += Cycle(r.gap);
        let (bank, row) = geometry.page_to_bank_row(PageId(r.vpage));
        let addr = LineAddr {
            bank,
            row,
            slot: r.slot,
        };
        let kind = if r.is_write {
            let mut data = ctrl.latest_architectural(addr);
            for _ in 0..r.flip_bits {
                let b = rng.index(512);
                let v = data.bit(b);
                data.set_bit(b, !v);
            }
            shadow.insert(addr, data);
            AccessKind::Write(data)
        } else {
            AccessKind::Read
        };
        ctrl.submit(
            Access {
                id: ReqId(i as u64),
                addr,
                kind,
                ratio: NmRatio::one_one(),
                core: 0,
                arrive: now,
            },
            now,
        )
        .unwrap();
        let _ = ctrl.advance(now).unwrap();
    }
    ctrl.drain_all(now);
    while let Some(t) = ctrl.next_event() {
        let _ = ctrl.advance(t).unwrap();
        ctrl.drain_all(t);
    }
    (ctrl, shadow)
}

#[test]
fn stream_kernels_complete_under_full_sdpcm() {
    let (ctrl, shadow) = run_stream(CtrlScheme::lazyc_preread(), 6_000);
    assert!(ctrl.stats().writes.get() > 1_000);
    // Every line the kernels wrote reads back correctly.
    for (addr, expect) in &shadow {
        assert_eq!(ctrl.architectural_line(*addr), *expect, "line {addr}");
    }
}

#[test]
fn stream_sequential_writes_disturb_their_row_neighbors() {
    // Sequential kernel writes sweep whole rows; adjacent rows hold the
    // other arrays' data, so bit-line WD must appear and be handled.
    let (ctrl, _) = run_stream(CtrlScheme::baseline_vnc(), 6_000);
    assert!(
        ctrl.stats().bl_errors_per_neighbor.total() > 0,
        "verification must have observed neighbours"
    );
    assert!(
        ctrl.stats().verification_ops.get() > 1_000,
        "sequential writes verify their neighbours"
    );
}

#[test]
fn kernel_metadata_is_consistent() {
    for k in Kernel::ORDER {
        let (sources, dest) = k.operands();
        assert!(!sources.is_empty());
        assert!(!sources.contains(&dest), "{k:?} reads its own destination");
        assert!(dest < 3);
        assert!(sources.iter().all(|&s| s < 3));
    }
}
