//! Determinism of the parallel sweep executor: fanning cells across
//! worker threads must produce output bit-identical to the sequential
//! runner — figure rows, run statistics, and device digests — because
//! every cell's RNG streams derive only from its own parameters.

use sdpcm::core::experiments;
use sdpcm::core::{sweep, ExperimentParams, Scheme, SystemSim};
use sdpcm::trace::BenchKind;

fn params() -> ExperimentParams {
    ExperimentParams {
        refs_per_core: 400,
        ..ExperimentParams::quick_test()
    }
}

/// Runs a 9-cell (scheme × bench) sweep on `workers` workers and
/// returns, per cell, the run's cycle count, write count, ECP records,
/// wear state, and the device's content digest.
fn digest_sweep(workers: usize) -> Vec<(u64, u64, u64, String, u64)> {
    let schemes = [Scheme::baseline(), Scheme::lazyc(), Scheme::lazyc_preread()];
    let benches = [BenchKind::Mcf, BenchKind::Lbm, BenchKind::Stream];
    let mut cells: Vec<(&Scheme, BenchKind)> = Vec::new();
    for s in &schemes {
        for &b in &benches {
            cells.push((s, b));
        }
    }
    sweep::parallel_map(&cells, workers, |&(s, b)| {
        let mut sim = SystemSim::build(s, b, &params()).expect("known-good cell");
        let stats = sim.run().expect("cell completes");
        (
            stats.total_cycles,
            stats.writes,
            stats.ctrl.ecp_records.get(),
            format!("{:?}", stats.wear),
            sim.controller().store().content_digest(),
        )
    })
}

#[test]
fn sweep_output_identical_at_1_2_and_8_workers() {
    let sequential = digest_sweep(1);
    for workers in [2, 8] {
        assert_eq!(digest_sweep(workers), sequential, "workers={workers}");
    }
}

/// Serializes the tests that mutate the worker-count environment
/// variable (the test harness runs tests concurrently in one process).
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn figure_runners_identical_across_worker_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    // The figure runners pick their worker count from the environment;
    // pin it to 1 (sequential reference), then 2 and 8.
    let prev = std::env::var(sweep::WORKERS_ENV).ok();
    let p = params();

    std::env::set_var(sweep::WORKERS_ENV, "1");
    let fig4_seq = experiments::fig4(&p);
    let fig12_seq = experiments::fig12_13(&p, &[0, 4]);

    for workers in ["2", "8"] {
        std::env::set_var(sweep::WORKERS_ENV, workers);
        assert_eq!(experiments::fig4(&p), fig4_seq, "fig4 workers={workers}");
        assert_eq!(
            experiments::fig12_13(&p, &[0, 4]),
            fig12_seq,
            "fig12_13 workers={workers}"
        );
    }

    match prev {
        Some(v) => std::env::set_var(sweep::WORKERS_ENV, v),
        None => std::env::remove_var(sweep::WORKERS_ENV),
    }
}

#[test]
fn default_workers_honours_env_override() {
    let _guard = ENV_LOCK.lock().unwrap();
    let prev = std::env::var(sweep::WORKERS_ENV).ok();
    std::env::set_var(sweep::WORKERS_ENV, "3");
    assert_eq!(sweep::default_workers(), 3);
    std::env::set_var(sweep::WORKERS_ENV, "0");
    assert!(sweep::default_workers() >= 1, "0 falls back to autodetect");
    match prev {
        Some(v) => std::env::set_var(sweep::WORKERS_ENV, v),
        None => std::env::remove_var(sweep::WORKERS_ENV),
    }
}
