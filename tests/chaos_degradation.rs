//! Chaos-harness integration: a scheduled disturbance storm drives the
//! ECP table to exhaustion and the controller walks the whole graceful
//! degradation ladder — bounded retry, escalation to immediate
//! correction, and finally line decommission into the salvage pool —
//! while staying consistent and bit-reproducible across same-seed runs.

use std::collections::HashMap;

use sdpcm::core::{ExperimentParams, FaultPlan, Scheme, SystemSim};
use sdpcm::engine::{Cycle, SimRng};
use sdpcm::memctrl::{
    Access, AccessKind, CtrlConfig, CtrlScheme, CtrlStats, MemoryController, ReqId,
};
use sdpcm::osalloc::NmRatio;
use sdpcm::pcm::geometry::{BankId, LineAddr, MemGeometry, RowId};
use sdpcm::pcm::line::LineBuf;
use sdpcm::trace::BenchKind;
use sdpcm::wd::chaos::FaultEvent;

/// A tiny ECP table plus a tight ladder so every rung fires quickly.
/// The 4-entry queue keeps the small working set draining continuously
/// (a wider queue would coalesce it forever), and the 6-line pool is
/// smaller than the blast radius so pool-full rejections show up too.
fn ladder_config() -> CtrlConfig {
    CtrlConfig {
        ecp_entries: 1,
        write_queue_cap: 4,
        ecp_retry_cap: 1,
        decommission_after: 3,
        salvage_pool_lines: 6,
        ..CtrlConfig::table2(CtrlScheme::lazyc())
    }
}

/// Hammers a handful of adjacent lines under a scheduled WD storm and a
/// stuck-cell burst, then drains. Returns everything a reproducibility
/// comparison needs.
fn run_ladder(seed: u64) -> (CtrlStats, Vec<FaultEvent>, u64, usize) {
    let mut ctrl = MemoryController::new(
        ladder_config(),
        MemGeometry::small(256),
        SimRng::from_seed_label(seed, "chaos-ladder"),
    );
    // A mild storm: hot enough to overwhelm the 1-entry ECP table on
    // every verification, cool enough that correction cascades still
    // converge (past ~2x the 11.5% base rate each correction breeds more
    // errors than it fixes and write jobs stop completing).
    let plan = FaultPlan::new()
        .storm(5, 1.5, 100_000)
        .stuck_burst(40, 4, 2)
        .build()
        .expect("valid plan");
    ctrl.install_chaos(plan);

    let mut rng = SimRng::from_seed_label(seed, "chaos-traffic");
    let mut shadow: HashMap<LineAddr, LineBuf> = HashMap::new();
    let mut now = Cycle::ZERO;
    for i in 0..2_000u64 {
        now += Cycle(rng.below(400) + 1);
        // A 4-row × 3-slot working set in one bank maximizes adjacency
        // pressure: every write verifies (and disturbs) its neighbours.
        let addr = LineAddr {
            bank: BankId(0),
            row: RowId(60 + rng.below(4) as u32),
            slot: rng.below(3) as u8,
        };
        let mut data = shadow
            .get(&addr)
            .copied()
            .unwrap_or_else(|| ctrl.store().initial_line(addr));
        for _ in 0..40 {
            let b = rng.index(512);
            let v = data.bit(b);
            data.set_bit(b, !v);
        }
        shadow.insert(addr, data);
        ctrl.submit(
            Access {
                id: ReqId(i),
                addr,
                kind: AccessKind::Write(data),
                ratio: NmRatio::one_one(),
                core: 0,
                arrive: now,
            },
            now,
        )
        .expect("hammering writes stay accepted");
        let _ = ctrl.advance(now).expect("steady state never faults");
    }
    ctrl.drain_all(now);
    while let Some(t) = ctrl.next_event() {
        let _ = ctrl.advance(t).expect("drain never faults");
        ctrl.drain_all(t);
    }
    // Consistency holds across the entire ladder: every written line —
    // decommissioned or not — reads back its program-order value. Lines
    // whose planted stuck-cell population exceeds the 1-entry ECP are
    // unprotectable (real hardware decommissions the page; see
    // tests/consistency.rs) and exempt from the oracle.
    let mut checked = 0;
    for (addr, expect) in &shadow {
        if ctrl.store().hard_error_count(*addr) > ctrl.config().ecp_entries {
            continue;
        }
        checked += 1;
        assert_eq!(
            ctrl.architectural_line(*addr),
            *expect,
            "line {addr} corrupted under chaos"
        );
    }
    assert!(
        checked >= shadow.len() / 2,
        "the stuck burst must not blanket the whole working set"
    );
    (
        ctrl.stats().clone(),
        ctrl.fault_log().to_vec(),
        ctrl.store().content_digest(),
        ctrl.salvaged_lines(),
    )
}

#[test]
fn ecp_exhaustion_walks_the_full_degradation_ladder() {
    let (stats, log, _digest, salvaged) = run_ladder(2015);
    assert!(
        stats.ecp_exhaustions.get() > 0,
        "the storm must overwhelm a 1-entry ECP table"
    );
    assert!(
        stats.correction_retries.get() > 0,
        "rung 1: bounded retry must fire before escalation"
    );
    assert!(
        stats.immediate_corrections.get() > 0,
        "rung 2: escalated lines correct immediately"
    );
    assert!(
        stats.decommissions.get() > 0,
        "rung 3: persistent distress must decommission a line"
    );
    assert!(
        salvaged > 0,
        "decommissioned lines live in the salvage pool"
    );
    assert!(
        stats.salvage_rejections.get() > 0,
        "a full pool must refuse further decommissions, not panic"
    );
    assert!(
        stats.fault_events.get() >= 2,
        "storm begin + stuck burst are logged"
    );
    assert_eq!(
        stats.fault_events.get(),
        log.len() as u64,
        "counter and log agree"
    );
    assert_eq!(
        stats.internal_anomalies.get(),
        0,
        "chaos must not trip internal invariants"
    );
}

#[test]
fn chaos_runs_are_bit_reproducible() {
    let a = run_ladder(77);
    let b = run_ladder(77);
    assert_eq!(a.0, b.0, "CtrlStats diverged between same-seed runs");
    assert_eq!(a.1, b.1, "fault logs diverged between same-seed runs");
    assert_eq!(a.2, b.2, "device contents diverged between same-seed runs");
    assert_eq!(a.3, b.3, "salvage pools diverged between same-seed runs");

    let c = run_ladder(78);
    assert_ne!(
        (&a.0, &a.2),
        (&c.0, &c.2),
        "a different seed must actually change the run"
    );
}

/// The same property through the full-system front end: a `FaultPlan`
/// installed into `SystemSim` replays bit-exactly and its degradation
/// events surface in the run's `CtrlStats`.
#[test]
fn system_level_fault_plan_is_deterministic() {
    let run = || {
        let params = ExperimentParams {
            refs_per_core: 1_200,
            ecp_entries: 1,
            ..ExperimentParams::quick_test()
        };
        let mut sim = SystemSim::build(&Scheme::lazyc(), BenchKind::Mcf, &params)
            .expect("quick-test params are valid");
        sim.install_fault_plan(
            FaultPlan::new()
                .storm(50, 2.0, 50_000)
                .stuck_burst(200, 3, 2),
        )
        .expect("plan is valid");
        let stats = sim.run().expect("chaos run completes");
        let log = sim.controller().fault_log().to_vec();
        let digest = sim.controller().store().content_digest();
        (stats.ctrl.clone(), log, digest)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "system CtrlStats diverged");
    assert_eq!(a.1, b.1, "system fault logs diverged");
    assert_eq!(a.2, b.2, "system device contents diverged");
    assert!(a.0.fault_events.get() >= 2, "the plan actually fired");
    assert!(
        a.0.ecp_exhaustions.get() > 0,
        "storm + 1-entry ECP must exhaust at system level"
    );
}
