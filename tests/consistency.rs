//! The reproduction's load-bearing invariant: under every protected
//! scheme, a read always returns the last value written — no matter how
//! much write disturbance the workload provokes. A shadow model tracks
//! program-order contents and every read completion is checked against
//! it. The unprotected ablation must, by contrast, corrupt data.

use std::collections::HashMap;

use sdpcm::engine::{Cycle, SimRng};
use sdpcm::memctrl::{
    Access, AccessKind, Completion, CtrlConfig, CtrlScheme, MemoryController, ReqId,
};
use sdpcm::osalloc::NmRatio;
use sdpcm::pcm::geometry::{BankId, LineAddr, MemGeometry, RowId};
use sdpcm::pcm::line::LineBuf;

struct Harness {
    ctrl: MemoryController,
    shadow: HashMap<LineAddr, LineBuf>,
    pending_reads: HashMap<ReqId, (LineAddr, Option<LineBuf>)>,
    rng: SimRng,
    now: Cycle,
    next_id: u64,
    mismatches: Vec<LineAddr>,
    reads_checked: u64,
    /// Under Start-Gap, never-written lines read as some *other*
    /// physical slot's initial content — skip those checks.
    check_unwritten: bool,
}

impl Harness {
    fn new(scheme: CtrlScheme, ratio_seedable: bool) -> Harness {
        let _ = ratio_seedable;
        Harness {
            ctrl: MemoryController::new(
                CtrlConfig::table2(scheme),
                MemGeometry::small(512),
                SimRng::from_seed_label(2024, "consistency-ctrl"),
            ),
            shadow: HashMap::new(),
            pending_reads: HashMap::new(),
            rng: SimRng::from_seed_label(2024, "consistency-drv"),
            now: Cycle::ZERO,
            next_id: 0,
            mismatches: Vec::new(),
            reads_checked: 0,
            check_unwritten: true,
        }
    }

    fn fresh_id(&mut self) -> ReqId {
        self.next_id += 1;
        ReqId(self.next_id)
    }

    fn addr(&mut self, ratio: NmRatio) -> LineAddr {
        // A small set of rows in few banks maximizes adjacency pressure.
        // Under (n:m) ratios only unmarked strips hold data, as the OS
        // would enforce.
        loop {
            let a = LineAddr {
                bank: BankId(self.rng.below(2) as u16),
                row: RowId(40 + self.rng.below(8) as u32),
                slot: self.rng.below(4) as u8,
            };
            if !ratio.is_nouse_strip(u64::from(a.row.0)) {
                return a;
            }
        }
    }

    fn expected(&self, addr: LineAddr) -> Option<LineBuf> {
        match self.shadow.get(&addr) {
            Some(v) => Some(*v),
            None if self.check_unwritten => Some(self.ctrl.store().initial_line(addr)),
            None => None,
        }
    }

    fn check(&mut self, done: Vec<Completion>) {
        for c in done {
            if let Some((addr, expect)) = self.pending_reads.remove(&c.id) {
                self.reads_checked += 1;
                if let Some(expect) = expect {
                    if c.data != Some(expect) {
                        self.mismatches.push(addr);
                    }
                }
            }
        }
    }

    fn step(&mut self, ratio: NmRatio) {
        let addr = self.addr(ratio);
        self.now += Cycle(self.rng.below(500) + 1);
        let is_write = self.rng.chance(0.6);
        let id = self.fresh_id();
        if is_write {
            // Flip a batch of bits of the program-order current value.
            let mut data = self
                .expected(addr)
                .unwrap_or_else(|| self.ctrl.latest_architectural(addr));
            for _ in 0..60 {
                let b = self.rng.index(512);
                let v = data.bit(b);
                data.set_bit(b, !v);
            }
            self.shadow.insert(addr, data);
            self.ctrl
                .submit(
                    Access {
                        id,
                        addr,
                        kind: AccessKind::Write(data),
                        ratio,
                        core: 0,
                        arrive: self.now,
                    },
                    self.now,
                )
                .unwrap();
        } else {
            // Program order: the read must observe the newest write, even
            // if it is still queued. Like the in-order cores of Table 2,
            // the driver blocks until the read completes — later stores
            // must not overtake an outstanding load of the same location.
            let expect = self.expected(addr);
            self.pending_reads.insert(id, (addr, expect));
            self.ctrl
                .submit(
                    Access {
                        id,
                        addr,
                        kind: AccessKind::Read,
                        ratio,
                        core: 0,
                        arrive: self.now,
                    },
                    self.now,
                )
                .unwrap();
            while self.pending_reads.contains_key(&id) {
                let t = self
                    .ctrl
                    .next_event()
                    .expect("read in flight keeps the controller busy");
                self.now = self.now.max(t);
                let done = self.ctrl.advance(t).unwrap();
                self.check(done);
            }
        }
        let done = self.ctrl.advance(self.now).unwrap();
        self.check(done);
    }

    fn finish(&mut self) {
        self.ctrl.drain_all(self.now);
        while let Some(t) = self.ctrl.next_event() {
            let done = self.ctrl.advance(t).unwrap();
            self.check(done);
            self.ctrl.drain_all(t);
        }
        let done = self.ctrl.advance(Cycle::MAX).unwrap();
        self.check(done);
    }

    /// After the dust settles, every line must hold its shadow value.
    fn final_sweep_mismatches(&self) -> usize {
        self.shadow
            .iter()
            .filter(|(addr, expect)| self.ctrl.architectural_logical(**addr) != **expect)
            .count()
    }
}

fn run(scheme: CtrlScheme, ratio: NmRatio, steps: u32) -> Harness {
    let mut h = Harness::new(scheme, true);
    for _ in 0..steps {
        h.step(ratio);
    }
    h.finish();
    assert!(
        h.reads_checked > steps as u64 / 4,
        "reads actually happened"
    );
    h
}

#[test]
fn baseline_vnc_never_corrupts() {
    let h = run(CtrlScheme::baseline_vnc(), NmRatio::one_one(), 3000);
    assert_eq!(h.mismatches, vec![], "read results diverged from shadow");
    assert_eq!(h.final_sweep_mismatches(), 0);
}

#[test]
fn lazyc_never_corrupts() {
    let h = run(CtrlScheme::lazyc(), NmRatio::one_one(), 3000);
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
    assert!(h.ctrl.stats().ecp_records.get() > 0, "LazyC was exercised");
}

#[test]
fn lazyc_preread_never_corrupts() {
    let h = run(CtrlScheme::lazyc_preread(), NmRatio::one_one(), 3000);
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
}

#[test]
fn write_cancellation_never_corrupts() {
    let h = run(
        CtrlScheme::lazyc().with_write_cancellation(),
        NmRatio::one_one(),
        3000,
    );
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
    assert!(
        h.ctrl.stats().write_cancellations.get() > 0,
        "cancellation was exercised"
    );
}

#[test]
fn two_three_alloc_never_corrupts() {
    let h = run(CtrlScheme::lazyc(), NmRatio::two_three(), 3000);
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
}

#[test]
fn one_two_alloc_never_corrupts_without_any_vnc() {
    let h = run(CtrlScheme::baseline_vnc(), NmRatio::one_two(), 3000);
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
    assert_eq!(
        h.ctrl.stats().verification_ops.get(),
        0,
        "(1:2) interior strips need no verification at all"
    );
}

#[test]
fn write_pausing_never_corrupts() {
    let h = run(
        CtrlScheme::lazyc().with_write_pausing(),
        NmRatio::one_one(),
        3000,
    );
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
    assert!(
        h.ctrl.stats().write_pauses.get() > 0,
        "pausing was exercised"
    );
}

#[test]
fn pausing_plus_cancellation_never_corrupts() {
    let h = run(
        CtrlScheme::lazyc()
            .with_write_pausing()
            .with_write_cancellation(),
        NmRatio::one_one(),
        3000,
    );
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
}

#[test]
fn start_gap_wear_leveling_never_corrupts() {
    let mut h = Harness::new(CtrlScheme::lazyc().with_start_gap(4), true);
    h.check_unwritten = false; // rotated unwritten lines hold other slots' init content
    for _ in 0..3000 {
        h.step(NmRatio::one_one());
    }
    h.finish();
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
    assert!(h.ctrl.stats().gap_moves.get() > 100, "gap actually rotated");
}

#[test]
fn din_array_never_corrupts() {
    let h = run(CtrlScheme::din(), NmRatio::one_one(), 3000);
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
}

#[test]
fn unprotected_super_dense_does_corrupt() {
    // The negative control: same traffic, no VnC → bit-line disturbance
    // must corrupt stored data.
    let h = run(
        CtrlScheme::unprotected_super_dense(),
        NmRatio::one_one(),
        3000,
    );
    assert!(
        !h.mismatches.is_empty() || h.final_sweep_mismatches() > 0,
        "11.5% per-vulnerable-cell disturbance must corrupt an unprotected array"
    );
}

#[test]
fn aged_dimm_with_hard_errors_never_corrupts() {
    let mut h = Harness::new(CtrlScheme::lazyc(), true);
    h.ctrl
        .set_dimm_age(sdpcm::pcm::wear::HardErrorModel::default(), 1.0);
    for _ in 0..3000 {
        h.step(NmRatio::one_one());
    }
    h.finish();
    assert_eq!(h.mismatches, vec![]);
    assert_eq!(h.final_sweep_mismatches(), 0);
}
