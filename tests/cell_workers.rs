//! Worker-count invariance of the bank-sharded controller.
//!
//! The tentpole contract of intra-cell parallelism: `SDPCM_CELL_WORKERS`
//! changes *wall-clock time only*, never results. Every RNG draw is
//! keyed by `(line, epoch)` counters and every accumulator is bank-lane
//! local, so processing lanes serially, in any order, or on any number
//! of worker threads must produce bit-identical `RunStats`, traffic
//! counters, and device content digests. This test pins that at 1, 2,
//! and 8 workers, with the internal profiler both off and on.

use sdpcm_core::hiersim::{HierarchyParams, HierarchySim};
use sdpcm_core::sweep::CELL_WORKERS_ENV;
use sdpcm_core::{ExperimentParams, Scheme, SystemSim};
use sdpcm_trace::BenchKind;

/// Runs one fig11 system cell and one hierarchy cell, returning every
/// observable: formatted `RunStats`, PCM traffic counts, and the device
/// content digests of both simulations.
fn observe(scheme: &Scheme, params: &ExperimentParams) -> (String, String, (u64, u64), u64, u64) {
    let mut sys = SystemSim::build(scheme, BenchKind::Mcf, params).unwrap();
    let sys_stats = sys.run().unwrap();
    let sys_digest = sys.controller().store().content_digest();

    let hp = HierarchyParams::quick_test();
    let mut hier = HierarchySim::build(scheme.clone(), BenchKind::Mcf, params, &hp).unwrap();
    let hier_stats = hier.run().unwrap();
    (
        format!("{sys_stats:?}"),
        format!("{hier_stats:?}"),
        hier.pcm_traffic(),
        sys_digest,
        hier.controller().store().content_digest(),
    )
}

/// One test function (not one per worker count): the worker knob is an
/// environment variable read at build time, and tests in one binary run
/// concurrently — a single function keeps the env mutation race-free.
#[test]
fn results_are_bit_identical_at_any_cell_worker_count() {
    let params = ExperimentParams {
        refs_per_core: 400,
        ..ExperimentParams::quick_test()
    };
    // LazyC+PreRead exercises the widest controller surface (VnC,
    // LazyCorrection, PreRead); baseline covers the plain path.
    for scheme in [Scheme::lazyc_preread(), Scheme::baseline()] {
        std::env::remove_var(CELL_WORKERS_ENV);
        let reference = observe(&scheme, &params);
        for workers in ["1", "2", "8"] {
            std::env::set_var(CELL_WORKERS_ENV, workers);
            sdpcm_engine::prof::set_enabled(false);
            assert_eq!(
                observe(&scheme, &params),
                reference,
                "{}: diverged at {workers} workers",
                scheme.name
            );
            // The profiler's thread-local counters must stay
            // observationally free on the parallel path too.
            sdpcm_engine::prof::set_enabled(true);
            let profiled = observe(&scheme, &params);
            sdpcm_engine::prof::set_enabled(false);
            assert_eq!(
                profiled, reference,
                "{}: profiling perturbed results at {workers} workers",
                scheme.name
            );
        }
        std::env::remove_var(CELL_WORKERS_ENV);
    }
}
