//! Full-system end-to-end runs: every compared scheme completes, produces
//! sane statistics, and the mechanisms actually fire.

use sdpcm::core::experiments::run_cell;
use sdpcm::core::{ExperimentParams, RunStats, Scheme};
use sdpcm::trace::{BenchKind, Workload};

fn params() -> ExperimentParams {
    ExperimentParams {
        refs_per_core: 800,
        ..ExperimentParams::quick_test()
    }
}

fn sanity(r: &RunStats) {
    assert!(r.total_cycles > 0, "{}: no cycles", r.scheme);
    assert_eq!(r.reads + r.writes, 8 * 800, "{}: lost references", r.scheme);
    assert!(r.cpi() > 1.0, "{}: CPI below 1 is impossible", r.scheme);
    assert_eq!(
        r.ctrl.cascade_overflows.get(),
        0,
        "{}: cascade chains must terminate naturally",
        r.scheme
    );
}

#[test]
fn every_figure11_scheme_completes_on_a_light_and_heavy_workload() {
    for bench in [BenchKind::Wrf, BenchKind::Mcf] {
        for scheme in Scheme::figure11_set() {
            let r = run_cell(&scheme, bench, &params());
            sanity(&r);
        }
    }
}

#[test]
fn mechanisms_fire_where_expected() {
    let p = params();
    let bench = BenchKind::Lbm;

    let din = run_cell(&Scheme::din(), bench, &p);
    assert_eq!(din.ctrl.verification_ops.get(), 0);
    assert_eq!(din.ctrl.correction_ops.get(), 0);
    assert_eq!(din.ctrl.ecp_records.get(), 0);

    let base = run_cell(&Scheme::baseline(), bench, &p);
    assert!(base.ctrl.verification_ops.get() > 0);
    assert!(base.ctrl.correction_ops.get() > 0);
    assert_eq!(base.ctrl.ecp_records.get(), 0, "no LazyC in baseline");

    let lazy = run_cell(&Scheme::lazyc(), bench, &p);
    assert!(lazy.ctrl.ecp_records.get() > 0);
    assert!(
        lazy.ctrl.correction_ops.get() < base.ctrl.correction_ops.get(),
        "LazyC must reduce corrections: {} vs {}",
        lazy.ctrl.correction_ops.get(),
        base.ctrl.correction_ops.get()
    );

    let pre = run_cell(&Scheme::lazyc_preread(), bench, &p);
    assert!(
        pre.ctrl.prereads_issued.get() > 0,
        "PreRead used idle slots"
    );

    let alloc12 = run_cell(&Scheme::one_two_alloc(), bench, &p);
    assert_eq!(alloc12.ctrl.verification_ops.get(), 0);
}

#[test]
fn scheme_ordering_on_memory_intensive_workload() {
    // The paper's headline ordering (Figure 11) on mcf: DIN fastest,
    // baseline slowest, each added mechanism helps.
    let p = ExperimentParams {
        refs_per_core: 2_500,
        ..params()
    };
    let bench = BenchKind::Mcf;
    let base = run_cell(&Scheme::baseline(), bench, &p);
    let din = run_cell(&Scheme::din(), bench, &p).speedup_vs(&base);
    let lazyc = run_cell(&Scheme::lazyc(), bench, &p).speedup_vs(&base);
    let combo = run_cell(&Scheme::lazyc_preread_two_three(), bench, &p).speedup_vs(&base);
    let alloc12 = run_cell(&Scheme::one_two_alloc(), bench, &p).speedup_vs(&base);

    assert!(din > 1.2, "DIN clearly beats basic VnC: {din}");
    assert!(lazyc > 1.05, "LazyC improves on baseline: {lazyc}");
    assert!(
        combo > lazyc,
        "the full recipe beats LazyC alone: {combo} vs {lazyc}"
    );
    assert!(
        (alloc12 / din - 1.0).abs() < 0.15,
        "(1:2) tracks DIN: {alloc12} vs {din}"
    );
}

#[test]
fn mixed_workload_runs() {
    let profiles = vec![
        BenchKind::Mcf.profile(),
        BenchKind::Lbm.profile(),
        BenchKind::GemsFdtd.profile(),
        BenchKind::Bwaves.profile(),
        BenchKind::Wrf.profile(),
        BenchKind::Xalan.profile(),
        BenchKind::Zeusmp.profile(),
        BenchKind::Stream.profile(),
    ];
    let w = Workload::mixed("mix-all", profiles);
    let mut sim = sdpcm::core::SystemSim::build_workload(&Scheme::lazyc_preread(), &w, &params())
        .expect("mixed workload fits the sized geometry");
    let r = sim.run().expect("mixed workload completes");
    assert_eq!(r.workload, "mix-all");
    assert_eq!(r.reads + r.writes, 8 * 800);
}

#[test]
fn write_cancellation_reduces_read_latency_on_read_heavy_mix() {
    let p = ExperimentParams {
        refs_per_core: 2_500,
        ..params()
    };
    let bench = BenchKind::Mcf;
    let plain = run_cell(&Scheme::lazyc(), bench, &p);
    let wc_scheme = Scheme {
        name: "WC+LazyC".into(),
        ctrl: Scheme::lazyc().ctrl.with_write_cancellation(),
        ratio: sdpcm::osalloc::NmRatio::one_one(),
    };
    let wc = run_cell(&wc_scheme, bench, &p);
    assert!(wc.ctrl.write_cancellations.get() > 0, "WC fired");
    assert!(
        wc.ctrl.avg_read_latency() < plain.ctrl.avg_read_latency(),
        "WC should cut read latency: {} vs {}",
        wc.ctrl.avg_read_latency(),
        plain.ctrl.avg_read_latency()
    );
}

#[test]
fn aging_degrades_gracefully() {
    // 800 refs is noise-dominated for a cycle-ratio check (queue
    // alignment alone swings it by >20%); 2500 refs, as used by the
    // other latency-sensitive tests above, keeps the ratio stable.
    let p = ExperimentParams {
        refs_per_core: 2_500,
        ..params()
    };
    let fresh = run_cell(&Scheme::lazyc(), BenchKind::Zeusmp, &p);
    let aged_params = ExperimentParams {
        dimm_age: Some(1.0),
        ..p
    };
    let aged = run_cell(&Scheme::lazyc(), BenchKind::Zeusmp, &aged_params);
    assert!(
        aged.ctrl.correction_ops.get() > 2 * fresh.ctrl.correction_ops.get(),
        "end-of-life hard errors must force extra corrections: {} vs {}",
        aged.ctrl.correction_ops.get(),
        fresh.ctrl.correction_ops.get()
    );
    let speedup = aged.speedup_vs(&fresh);
    // Figure 14: end-of-life degradation stays small. The monotone trend
    // is asserted by the gmean-across-benchmarks shape test
    // (experiments_shape::fig14_shape...).
    assert!(
        (0.85..1.05).contains(&speedup),
        "end-of-life impact must be modest: {speedup}"
    );
}
