//! Property-based controller stress: arbitrary mechanism combinations ×
//! arbitrary request sequences must never violate the consistency
//! invariant (reads return the last written value) as long as some form
//! of VnC protection is active.
//!
//! This generalizes `tests/consistency.rs` from fixed seeds to
//! proptest-explored schedules — the net that catches scheduling corner
//! cases (pause/cancel/drain interleavings, ECP exhaustion, aging).

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;

use sdpcm::engine::{Cycle, SimRng};
use sdpcm::memctrl::{Access, AccessKind, CtrlConfig, CtrlScheme, MemoryController, ReqId};
use sdpcm::osalloc::NmRatio;
use sdpcm::pcm::geometry::{BankId, LineAddr, MemGeometry, RowId};
use sdpcm::pcm::line::LineBuf;

#[derive(Debug, Clone)]
struct Op {
    is_write: bool,
    bank: u16,
    row: u32,
    slot: u8,
    gap: u64,
    flip_seed: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        any::<bool>(),
        0u16..2,
        0u32..6,
        0u8..3,
        1u64..1_200,
        any::<u64>(),
    )
        .prop_map(|(is_write, bank, row, slot, gap, flip_seed)| Op {
            is_write,
            bank,
            row: 20 + row,
            slot,
            gap,
            flip_seed,
        })
}

#[derive(Debug, Clone)]
struct SchemeChoice {
    lazyc: bool,
    preread: bool,
    cancel: bool,
    pause: bool,
    ecp_entries: usize,
    queue_cap: usize,
    aged: bool,
}

fn scheme_strategy() -> impl Strategy<Value = SchemeChoice> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0usize..8,
        prop::sample::select(vec![4usize, 8, 32]),
        any::<bool>(),
    )
        .prop_map(
            |(lazyc, preread, cancel, pause, ecp_entries, queue_cap, aged)| SchemeChoice {
                lazyc,
                preread,
                cancel,
                pause,
                ecp_entries,
                queue_cap,
                aged,
            },
        )
}

fn flip(data: &mut LineBuf, seed: u64) {
    let mut x = seed | 1;
    for _ in 0..48 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let b = (x % 512) as usize;
        let v = data.bit(b);
        data.set_bit(b, !v);
    }
}

/// A line whose stuck-cell population exceeds its ECP capacity is
/// *unprotectable* — real end-of-life PCM loses it too (the OS would
/// decommission the page). Reads of such lines are exempt from the
/// consistency oracle.
fn unprotectable(ctrl: &MemoryController, addr: LineAddr) -> bool {
    ctrl.store().hard_error_count(addr) > ctrl.config().ecp_entries
}

fn run_schedule(choice: &SchemeChoice, ops: &[Op]) -> Result<(), String> {
    let mut scheme = CtrlScheme::baseline_vnc();
    scheme.lazy_correction = choice.lazyc;
    scheme.preread = choice.preread;
    scheme.write_cancellation = choice.cancel;
    scheme.write_pausing = choice.pause;
    let cfg = CtrlConfig {
        write_queue_cap: choice.queue_cap,
        ecp_entries: choice.ecp_entries,
        ..CtrlConfig::table2(scheme)
    };
    let mut ctrl = MemoryController::new(
        cfg,
        MemGeometry::small(64),
        SimRng::from_seed_label(97, "stress"),
    );
    if choice.aged {
        ctrl.set_dimm_age(sdpcm::pcm::wear::HardErrorModel::default(), 0.9);
    }

    let mut shadow: HashMap<LineAddr, LineBuf> = HashMap::new();
    let mut pending: HashMap<ReqId, (LineAddr, LineBuf)> = HashMap::new();
    let mut now = Cycle::ZERO;
    for (i, op) in ops.iter().enumerate() {
        now += Cycle(op.gap);
        let addr = LineAddr {
            bank: BankId(op.bank),
            row: RowId(op.row),
            slot: op.slot,
        };
        let id = ReqId(i as u64);
        if op.is_write {
            let mut data = shadow
                .get(&addr)
                .copied()
                .unwrap_or_else(|| ctrl.store().initial_line(addr));
            flip(&mut data, op.flip_seed);
            shadow.insert(addr, data);
            ctrl.submit(
                Access {
                    id,
                    addr,
                    kind: AccessKind::Write(data),
                    ratio: NmRatio::one_one(),
                    core: 0,
                    arrive: now,
                },
                now,
            )
            .unwrap();
        } else {
            let expect = shadow
                .get(&addr)
                .copied()
                .unwrap_or_else(|| ctrl.store().initial_line(addr));
            pending.insert(id, (addr, expect));
            ctrl.submit(
                Access {
                    id,
                    addr,
                    kind: AccessKind::Read,
                    ratio: NmRatio::one_one(),
                    core: 0,
                    arrive: now,
                },
                now,
            )
            .unwrap();
            // In-order core semantics: block until this read completes so
            // later writes cannot legally overtake it.
            while pending.contains_key(&id) {
                let t = ctrl
                    .next_event()
                    .ok_or_else(|| "read lost: controller went idle".to_owned())?;
                for c in ctrl.advance(t).unwrap() {
                    if let Some((a, expect)) = pending.remove(&c.id) {
                        if c.data != Some(expect) && !unprotectable(&ctrl, a) {
                            return Err(format!("read of {a} returned wrong data (op {i})"));
                        }
                    }
                }
            }
        }
        for c in ctrl.advance(now).unwrap() {
            if let Some((a, expect)) = pending.remove(&c.id) {
                if c.data != Some(expect) && !unprotectable(&ctrl, a) {
                    return Err(format!("read of {a} returned wrong data (op {i})"));
                }
            }
        }
    }
    // Settle and sweep.
    ctrl.drain_all(now);
    while let Some(t) = ctrl.next_event() {
        for c in ctrl.advance(t).unwrap() {
            if let Some((a, expect)) = pending.remove(&c.id) {
                if c.data != Some(expect) && !unprotectable(&ctrl, a) {
                    return Err(format!("late read of {a} returned wrong data"));
                }
            }
        }
        ctrl.drain_all(t);
    }
    for (addr, expect) in &shadow {
        if ctrl.architectural_line(*addr) != *expect && !unprotectable(&ctrl, *addr) {
            return Err(format!("final sweep: {addr} corrupted"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_protected_scheme_stays_consistent(
        choice in scheme_strategy(),
        ops in vec(op_strategy(), 50..250),
    ) {
        if let Err(e) = run_schedule(&choice, &ops) {
            prop_assert!(false, "{} under {:?}", e, choice);
        }
    }
}

/// Satellite property for the chaos harness: under *any* valid fault
/// plan and any mechanism combination, a full run is bit-reproducible —
/// the same seed yields identical controller statistics, fault logs, and
/// final device contents.
#[derive(Debug, Clone)]
struct PlanChoice {
    storm_at: u64,
    storm_mult: f64,
    storm_len: u64,
    burst_at: u64,
    burst_lines: u32,
    burst_cells: u16,
    age: Option<f64>,
}

fn plan_strategy() -> impl Strategy<Value = PlanChoice> {
    (
        0u64..60,
        0.5f64..2.5,
        10u64..100_000,
        0u64..80,
        1u32..5,
        1u16..4,
        (any::<bool>(), 0.0f64..1.0),
    )
        .prop_map(
            |(storm_at, storm_mult, storm_len, burst_at, burst_lines, burst_cells, age)| {
                PlanChoice {
                    storm_at,
                    storm_mult,
                    storm_len,
                    burst_at,
                    burst_lines,
                    burst_cells,
                    age: age.0.then_some(age.1),
                }
            },
        )
}

fn run_with_plan(
    choice: &SchemeChoice,
    plan: &PlanChoice,
    ops: &[Op],
) -> (
    sdpcm::memctrl::CtrlStats,
    Vec<sdpcm::wd::chaos::FaultEvent>,
    u64,
) {
    let mut scheme = CtrlScheme::baseline_vnc();
    scheme.lazy_correction = choice.lazyc;
    scheme.preread = choice.preread;
    scheme.write_cancellation = choice.cancel;
    scheme.write_pausing = choice.pause;
    let cfg = CtrlConfig {
        write_queue_cap: choice.queue_cap,
        ecp_entries: choice.ecp_entries,
        ..CtrlConfig::table2(scheme)
    };
    let mut ctrl = MemoryController::new(
        cfg,
        MemGeometry::small(64),
        SimRng::from_seed_label(97, "stress"),
    );
    let mut fp = sdpcm::core::FaultPlan::new()
        .storm(plan.storm_at, plan.storm_mult, plan.storm_len)
        .stuck_burst(plan.burst_at, plan.burst_lines, plan.burst_cells);
    if let Some(age) = plan.age {
        fp = fp.aging_ramp(plan.burst_at + 20, age);
    }
    ctrl.install_chaos(fp.build().expect("generated plans are valid"));

    let mut now = Cycle::ZERO;
    for (i, op) in ops.iter().enumerate() {
        now += Cycle(op.gap);
        let addr = LineAddr {
            bank: BankId(op.bank),
            row: RowId(op.row),
            slot: op.slot,
        };
        let mut data = ctrl.store().initial_line(addr);
        flip(&mut data, op.flip_seed);
        let kind = if op.is_write {
            AccessKind::Write(data)
        } else {
            AccessKind::Read
        };
        ctrl.submit(
            Access {
                id: ReqId(i as u64),
                addr,
                kind,
                ratio: NmRatio::one_one(),
                core: 0,
                arrive: now,
            },
            now,
        )
        .unwrap();
        let _ = ctrl.advance(now).unwrap();
    }
    ctrl.drain_all(now);
    while let Some(t) = ctrl.next_event() {
        let _ = ctrl.advance(t).unwrap();
        ctrl.drain_all(t);
    }
    (
        ctrl.stats().clone(),
        ctrl.fault_log().to_vec(),
        ctrl.store().content_digest(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn chaos_runs_replay_bit_exactly(
        choice in scheme_strategy(),
        plan in plan_strategy(),
        ops in vec(op_strategy(), 40..120),
    ) {
        let a = run_with_plan(&choice, &plan, &ops);
        let b = run_with_plan(&choice, &plan, &ops);
        prop_assert_eq!(&a.0, &b.0, "CtrlStats diverged under {:?}", &plan);
        prop_assert_eq!(&a.1, &b.1, "fault logs diverged under {:?}", &plan);
        prop_assert_eq!(a.2, b.2, "device contents diverged under {:?}", &plan);
    }
}

/// Drives a controller through a randomized schedule and asserts, after
/// every interaction, that the per-bank write-queue address index (the
/// O(1) fast path added for forwarding/coalescing/cancellation checks)
/// is exactly the multiset a linear scan of the queue would produce.
fn run_index_audit(choice: &SchemeChoice, ops: &[Op]) -> Result<(), String> {
    let mut scheme = CtrlScheme::baseline_vnc();
    scheme.lazy_correction = choice.lazyc;
    scheme.preread = choice.preread;
    scheme.write_cancellation = choice.cancel;
    scheme.write_pausing = choice.pause;
    let cfg = CtrlConfig {
        write_queue_cap: choice.queue_cap,
        ecp_entries: choice.ecp_entries,
        ..CtrlConfig::table2(scheme)
    };
    let mut ctrl = MemoryController::new(
        cfg,
        MemGeometry::small(64),
        SimRng::from_seed_label(41, "wq-index"),
    );
    if choice.aged {
        ctrl.set_dimm_age(sdpcm::pcm::wear::HardErrorModel::default(), 0.9);
    }
    let mut now = Cycle::ZERO;
    for (i, op) in ops.iter().enumerate() {
        now += Cycle(op.gap);
        let addr = LineAddr {
            bank: BankId(op.bank),
            row: RowId(op.row),
            slot: op.slot,
        };
        let kind = if op.is_write {
            let mut data = ctrl.store().initial_line(addr);
            flip(&mut data, op.flip_seed);
            AccessKind::Write(data)
        } else {
            AccessKind::Read
        };
        ctrl.submit(
            Access {
                id: ReqId(i as u64),
                addr,
                kind,
                ratio: NmRatio::one_one(),
                core: 0,
                arrive: now,
            },
            now,
        )
        .unwrap();
        ctrl.check_wq_index()
            .map_err(|e| format!("after submit {i}: {e}"))?;
        let _ = ctrl.advance(now).unwrap();
        ctrl.check_wq_index()
            .map_err(|e| format!("after advance {i}: {e}"))?;
    }
    ctrl.drain_all(now);
    while let Some(t) = ctrl.next_event() {
        let _ = ctrl.advance(t).unwrap();
        ctrl.check_wq_index()
            .map_err(|e| format!("during drain: {e}"))?;
        ctrl.drain_all(t);
    }
    ctrl.check_wq_index()
        .map_err(|e| format!("after drain: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn write_queue_index_matches_linear_scan(
        choice in scheme_strategy(),
        ops in vec(op_strategy(), 50..200),
    ) {
        if let Err(e) = run_index_audit(&choice, &ops) {
            prop_assert!(false, "{} under {:?}", e, choice);
        }
    }
}

#[test]
fn kitchen_sink_scheme_long_schedule() {
    // Everything on at once, longer deterministic schedule.
    let choice = SchemeChoice {
        lazyc: true,
        preread: true,
        cancel: true,
        pause: true,
        ecp_entries: 6,
        queue_cap: 8,
        aged: true,
    };
    let mut rng = SimRng::from_seed_label(123, "kitchen");
    let ops: Vec<Op> = (0..2_000)
        .map(|_| Op {
            is_write: rng.chance(0.6),
            bank: rng.below(2) as u16,
            row: 20 + rng.below(6) as u32,
            slot: rng.below(3) as u8,
            gap: rng.below(1_200) + 1,
            flip_seed: rng.next_u64(),
        })
        .collect();
    run_schedule(&choice, &ops).expect("kitchen-sink schedule stays consistent");
}
