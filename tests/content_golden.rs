//! Absolute content-digest goldens.
//!
//! The relative goldens (`tests/replay_golden.rs`, `tests/cell_workers.rs`)
//! pin that two ways of running the same simulation agree; this file pins
//! the simulation *output itself*. Any change that touches an RNG draw,
//! the draw-derivation scheme, or the simulated write path will move
//! these constants — that is the point. Such a change invalidates every
//! externally recorded digest at once and must be deliberate: update the
//! constants here in the same commit and call the migration out in
//! DESIGN.md ("Golden migrations").
//!
//! Last re-pin: the counter-based (Philox4x32-10) RNG swap. Pre-swap
//! values for this exact configuration were 0x3b33be6fbee0e0a7
//! (baseline) and 0xe88236832b4cb32a (LazyC+PreRead).

use sdpcm_core::{ExperimentParams, Scheme, SystemSim};
use sdpcm_trace::BenchKind;

#[test]
fn content_digests_match_pinned_goldens() {
    let params = ExperimentParams {
        refs_per_core: 400,
        ..ExperimentParams::quick_test()
    };
    let golden: [(Scheme, u64, u64); 2] = [
        (Scheme::baseline(), 0xf3b068afa82ce015, 1477),
        (Scheme::lazyc_preread(), 0xa9c2762e21858575, 1477),
    ];
    for (scheme, digest, writes) in golden {
        let mut sim = SystemSim::build(&scheme, BenchKind::Mcf, &params).unwrap();
        let stats = sim.run().unwrap();
        assert_eq!(
            sim.controller().store().content_digest(),
            digest,
            "{}: content digest moved — an RNG-affecting change must re-pin \
             this golden deliberately (see module docs)",
            scheme.name
        );
        assert_eq!(stats.ctrl.writes.get(), writes, "{}", scheme.name);
    }
}
