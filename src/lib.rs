#![warn(missing_docs)]

//! # SD-PCM: Reliable Super Dense Phase Change Memory under Write Disturbance
//!
//! A full-system reproduction of the ASPLOS 2015 paper *"SD-PCM:
//! Constructing Reliable Super Dense Phase Change Memory under Write
//! Disturbance"* (Wang, Jiang, Zhang, Yang).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`engine`] — discrete-event simulation kernel (clock, events, RNG,
//!   statistics).
//! * [`pcm`] — the PCM device model: geometry, sparse cell-array store,
//!   differential write, ECP error-correction pointers, wear/lifetime
//!   accounting, and the capacity/area analytics of the paper's §6.1.
//! * [`wd`] — write-disturbance models: thermal + scaling + disturbance
//!   probability (Table 1), vulnerable-pattern analysis (Figure 3), the
//!   DIN word-line encoder, and the fault injector.
//! * [`trace`] — synthetic workload generation calibrated to the paper's
//!   Table 3 (SPEC2006 + STREAM read/write intensities).
//! * [`cachesim`] — the Table 2 cache hierarchy (L1 / L2 / DRAM L3).
//! * [`osalloc`] — buddy page allocation with the WD-aware (n:m)-Alloc.
//! * [`memctrl`] — the memory controller: queues, scheduling, basic VnC,
//!   LazyCorrection, PreRead, and write cancellation.
//! * [`core`] — scheme configurations, the full-system simulator (plus
//!   the full-hierarchy front end in `core::hiersim`), and the
//!   per-figure experiment runners.
//!
//! # Quickstart
//!
//! ```
//! use sdpcm::core::{ExperimentParams, Scheme, SystemSim};
//! use sdpcm::trace::BenchKind;
//!
//! let params = ExperimentParams::quick_test();
//! let mut sim = SystemSim::build(&Scheme::lazyc_preread(), BenchKind::Mcf, &params)?;
//! let stats = sim.run()?;
//! assert!(stats.total_cycles > 0);
//! # Ok::<(), sdpcm::core::SdpcmError>(())
//! ```

/// The types most programs need, in one import.
///
/// ```
/// use sdpcm::prelude::*;
///
/// let params = ExperimentParams::quick_test();
/// let mut sim = SystemSim::build(&Scheme::din(), BenchKind::Wrf, &params).unwrap();
/// let _ = sim.run().unwrap();
/// ```
pub mod prelude {
    pub use sdpcm_core::{ExperimentParams, FaultPlan, RunStats, Scheme, SdpcmError, SystemSim};
    pub use sdpcm_engine::{Cycle, SimRng};
    pub use sdpcm_memctrl::{Access, AccessKind, CtrlConfig, CtrlScheme, MemoryController, ReqId};
    pub use sdpcm_osalloc::NmRatio;
    pub use sdpcm_pcm::geometry::{LineAddr, MemGeometry};
    pub use sdpcm_pcm::line::LineBuf;
    pub use sdpcm_trace::BenchKind;
}

pub use sdpcm_cachesim as cachesim;
pub use sdpcm_core as core;
pub use sdpcm_engine as engine;
pub use sdpcm_memctrl as memctrl;
pub use sdpcm_osalloc as osalloc;
pub use sdpcm_pcm as pcm;
pub use sdpcm_trace as trace;
pub use sdpcm_wd as wd;
