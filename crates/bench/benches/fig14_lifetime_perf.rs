//! Figure 14 bench: aged-DIMM runs (hard errors consuming ECP entries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::{ExperimentParams, Scheme};
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    for age in [0.0f64, 1.0] {
        let p = ExperimentParams {
            dimm_age: Some(age),
            ..params::criterion()
        };
        g.bench_function(format!("age{:.0}pct", age * 100.0), |b| {
            b.iter(|| black_box(run_cell(&Scheme::lazyc(), BenchKind::Zeusmp, &p)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
