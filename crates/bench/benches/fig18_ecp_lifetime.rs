//! Figure 18 bench: ECP-chip record-traffic accounting under LazyC.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::Scheme;
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("fig18");
    g.sample_size(10);
    g.bench_function("lazyc_ecp_traffic_run", |b| {
        b.iter(|| {
            let r = run_cell(&Scheme::lazyc(), BenchKind::Mcf, &p);
            black_box(r.wear.ecp_lifetime_norm())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
