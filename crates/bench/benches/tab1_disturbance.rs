//! Table 1 bench: evaluating the calibrated thermal + disturbance model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_core::experiments::table1;
use sdpcm_wd::DisturbanceModel;

fn bench(c: &mut Criterion) {
    c.bench_function("table1/calibrate_and_evaluate", |b| {
        b.iter(|| black_box(table1()))
    });
    c.bench_function("table1/probability_at", |b| {
        let m = DisturbanceModel::calibrated();
        b.iter(|| {
            let mut acc = 0.0;
            for t in 280..400 {
                acc += m.probability_at(black_box(f64::from(t)));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
