//! Figure 17 bench: wear accounting of data chips under LazyC.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::Scheme;
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    g.bench_function("lazyc_wear_run", |b| {
        b.iter(|| {
            let r = run_cell(&Scheme::lazyc(), BenchKind::Lbm, &p);
            black_box(r.wear.data_lifetime_norm())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
