//! Ablation benches: the design-choice comparisons DESIGN.md calls out
//! (DIN group size, encoder objective, ECP record placement, read-priority
//! mechanism, Start-Gap period). `examples/ablations.rs` reports the
//! effect sizes; these measure the simulator cost of each variant.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::Scheme;
use sdpcm_engine::SimRng;
use sdpcm_osalloc::NmRatio;
use sdpcm_pcm::line::LineBuf;
use sdpcm_trace::BenchKind;
use sdpcm_wd::din::{DinCodec, DinFlags};
use sdpcm_wd::fnw::FnwCodec;

fn random_line(rng: &mut SimRng) -> LineBuf {
    let mut words = [0u64; 8];
    for w in &mut words {
        *w = rng.next_u64();
    }
    LineBuf::from_words(words)
}

fn encoder_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/encoders");
    for group in [8usize, 32] {
        let codec = DinCodec::new(group);
        g.bench_function(format!("din{group}"), |b| {
            let mut rng = SimRng::from_seed(41);
            let stored = random_line(&mut rng);
            let plain = random_line(&mut rng);
            b.iter(|| black_box(codec.encode(&plain, &stored, DinFlags::default())))
        });
    }
    let fnw = FnwCodec::new(8);
    g.bench_function("fnw8", |b| {
        let mut rng = SimRng::from_seed(42);
        let stored = random_line(&mut rng);
        let plain = random_line(&mut rng);
        b.iter(|| black_box(fnw.encode(&plain, &stored, DinFlags::default())))
    });
    g.finish();
}

fn mechanism_benches(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("ablation/mechanisms");
    g.sample_size(10);
    g.bench_function("ecp_inline", |b| {
        let s = Scheme {
            name: "LazyC(inline)".into(),
            ctrl: Scheme::lazyc().ctrl.with_inline_ecp_writes(),
            ratio: NmRatio::one_one(),
        };
        b.iter(|| black_box(run_cell(&s, BenchKind::Lbm, &p)))
    });
    g.bench_function("write_pausing", |b| {
        let s = Scheme {
            name: "LazyC+WP".into(),
            ctrl: Scheme::lazyc().ctrl.with_write_pausing(),
            ratio: NmRatio::one_one(),
        };
        b.iter(|| black_box(run_cell(&s, BenchKind::Mcf, &p)))
    });
    g.bench_function("start_gap_psi64", |b| {
        let s = Scheme {
            name: "DIN+SG64".into(),
            ctrl: Scheme::din().ctrl.with_start_gap(64),
            ratio: NmRatio::one_one(),
        };
        b.iter(|| black_box(run_cell(&s, BenchKind::Zeusmp, &p)))
    });
    g.finish();
}

criterion_group!(benches, encoder_benches, mechanism_benches);
criterion_main!(benches);
