//! Figure 4 bench: WD error injection while writing under basic VnC.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::Scheme;
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for bench in [BenchKind::Mcf, BenchKind::GemsFdtd] {
        g.bench_function(bench.name(), |b| {
            b.iter(|| black_box(run_cell(&Scheme::baseline(), bench, &p)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
