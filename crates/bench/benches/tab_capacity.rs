//! §6.1 bench: the capacity/area analytics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_pcm::capacity;

fn bench(c: &mut Criterion) {
    c.bench_function("capacity/equal_area_comparison", |b| {
        b.iter(|| black_box(capacity::equal_area_comparison()))
    });
    c.bench_function("capacity/chip_comparisons", |b| {
        b.iter(|| {
            black_box((
                capacity::equal_size_chip_comparison(),
                capacity::big_chip_area_reduction(),
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
