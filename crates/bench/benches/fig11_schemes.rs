//! Figure 11 bench: one run per compared scheme (the headline figure).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::Scheme;
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for scheme in Scheme::figure11_set() {
        let name = scheme.name.clone();
        g.bench_function(&name, |b| {
            b.iter(|| black_box(run_cell(&scheme, BenchKind::Zeusmp, &p)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
