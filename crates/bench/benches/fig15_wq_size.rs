//! Figure 15 bench: LazyC+PreRead across write-queue sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::{ExperimentParams, Scheme};
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    for q in [8usize, 32, 64] {
        let p = ExperimentParams {
            write_queue_cap: q,
            ..params::criterion()
        };
        g.bench_function(format!("wq{q}"), |b| {
            b.iter(|| black_box(run_cell(&Scheme::lazyc_preread(), BenchKind::Mcf, &p)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
