//! Figure 12 bench: LazyC runs across ECP-N (correction counting).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::{ExperimentParams, Scheme};
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for entries in [0usize, 4, 6] {
        let p = ExperimentParams {
            ecp_entries: entries,
            ..params::criterion()
        };
        let scheme = if entries == 0 {
            Scheme::baseline()
        } else {
            Scheme::lazyc()
        };
        g.bench_function(format!("ecp{entries}"), |b| {
            b.iter(|| black_box(run_cell(&scheme, BenchKind::Mcf, &p)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
