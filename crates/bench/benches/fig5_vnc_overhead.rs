//! Figure 5 bench: DIN vs basic VnC runs (the overhead measurement pair).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::Scheme;
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("din_run", |b| {
        b.iter(|| black_box(run_cell(&Scheme::din(), BenchKind::Lbm, &p)))
    });
    g.bench_function("basic_vnc_run", |b| {
        b.iter(|| black_box(run_cell(&Scheme::baseline(), BenchKind::Lbm, &p)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
