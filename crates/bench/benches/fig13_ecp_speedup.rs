//! Figure 13 bench: the ECP-N performance sweep kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::fig12_13;

fn bench(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("sweep_ecp_0_and_6", |b| {
        b.iter(|| black_box(fig12_13(&p, &[0, 6])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
