//! Figure 16 bench: basic VnC under each (n:m) allocator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::Scheme;
use sdpcm_osalloc::NmRatio;
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    for ratio in [
        NmRatio::one_two(),
        NmRatio::two_three(),
        NmRatio::three_four(),
        NmRatio::one_one(),
    ] {
        g.bench_function(ratio.to_string(), |b| {
            b.iter(|| {
                black_box(run_cell(
                    &Scheme::baseline_with_ratio(ratio),
                    BenchKind::Lbm,
                    &p,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
