//! Figure 19 bench: write-cancellation integration runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdpcm_bench::params;
use sdpcm_core::experiments::run_cell;
use sdpcm_core::Scheme;
use sdpcm_osalloc::NmRatio;
use sdpcm_trace::BenchKind;

fn bench(c: &mut Criterion) {
    let p = params::criterion();
    let mut g = c.benchmark_group("fig19");
    g.sample_size(10);
    g.bench_function("vnc", |b| {
        b.iter(|| black_box(run_cell(&Scheme::baseline(), BenchKind::Bwaves, &p)))
    });
    g.bench_function("wc_lazyc", |b| {
        let scheme = Scheme {
            name: "WC+LazyC".into(),
            ctrl: Scheme::lazyc().ctrl.with_write_cancellation(),
            ratio: NmRatio::one_one(),
        };
        b.iter(|| black_box(run_cell(&scheme, BenchKind::Bwaves, &p)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
