#![warn(missing_docs)]

//! The SD-PCM benchmark harness.
//!
//! Two consumers share this crate:
//!
//! * the **`figures` binary** (`cargo run -p sdpcm-bench --release --bin
//!   figures -- all`) regenerates every table and figure of the paper as
//!   aligned text, using [`sdpcm_core::experiments`];
//! * the **Criterion benches** (`cargo bench`) measure the simulator's
//!   throughput on each figure's scenario, one bench target per
//!   table/figure (see `benches/`).
//!
//! [`render`] turns experiment rows into [`TextTable`]s;
//! [`params`] centralizes the reference counts used at each scale;
//! [`perf`] is the perf-trajectory harness behind `figures bench`,
//! recording throughput and sweep wall time into `BENCH_sweep.json`.

use sdpcm_core::ExperimentParams;
use sdpcm_engine::TextTable;

pub mod perf;
pub mod render;

/// Scales at which experiments run.
pub mod params {
    use super::ExperimentParams;

    /// Full harness scale (the `figures` binary).
    #[must_use]
    pub fn harness() -> ExperimentParams {
        ExperimentParams {
            refs_per_core: 25_000,
            ..ExperimentParams::quick_test()
        }
    }

    /// Criterion scale: small enough that one sample is sub-second.
    #[must_use]
    pub fn criterion() -> ExperimentParams {
        ExperimentParams {
            refs_per_core: 1_000,
            ..ExperimentParams::quick_test()
        }
    }

    /// Smoke scale for the perf harness in CI: tiny cells, so the whole
    /// `figures bench --smoke` run stays in tens of seconds.
    #[must_use]
    pub fn smoke() -> ExperimentParams {
        ExperimentParams {
            refs_per_core: 300,
            ..ExperimentParams::quick_test()
        }
    }
}

/// Every figure/table id the harness can regenerate.
pub const ALL_FIGURES: &[&str] = &[
    "table1", "capacity", "fig4", "fig5", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19",
];

/// A rendered figure: the aligned table plus, for single-series figures,
/// an ASCII bar chart.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// The aligned text table (always present).
    pub table: TextTable,
    /// A horizontal bar chart of the figure's main series, if it has one.
    pub bars: Option<String>,
}

/// Renders the figure with the given id at the given scale.
///
/// # Panics
///
/// Panics on an unknown id (see [`ALL_FIGURES`]).
#[must_use]
pub fn render_figure(id: &str, params: &ExperimentParams) -> TextTable {
    render_figure_full(id, params).table
}

/// Like [`render_figure`], but also returns the bar chart for figures
/// with a single numeric series (`cargo run … figures -- --bars`).
///
/// # Panics
///
/// Panics on an unknown id (see [`ALL_FIGURES`]).
#[must_use]
pub fn render_figure_full(id: &str, params: &ExperimentParams) -> Rendered {
    match id {
        "table1" => plain(render::table1()),
        "capacity" => plain(render::capacity()),
        "fig4" => plain(render::fig4(params)),
        "fig5" => plain(render::fig5(params)),
        "fig11" => plain(render::fig11(params)),
        "fig12" => charted(render::fig12_full(params)),
        "fig13" => charted(render::fig13_full(params)),
        "fig14" => charted(render::fig14_full(params)),
        "fig15" => charted(render::fig15_full(params)),
        "fig16" => charted(render::fig16_full(params)),
        "fig17" => charted(render::fig17_full(params)),
        "fig18" => charted(render::fig18_full(params)),
        "fig19" => plain(render::fig19(params)),
        other => panic!("unknown figure id {other:?}; known: {ALL_FIGURES:?}"),
    }
}

fn plain(table: TextTable) -> Rendered {
    Rendered { table, bars: None }
}

fn charted((table, series): (TextTable, Vec<(String, f64)>)) -> Rendered {
    let bars = sdpcm_engine::table::bar_chart(&series, 40);
    Rendered {
        table,
        bars: Some(bars),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_figures_render() {
        // The two analytic (non-simulation) targets render instantly.
        let t1 = render_figure("table1", &params::criterion());
        assert_eq!(t1.len(), 2);
        let cap = render_figure("capacity", &params::criterion());
        assert!(!cap.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_id_panics() {
        let _ = render_figure("fig99", &params::criterion());
    }

    #[test]
    fn all_ids_are_unique() {
        let mut ids = ALL_FIGURES.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_FIGURES.len());
    }
}
