//! The perf-trajectory harness behind `figures bench`.
//!
//! Measures what this repository cares about going fast — single-cell
//! simulation throughput (simulated cycles per wall-clock second, demand
//! writes retired per second) and full-figure sweep wall time, sequential
//! versus parallel — and serializes the results as `BENCH_sweep.json` so
//! successive PRs accumulate a machine-readable perf trajectory to
//! regress against.
//!
//! Timing uses the vendored criterion shim's [`criterion::time_function`]
//! loop; JSON is emitted by a local writer (the workspace builds offline,
//! so no serde).

use std::fmt::Write as _;
use std::time::Instant;

use criterion::time_function;
use sdpcm_cachesim::hierarchy::HierarchyConfig;
use sdpcm_core::experiments::{fig11, run_cell};
use sdpcm_core::hiersim::{HierarchyParams, HierarchySim};
use sdpcm_core::sweep;
use sdpcm_core::{ExperimentParams, HierTrace, RunStats, Scheme, SystemSim};
use sdpcm_engine::prof;
use sdpcm_trace::BenchKind;

/// Throughput of one repeatedly-simulated `(scheme, benchmark)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleCell {
    /// Scheme name.
    pub scheme: String,
    /// Benchmark name.
    pub bench: String,
    /// Timed iterations.
    pub samples: u64,
    /// Mean wall-clock seconds per simulation.
    pub mean_secs: f64,
    /// Simulated device cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Demand writes retired per wall-clock second.
    pub writes_per_sec: f64,
}

/// Wall time of one full figure sweep, sequential vs parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTiming {
    /// Figure id (e.g. `"fig11"`).
    pub figure: String,
    /// Simulation cells in the sweep.
    pub cells: usize,
    /// Wall seconds with one worker (the sequential reference).
    pub sequential_secs: f64,
    /// Wall seconds on the full worker pool.
    pub parallel_secs: f64,
    /// Workers the parallel run used.
    pub workers: usize,
    /// Whether the parallel rows matched the sequential rows exactly.
    pub identical: bool,
}

/// One point of the intra-cell scaling curve: the same `(scheme,
/// benchmark)` cell simulated with the controller's bank lanes sharded
/// over `workers` threads.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScalingPoint {
    /// `SDPCM_CELL_WORKERS` value the point was measured at.
    pub workers: usize,
    /// Mean wall-clock seconds per simulation.
    pub mean_secs: f64,
    /// Demand writes retired per wall-clock second.
    pub writes_per_sec: f64,
    /// Throughput relative to the 1-worker point.
    pub speedup: f64,
}

/// Intra-cell parallelism scaling of one cell (`SDPCM_CELL_WORKERS` =
/// 1/2/4/8), with the determinism cross-check: every worker count must
/// produce bit-identical `RunStats` and device content digest.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScaling {
    /// Scheme name.
    pub scheme: String,
    /// Benchmark name.
    pub bench: String,
    /// Throughput at each measured worker count.
    pub points: Vec<CellScalingPoint>,
    /// Whether all worker counts produced identical results.
    pub identical: bool,
}

/// Capture-once/replay-many versus inline generation on one
/// multi-scheme sweep: every cell of the sweep is run twice — once with
/// the full front end inline (cores, caches, RNG draws) and once
/// replaying a trace captured once per benchmark — and the results must
/// be bit-identical while the replay pass finishes faster.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTiming {
    /// Sweep id (e.g. `"hier-fig11"`).
    pub sweep: String,
    /// Schemes in the sweep.
    pub schemes: usize,
    /// Benchmark names the sweep covers.
    pub benches: Vec<String>,
    /// Post-cache hierarchy accesses per core per cell.
    pub accesses_per_core: u64,
    /// Wall seconds running every cell with inline generation.
    pub inline_secs: f64,
    /// Wall seconds spent capturing traces (one per benchmark),
    /// already included in `replay_secs`.
    pub capture_secs: f64,
    /// Wall seconds for capture plus every replayed cell.
    pub replay_secs: f64,
    /// Whether every replayed cell matched its inline cell exactly
    /// (`RunStats`, PCM traffic, and device content digest).
    pub identical: bool,
}

/// Everything one `figures bench` invocation measured.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfResults {
    /// `"smoke"` or `"default"`.
    pub mode: String,
    /// Cores the host reports ([`std::thread::available_parallelism`]).
    pub host_cores: usize,
    /// Seed the simulations used.
    pub seed: u64,
    /// References per core per simulation.
    pub refs_per_core: u64,
    /// Single-cell throughput measurements.
    pub single_cells: Vec<SingleCell>,
    /// Figure-sweep timings.
    pub figures: Vec<FigureTiming>,
    /// Intra-cell (bank-lane) scaling curves.
    pub cell_scaling: Vec<CellScaling>,
    /// Capture-vs-replay timings.
    pub replay: Vec<ReplayTiming>,
    /// Merged profiler report over the whole harness run (present only
    /// when profiling was requested via `--profile` / `SDPCM_PROF=1`).
    pub profile: Option<Vec<prof::SiteReport>>,
}

/// Runs the perf harness: times single-cell throughput and the fig11
/// sweep (sequential, then on `workers` workers, checking the outputs
/// match). `mode` is recorded verbatim in the results. With `profile`
/// the internal profiler is switched on for the duration of the run and
/// its merged per-site report is attached — the measurements themselves
/// are unchanged by construction (probes never draw randomness or touch
/// simulated time), only slightly slower in wall-clock.
#[must_use]
pub fn run(mode: &str, params: &ExperimentParams, workers: usize, profile: bool) -> PerfResults {
    if profile {
        prof::reset();
        prof::set_enabled(true);
    }
    let host_cores = sweep::host_parallelism();
    let samples = if mode == "smoke" { 2 } else { 5 };

    let mut single_cells = Vec::new();
    for (scheme, bench) in [
        (Scheme::baseline(), BenchKind::Mcf),
        (Scheme::lazyc_preread(), BenchKind::Mcf),
    ] {
        let reference = run_cell(&scheme, bench, params);
        let m = time_function(samples, || run_cell(&scheme, bench, params));
        let secs = m.mean_secs().max(1e-12);
        single_cells.push(SingleCell {
            scheme: scheme.name.clone(),
            bench: bench.name().to_owned(),
            samples: m.samples,
            mean_secs: m.mean_secs(),
            cycles_per_sec: reference.total_cycles as f64 / secs,
            writes_per_sec: reference.writes as f64 / secs,
        });
    }

    // fig11: every bench runs the baseline normalization cell plus each
    // non-baseline scheme of the figure's set.
    let cells = BenchKind::all().len() * Scheme::figure11_set().len();
    let seq = with_workers(1, || time_and_run(params));
    let par = with_workers(workers, || time_and_run(params));
    let figures = vec![FigureTiming {
        figure: "fig11".to_owned(),
        cells,
        sequential_secs: seq.0,
        parallel_secs: par.0,
        workers,
        identical: seq.1 == par.1,
    }];

    let cell_scaling = vec![cell_scaling(mode, params)];

    let replay = vec![replay_timing(mode, params)];

    let profile = if profile {
        let report = prof::report();
        prof::set_enabled(false);
        Some(report)
    } else {
        None
    };

    PerfResults {
        mode: mode.to_owned(),
        host_cores,
        seed: params.seed,
        refs_per_core: params.refs_per_core,
        single_cells,
        figures,
        cell_scaling,
        replay,
        profile,
    }
}

/// The worker counts every scaling curve samples.
const SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Measures the intra-cell scaling curve of the hottest single cell
/// (LazyC+PreRead on mcf): throughput at `SDPCM_CELL_WORKERS` 1/2/4/8,
/// verifying that every worker count reproduces the 1-worker `RunStats`
/// and device content digest bit for bit.
fn cell_scaling(mode: &str, params: &ExperimentParams) -> CellScaling {
    let scheme = Scheme::lazyc_preread();
    let bench = BenchKind::Mcf;
    let samples = if mode == "smoke" { 1 } else { 3 };

    let cell = || {
        let mut sim = SystemSim::build(&scheme, bench, params).expect("scaling cell build");
        let stats = sim.run().expect("scaling cell run");
        let digest = sim.controller().store().content_digest();
        (stats, digest)
    };

    let mut reference: Option<(RunStats, u64)> = None;
    let mut identical = true;
    let mut points = Vec::new();
    let mut base_secs = 0.0;
    for workers in SCALING_WORKERS {
        let (outcome, m) = with_cell_workers(workers, || (cell(), time_function(samples, cell)));
        match &reference {
            None => reference = Some(outcome),
            Some(r) => identical &= *r == outcome,
        }
        let secs = m.mean_secs().max(1e-12);
        if workers == 1 {
            base_secs = secs;
        }
        points.push(CellScalingPoint {
            workers,
            mean_secs: m.mean_secs(),
            writes_per_sec: reference.as_ref().map_or(0.0, |(s, _)| s.writes as f64) / secs,
            speedup: base_secs / secs,
        });
    }
    CellScaling {
        scheme: scheme.name.clone(),
        bench: bench.name().to_owned(),
        points,
        identical,
    }
}

/// One cell's replay-relevant outcome: the run stats, the PCM traffic
/// counts, and the device's final content digest.
type CellResult = (RunStats, (u64, u64), u64);

/// Times the hierarchy multi-scheme sweep (every figure 11 scheme over a
/// cache-resident and a miss-heavy benchmark) twice: inline front-end
/// generation per cell versus one trace capture per benchmark plus
/// replays, verifying the two passes agree bit for bit.
fn replay_timing(mode: &str, params: &ExperimentParams) -> ReplayTiming {
    let accesses = if mode == "smoke" { 20_000 } else { 100_000 };
    let hp = HierarchyParams {
        accesses_per_core: accesses,
        insts_per_access: 3,
        store_fraction: 0.3,
        caches: HierarchyConfig::table2(),
    };
    let benches = [BenchKind::Wrf, BenchKind::Mcf];
    let schemes = Scheme::figure11_set();

    let inline_started = Instant::now();
    let mut inline = Vec::new();
    for bench in benches {
        for scheme in &schemes {
            let mut sim = HierarchySim::build(scheme.clone(), bench, params, &hp)
                .expect("hierarchy cell build");
            inline.push(cell_result(sim.run().expect("hierarchy cell run"), &sim));
        }
    }
    let inline_secs = inline_started.elapsed().as_secs_f64();

    let replay_started = Instant::now();
    let mut capture_secs = 0.0;
    let mut replayed = Vec::new();
    for bench in benches {
        let capture_started = Instant::now();
        let trace = HierTrace::capture(bench, params, &hp);
        capture_secs += capture_started.elapsed().as_secs_f64();
        for scheme in &schemes {
            let mut sim = HierarchySim::build_replay(scheme.clone(), bench, params, &hp, &trace)
                .expect("hierarchy replay build");
            replayed.push(cell_result(sim.run().expect("hierarchy replay run"), &sim));
        }
    }
    let replay_secs = replay_started.elapsed().as_secs_f64();

    ReplayTiming {
        sweep: "hier-fig11".to_owned(),
        schemes: schemes.len(),
        benches: benches.iter().map(|b| b.name().to_owned()).collect(),
        accesses_per_core: accesses,
        inline_secs,
        capture_secs,
        replay_secs,
        identical: inline == replayed,
    }
}

fn cell_result(stats: RunStats, sim: &HierarchySim) -> CellResult {
    (
        stats,
        sim.pcm_traffic(),
        sim.controller().store().content_digest(),
    )
}

/// Times one fig11 sweep, returning (wall seconds, rows).
fn time_and_run(params: &ExperimentParams) -> (f64, Vec<sdpcm_core::experiments::Fig11Row>) {
    let started = std::time::Instant::now();
    let rows = fig11(params);
    (started.elapsed().as_secs_f64(), rows)
}

/// Runs `f` with the sweep worker count pinned via the
/// [`sweep::WORKERS_ENV`] environment variable, restoring it afterwards.
fn with_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    with_env(sweep::WORKERS_ENV, workers, f)
}

/// Runs `f` with the intra-cell worker count pinned via the
/// [`sweep::CELL_WORKERS_ENV`] environment variable, restoring it
/// afterwards.
fn with_cell_workers<T>(workers: usize, f: impl FnOnce() -> T) -> T {
    with_env(sweep::CELL_WORKERS_ENV, workers, f)
}

fn with_env<T>(var: &str, workers: usize, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var(var).ok();
    std::env::set_var(var, workers.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var(var, v),
        None => std::env::remove_var(var),
    }
    out
}

/// Serializes the results as the `BENCH_sweep.json` document
/// (`schema_version` 4; version 2 added the `replay` section, version 3
/// the optional `profile` section from `figures bench --profile`,
/// version 4 the `cell_scaling` section and an honest `host_cores`).
#[must_use]
pub fn to_json(r: &PerfResults) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": 4,");
    let _ = writeln!(s, "  \"mode\": {},", json_str(&r.mode));
    let _ = writeln!(s, "  \"host_cores\": {},", r.host_cores);
    let _ = writeln!(s, "  \"seed\": {},", r.seed);
    let _ = writeln!(s, "  \"refs_per_core\": {},", r.refs_per_core);
    s.push_str("  \"single_cell\": [\n");
    for (i, c) in r.single_cells.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"scheme\": {}, \"bench\": {}, \"samples\": {}, \"mean_secs\": {}, \
             \"cycles_per_sec\": {}, \"writes_per_sec\": {}}}{}",
            json_str(&c.scheme),
            json_str(&c.bench),
            c.samples,
            json_num(c.mean_secs),
            json_num(c.cycles_per_sec),
            json_num(c.writes_per_sec),
            comma(i, r.single_cells.len()),
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"figures\": [\n");
    for (i, f) in r.figures.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"figure\": {}, \"cells\": {}, \"sequential_secs\": {}, \
             \"parallel_secs\": {}, \"workers\": {}, \"speedup\": {}, \"identical\": {}}}{}",
            json_str(&f.figure),
            f.cells,
            json_num(f.sequential_secs),
            json_num(f.parallel_secs),
            f.workers,
            json_num(f.sequential_secs / f.parallel_secs.max(1e-12)),
            f.identical,
            comma(i, r.figures.len()),
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"cell_scaling\": [\n");
    for (i, c) in r.cell_scaling.iter().enumerate() {
        let points: Vec<String> = c
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"workers\": {}, \"mean_secs\": {}, \"writes_per_sec\": {}, \
                     \"speedup\": {}}}",
                    p.workers,
                    json_num(p.mean_secs),
                    json_num(p.writes_per_sec),
                    json_num(p.speedup),
                )
            })
            .collect();
        let _ = writeln!(
            s,
            "    {{\"scheme\": {}, \"bench\": {}, \"points\": [{}], \"identical\": {}}}{}",
            json_str(&c.scheme),
            json_str(&c.bench),
            points.join(", "),
            c.identical,
            comma(i, r.cell_scaling.len()),
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"replay\": [\n");
    for (i, t) in r.replay.iter().enumerate() {
        let benches: Vec<String> = t.benches.iter().map(|b| json_str(b)).collect();
        let _ = writeln!(
            s,
            "    {{\"sweep\": {}, \"schemes\": {}, \"benches\": [{}], \
             \"accesses_per_core\": {}, \"inline_secs\": {}, \"capture_secs\": {}, \
             \"replay_secs\": {}, \"speedup\": {}, \"identical\": {}}}{}",
            json_str(&t.sweep),
            t.schemes,
            benches.join(", "),
            t.accesses_per_core,
            json_num(t.inline_secs),
            json_num(t.capture_secs),
            json_num(t.replay_secs),
            json_num(t.inline_secs / t.replay_secs.max(1e-12)),
            t.identical,
            comma(i, r.replay.len()),
        );
    }
    match &r.profile {
        Some(sites) => {
            s.push_str("  ],\n");
            s.push_str("  \"profile\": [\n");
            for (i, site) in sites.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "    {{\"site\": {}, \"calls\": {}, \"total_ns\": {}}}{}",
                    json_str(site.name),
                    site.calls,
                    site.total_ns,
                    comma(i, sites.len()),
                );
            }
            s.push_str("  ]\n}\n");
        }
        None => s.push_str("  ]\n}\n"),
    }
    s
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Infinity; clamp to 0).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfResults {
        PerfResults {
            mode: "smoke".to_owned(),
            host_cores: 4,
            seed: 42,
            refs_per_core: 300,
            single_cells: vec![SingleCell {
                scheme: "baseline".to_owned(),
                bench: "mcf".to_owned(),
                samples: 2,
                mean_secs: 0.5,
                cycles_per_sec: 1e6,
                writes_per_sec: 2e3,
            }],
            figures: vec![FigureTiming {
                figure: "fig11".to_owned(),
                cells: 63,
                sequential_secs: 10.0,
                parallel_secs: 4.0,
                workers: 4,
                identical: true,
            }],
            cell_scaling: vec![CellScaling {
                scheme: "LazyC+PreRead".to_owned(),
                bench: "mcf".to_owned(),
                points: vec![
                    CellScalingPoint {
                        workers: 1,
                        mean_secs: 0.4,
                        writes_per_sec: 1e4,
                        speedup: 1.0,
                    },
                    CellScalingPoint {
                        workers: 8,
                        mean_secs: 0.1,
                        writes_per_sec: 4e4,
                        speedup: 4.0,
                    },
                ],
                identical: true,
            }],
            replay: vec![ReplayTiming {
                sweep: "hier-fig11".to_owned(),
                schemes: 7,
                benches: vec!["wrf".to_owned(), "mcf".to_owned()],
                accesses_per_core: 20_000,
                inline_secs: 8.0,
                capture_secs: 0.25,
                replay_secs: 2.0,
                identical: true,
            }],
            profile: None,
        }
    }

    #[test]
    fn json_has_schema_and_metrics() {
        let j = to_json(&sample());
        for needle in [
            "\"schema_version\": 4",
            "\"mode\": \"smoke\"",
            "\"host_cores\": 4",
            "\"cycles_per_sec\": 1000000",
            "\"figure\": \"fig11\"",
            "\"speedup\": 2.5",
            "\"identical\": true",
            "\"cell_scaling\": [",
            "\"points\": [{\"workers\": 1,",
            "\"sweep\": \"hier-fig11\"",
            "\"benches\": [\"wrf\", \"mcf\"]",
            "\"capture_secs\": 0.25",
            "\"speedup\": 4",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn json_is_structurally_balanced() {
        let j = to_json(&sample());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
        assert!(
            !j.contains("\"profile\""),
            "no profile section unless profiled"
        );
    }

    #[test]
    fn profile_section_serializes_when_present() {
        let mut r = sample();
        r.profile = Some(vec![prof::SiteReport {
            name: "ctrl_advance",
            calls: 10,
            total_ns: 1234,
        }]);
        let j = to_json(&r);
        assert!(
            j.contains("\"profile\": ["),
            "profile section present:\n{j}"
        );
        assert!(j.contains("{\"site\": \"ctrl_advance\", \"calls\": 10, \"total_ns\": 1234}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn with_workers_restores_env() {
        std::env::remove_var(sweep::WORKERS_ENV);
        let inside = with_workers(3, || std::env::var(sweep::WORKERS_ENV).unwrap());
        assert_eq!(inside, "3");
        assert!(std::env::var(sweep::WORKERS_ENV).is_err());
    }
}
