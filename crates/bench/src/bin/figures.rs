//! Regenerates the paper's tables and figures as aligned text.
//!
//! ```text
//! cargo run -p sdpcm-bench --release --bin figures -- all
//! cargo run -p sdpcm-bench --release --bin figures -- fig11 fig12
//! cargo run -p sdpcm-bench --release --bin figures -- --quick all
//! cargo run -p sdpcm-bench --release --bin figures -- --refs 50000 fig11
//! ```
//!
//! The `bench` subcommand measures the simulator instead of running it
//! for results: single-cell throughput, the fig11 sweep's sequential vs
//! parallel wall time, and the capture-once/replay-many hierarchy sweep
//! (inline front-end generation vs shared-trace replay, bit-identical
//! by construction), recorded into `BENCH_sweep.json`:
//!
//! ```text
//! cargo run -p sdpcm-bench --release --bin figures -- bench
//! cargo run -p sdpcm-bench --release --bin figures -- bench --smoke
//! cargo run -p sdpcm-bench --release --bin figures -- bench --workers 4 --out BENCH_sweep.json
//! ```

use std::time::Instant;

use sdpcm_bench::{params, perf, render_figure_full, ALL_FIGURES};
use sdpcm_core::{sweep, ExperimentParams};

const FIGURE_TITLES: &[(&str, &str)] = &[
    ("table1", "Table 1: disturbance probability for 4F2 cells"),
    ("capacity", "Section 6.1: capacity and chip-area comparison"),
    ("fig4", "Figure 4: WD errors when writing a PCM line"),
    ("fig5", "Figure 5: VnC overhead at runtime"),
    (
        "fig11",
        "Figure 11: system performance under different schemes",
    ),
    ("fig12", "Figure 12: ECP entries vs correction operations"),
    ("fig13", "Figure 13: ECP entries vs system performance"),
    ("fig14", "Figure 14: performance across the DIMM lifetime"),
    ("fig15", "Figure 15: write queue sizes in LazyC+PreRead"),
    (
        "fig16",
        "Figure 16: performance under different (n:m) allocators",
    ),
    (
        "fig17",
        "Figure 17: normalized lifetime degradation on data chips",
    ),
    (
        "fig18",
        "Figure 18: normalized lifetime degradation on ECP chip",
    ),
    (
        "fig19",
        "Figure 19: integrating LazyC with write cancellation",
    ),
];

/// `figures bench [--smoke] [--profile] [--workers N] [--refs N] [--seed S] [--out PATH]`
fn bench_main(args: Vec<String>) {
    let mut p = params::criterion();
    let mut mode = "default";
    let mut workers = sweep::default_workers();
    let mut out = "BENCH_sweep.json".to_owned();
    let mut profile = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                mode = "smoke";
                p = params::smoke();
            }
            "--profile" => profile = true,
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--workers takes a positive integer");
            }
            "--refs" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--refs takes a positive integer");
                p = ExperimentParams {
                    refs_per_core: v,
                    ..p
                };
            }
            "--seed" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
                p = ExperimentParams { seed: v, ..p };
            }
            "--out" => {
                out = it.next().expect("--out takes a path");
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: figures bench [--smoke] [--profile] [--workers N] [--refs N] \
                     [--seed S] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    // `SDPCM_PROF=1` in the environment is equivalent to `--profile`.
    let profile = profile || sdpcm_engine::prof::enabled();
    println!(
        "perf harness ({mode}, seed={}, refs/core={}, workers={workers}, profile={profile})",
        p.seed, p.refs_per_core
    );
    let started = Instant::now();
    let results = perf::run(mode, &p, workers, profile);
    for c in &results.single_cells {
        println!(
            "cell {}/{}: {:.3}s/run, {:.3e} cycles/s, {:.3e} writes/s",
            c.scheme, c.bench, c.mean_secs, c.cycles_per_sec, c.writes_per_sec
        );
    }
    for f in &results.figures {
        println!(
            "{} ({} cells): sequential {:.2}s, parallel {:.2}s on {} workers ({:.2}x), identical: {}",
            f.figure,
            f.cells,
            f.sequential_secs,
            f.parallel_secs,
            f.workers,
            f.sequential_secs / f.parallel_secs.max(1e-12),
            f.identical
        );
        assert!(
            f.identical,
            "parallel sweep output diverged from sequential"
        );
    }
    for c in &results.cell_scaling {
        let curve: Vec<String> = c
            .points
            .iter()
            .map(|p| {
                format!(
                    "{}w {:.3e} wr/s ({:.2}x)",
                    p.workers, p.writes_per_sec, p.speedup
                )
            })
            .collect();
        println!(
            "cell scaling {}/{}: {} — identical: {}",
            c.scheme,
            c.bench,
            curve.join(", "),
            c.identical
        );
        assert!(
            c.identical,
            "intra-cell worker counts produced diverging results"
        );
    }
    for t in &results.replay {
        println!(
            "{} ({} schemes x {:?}, {} accesses/core): inline {:.2}s, \
             capture {:.2}s + replay = {:.2}s ({:.2}x), identical: {}",
            t.sweep,
            t.schemes,
            t.benches,
            t.accesses_per_core,
            t.inline_secs,
            t.capture_secs,
            t.replay_secs,
            t.inline_secs / t.replay_secs.max(1e-12),
            t.identical
        );
        assert!(
            t.identical,
            "replayed sweep output diverged from inline generation"
        );
    }
    if let Some(sites) = &results.profile {
        println!("profile (merged over the whole harness run):");
        for s in sites {
            println!(
                "  {:<14} {:>12} calls  {:>10.3} ms",
                s.name,
                s.calls,
                s.total_ns as f64 / 1e6
            );
        }
    }
    let json = perf::to_json(&results);
    std::fs::write(&out, json).expect("write BENCH_sweep.json");
    println!(
        "wrote {out} in {:.1}s total",
        started.elapsed().as_secs_f32()
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        args.remove(0);
        bench_main(args);
        return;
    }
    let mut p = params::harness();
    let mut bars = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => p = params::criterion(),
            "--bars" => bars = true,
            "--refs" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--refs takes a positive integer");
                p = ExperimentParams {
                    refs_per_core: v,
                    ..p
                };
            }
            "--seed" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
                p = ExperimentParams { seed: v, ..p };
            }
            "all" => wanted.extend(ALL_FIGURES.iter().map(|s| (*s).to_owned())),
            other if ALL_FIGURES.contains(&other) => wanted.push(other.to_owned()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: figures [--quick] [--bars] [--refs N] [--seed S] [all|{ALL_FIGURES:?}]"
                );
                std::process::exit(2);
            }
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| (*s).to_owned()));
    }
    wanted.dedup();

    println!(
        "SD-PCM reproduction harness (seed={}, refs/core={})",
        p.seed, p.refs_per_core
    );
    for id in wanted {
        let title = FIGURE_TITLES
            .iter()
            .find(|(k, _)| *k == id)
            .map_or(id.as_str(), |(_, t)| *t);
        println!("\n=== {title} ===");
        let started = Instant::now();
        let rendered = render_figure_full(&id, &p);
        println!("{}", rendered.table);
        if bars {
            if let Some(chart) = rendered.bars {
                println!("{chart}");
            }
        }
        println!(
            "[{id} regenerated in {:.1}s]",
            started.elapsed().as_secs_f32()
        );
    }
}
