//! Regenerates the paper's tables and figures as aligned text.
//!
//! ```text
//! cargo run -p sdpcm-bench --release --bin figures -- all
//! cargo run -p sdpcm-bench --release --bin figures -- fig11 fig12
//! cargo run -p sdpcm-bench --release --bin figures -- --quick all
//! cargo run -p sdpcm-bench --release --bin figures -- --refs 50000 fig11
//! ```

use std::time::Instant;

use sdpcm_bench::{params, render_figure_full, ALL_FIGURES};
use sdpcm_core::ExperimentParams;

const FIGURE_TITLES: &[(&str, &str)] = &[
    ("table1", "Table 1: disturbance probability for 4F2 cells"),
    ("capacity", "Section 6.1: capacity and chip-area comparison"),
    ("fig4", "Figure 4: WD errors when writing a PCM line"),
    ("fig5", "Figure 5: VnC overhead at runtime"),
    (
        "fig11",
        "Figure 11: system performance under different schemes",
    ),
    ("fig12", "Figure 12: ECP entries vs correction operations"),
    ("fig13", "Figure 13: ECP entries vs system performance"),
    ("fig14", "Figure 14: performance across the DIMM lifetime"),
    ("fig15", "Figure 15: write queue sizes in LazyC+PreRead"),
    (
        "fig16",
        "Figure 16: performance under different (n:m) allocators",
    ),
    (
        "fig17",
        "Figure 17: normalized lifetime degradation on data chips",
    ),
    (
        "fig18",
        "Figure 18: normalized lifetime degradation on ECP chip",
    ),
    (
        "fig19",
        "Figure 19: integrating LazyC with write cancellation",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut p = params::harness();
    let mut bars = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => p = params::criterion(),
            "--bars" => bars = true,
            "--refs" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--refs takes a positive integer");
                p = ExperimentParams {
                    refs_per_core: v,
                    ..p
                };
            }
            "--seed" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
                p = ExperimentParams { seed: v, ..p };
            }
            "all" => wanted.extend(ALL_FIGURES.iter().map(|s| (*s).to_owned())),
            other if ALL_FIGURES.contains(&other) => wanted.push(other.to_owned()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: figures [--quick] [--bars] [--refs N] [--seed S] [all|{ALL_FIGURES:?}]"
                );
                std::process::exit(2);
            }
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| (*s).to_owned()));
    }
    wanted.dedup();

    println!(
        "SD-PCM reproduction harness (seed={}, refs/core={})",
        p.seed, p.refs_per_core
    );
    for id in wanted {
        let title = FIGURE_TITLES
            .iter()
            .find(|(k, _)| *k == id)
            .map_or(id.as_str(), |(_, t)| *t);
        println!("\n=== {title} ===");
        let started = Instant::now();
        let rendered = render_figure_full(&id, &p);
        println!("{}", rendered.table);
        if bars {
            if let Some(chart) = rendered.bars {
                println!("{chart}");
            }
        }
        println!(
            "[{id} regenerated in {:.1}s]",
            started.elapsed().as_secs_f32()
        );
    }
}
