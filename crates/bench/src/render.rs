//! Table renderers: experiment rows → aligned text.

use sdpcm_core::experiments as exp;
use sdpcm_core::ExperimentParams;
use sdpcm_engine::table::{f3, pct};
use sdpcm_engine::TextTable;
use sdpcm_osalloc::NmRatio;
use sdpcm_pcm::capacity;

/// Table 1: disturbance probability for 4F² cells.
#[must_use]
pub fn table1() -> TextTable {
    let mut t = TextTable::new(&["Between two cells along", "Temp", "Error rate (SLC)"]);
    for row in exp::table1() {
        t.row_owned(vec![
            row.direction,
            format!("{:.0} C", row.temp_c),
            pct(row.error_rate),
        ]);
    }
    t
}

/// §6.1 capacity/area analytics.
#[must_use]
pub fn capacity() -> TextTable {
    let mut t = TextTable::new(&["quantity", "value", "paper"]);
    let c = capacity::equal_area_comparison();
    t.row_owned(vec![
        "SD-PCM capacity (equal array area)".into(),
        format!("{:.2} GB", c.sd_pcm_gb),
        "4 GB".into(),
    ]);
    t.row_owned(vec![
        "DIN capacity (equal array area)".into(),
        format!("{:.2} GB", c.din_gb),
        "2.22 GB".into(),
    ]);
    t.row_owned(vec![
        "capacity improvement".into(),
        pct(c.improvement),
        "80%".into(),
    ]);
    let (din_chips, sd_chips, reduction) = capacity::equal_size_chip_comparison();
    t.row_owned(vec![
        "chips for 4 GB (DIN vs SD-PCM)".into(),
        format!("{din_chips} vs {sd_chips}"),
        "18 vs 10".into(),
    ]);
    t.row_owned(vec![
        "equal-size-chip count reduction".into(),
        pct(reduction),
        "~38-44%".into(),
    ]);
    t.row_owned(vec![
        "big-chip area reduction".into(),
        pct(capacity::big_chip_area_reduction()),
        "~20%".into(),
    ]);
    t
}

/// Figure 4: WD errors per line write.
#[must_use]
pub fn fig4(params: &ExperimentParams) -> TextTable {
    let mut t = TextTable::new(&["bench", "WL avg", "WL max", "BL avg", "BL max"]);
    for r in exp::fig4(params) {
        t.row_owned(vec![
            r.bench,
            f3(r.wl_avg),
            r.wl_max.to_string(),
            f3(r.bl_avg),
            r.bl_max.to_string(),
        ]);
    }
    t
}

/// Figure 5: VnC overhead split.
#[must_use]
pub fn fig5(params: &ExperimentParams) -> TextTable {
    let mut t = TextTable::new(&["bench", "verification", "correction", "total slowdown"]);
    for r in exp::fig5(params) {
        t.row_owned(vec![
            r.bench,
            pct(r.verification),
            pct(r.correction),
            pct(r.total),
        ]);
    }
    t
}

/// Figure 11: speedups normalized to baseline.
#[must_use]
pub fn fig11(params: &ExperimentParams) -> TextTable {
    let rows = exp::fig11(params);
    let mut header: Vec<String> = vec!["bench".into()];
    if let Some(first) = rows.first() {
        header.extend(first.speedups.iter().map(|(n, _)| n.clone()));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);
    for r in rows {
        let mut cells = vec![r.bench];
        cells.extend(r.speedups.iter().map(|(_, v)| f3(*v)));
        t.row_owned(cells);
    }
    t
}

fn ecp_sweep(params: &ExperimentParams) -> Vec<exp::EcpSweepRow> {
    exp::fig12_13(params, &[0, 2, 4, 6, 8, 10])
}

/// Figure 12: corrections per write vs ECP entries.
#[must_use]
pub fn fig12(params: &ExperimentParams) -> TextTable {
    fig12_full(params).0
}

/// Figure 12 with its bar-chart series.
#[must_use]
pub fn fig12_full(params: &ExperimentParams) -> (TextTable, Vec<(String, f64)>) {
    let mut t = TextTable::new(&["ECP entries", "corrections/write"]);
    let mut series = Vec::new();
    for r in ecp_sweep(params) {
        t.row_owned(vec![
            format!("ECP-{}", r.entries),
            f3(r.corrections_per_write),
        ]);
        series.push((format!("ECP-{}", r.entries), r.corrections_per_write));
    }
    (t, series)
}

/// Figure 13: speedup vs ECP entries.
#[must_use]
pub fn fig13(params: &ExperimentParams) -> TextTable {
    fig13_full(params).0
}

/// Figure 13 with its bar-chart series.
#[must_use]
pub fn fig13_full(params: &ExperimentParams) -> (TextTable, Vec<(String, f64)>) {
    let mut t = TextTable::new(&["ECP entries", "speedup vs ECP-0"]);
    let mut series = Vec::new();
    for r in ecp_sweep(params) {
        t.row_owned(vec![format!("ECP-{}", r.entries), f3(r.speedup_vs_ecp0)]);
        series.push((format!("ECP-{}", r.entries), r.speedup_vs_ecp0));
    }
    (t, series)
}

/// Figure 14: performance over the DIMM lifetime.
#[must_use]
pub fn fig14(params: &ExperimentParams) -> TextTable {
    fig14_full(params).0
}

/// Figure 14 with its bar-chart series.
#[must_use]
pub fn fig14_full(params: &ExperimentParams) -> (TextTable, Vec<(String, f64)>) {
    let mut t = TextTable::new(&["lifetime consumed", "speedup vs fresh"]);
    let mut series = Vec::new();
    for r in exp::fig14(params, &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]) {
        t.row_owned(vec![pct(r.age), f3(r.speedup_vs_fresh)]);
        series.push((pct(r.age), r.speedup_vs_fresh));
    }
    (t, series)
}

/// Figure 15: write-queue-size sensitivity.
#[must_use]
pub fn fig15(params: &ExperimentParams) -> TextTable {
    fig15_full(params).0
}

/// Figure 15 with its bar-chart series.
#[must_use]
pub fn fig15_full(params: &ExperimentParams) -> (TextTable, Vec<(String, f64)>) {
    let mut t = TextTable::new(&["write queue entries", "LazyC+PreRead speedup vs DIN"]);
    let mut series = Vec::new();
    for r in exp::fig15(params, &[8, 16, 32, 64]) {
        t.row_owned(vec![r.queue_size.to_string(), f3(r.speedup_vs_din)]);
        series.push((format!("WQ{}", r.queue_size), r.speedup_vs_din));
    }
    (t, series)
}

/// Figure 16: (n:m) ratio sensitivity.
#[must_use]
pub fn fig16(params: &ExperimentParams) -> TextTable {
    fig16_full(params).0
}

/// Figure 16 with its bar-chart series.
#[must_use]
pub fn fig16_full(params: &ExperimentParams) -> (TextTable, Vec<(String, f64)>) {
    let mut t = TextTable::new(&["allocator", "speedup vs DIN", "usable capacity"]);
    let mut series = Vec::new();
    let ratios = [
        NmRatio::one_two(),
        NmRatio::two_three(),
        NmRatio::three_four(),
        NmRatio::one_one(),
    ];
    for r in exp::fig16(params, &ratios) {
        t.row_owned(vec![
            r.ratio.to_string(),
            f3(r.speedup_vs_din),
            pct(r.capacity_fraction),
        ]);
        series.push((r.ratio.to_string(), r.speedup_vs_din));
    }
    (t, series)
}

/// Figure 17: data-chip lifetime.
#[must_use]
pub fn fig17(params: &ExperimentParams) -> TextTable {
    fig17_full(params).0
}

/// Figure 17 with its bar-chart series.
#[must_use]
pub fn fig17_full(params: &ExperimentParams) -> (TextTable, Vec<(String, f64)>) {
    let mut t = TextTable::new(&["bench", "normalized data-chip lifetime"]);
    let mut series = Vec::new();
    for r in exp::fig17_18(params) {
        t.row_owned(vec![r.bench.clone(), pct(r.data_lifetime)]);
        series.push((r.bench, r.data_lifetime));
    }
    (t, series)
}

/// Figure 18: ECP-chip lifetime.
#[must_use]
pub fn fig18(params: &ExperimentParams) -> TextTable {
    fig18_full(params).0
}

/// Figure 18 with its bar-chart series.
#[must_use]
pub fn fig18_full(params: &ExperimentParams) -> (TextTable, Vec<(String, f64)>) {
    let mut t = TextTable::new(&["bench", "normalized ECP-chip lifetime"]);
    let mut series = Vec::new();
    for r in exp::fig17_18(params) {
        t.row_owned(vec![r.bench.clone(), pct(r.ecp_lifetime)]);
        series.push((r.bench, r.ecp_lifetime));
    }
    (t, series)
}

/// Figure 19: write-cancellation integration.
#[must_use]
pub fn fig19(params: &ExperimentParams) -> TextTable {
    let mut t = TextTable::new(&["bench", "VnC", "WC", "LazyC", "WC+LazyC"]);
    for r in exp::fig19(params) {
        t.row_owned(vec![
            r.bench,
            "1.000".into(),
            f3(r.wc),
            f3(r.lazyc),
            f3(r.wc_lazyc),
        ]);
    }
    t
}
