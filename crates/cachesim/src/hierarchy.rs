//! The Table 2 cache hierarchy of one core.
//!
//! Private, three-level, all 64 B lines, write-back:
//!
//! * L1: 32 KB, 4-way (I/D unified here; the traces are data references),
//! * L2: 2 MB, 4-way LRU,
//! * L3: 32 MB DRAM cache, 8-way LRU, 50 ns (200-cycle) hit.
//!
//! A reference walks down until it hits; misses allocate on the way back
//! up. Dirty victims cascade: an L1 victim is written into L2, an L2
//! victim into L3, and an L3 victim becomes a PCM write-back. The PCM
//! traffic (fill reads + write-backs) is returned to the caller, which
//! forwards it to the memory controller.

use sdpcm_engine::prof::{self, Site};
use sdpcm_engine::Cycle;

use crate::cache::{AccessKind, CacheConfig, SetAssocCache, LINE_BYTES};

/// Configuration of the three levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 configuration.
    pub l1: CacheConfig,
    /// L2 configuration.
    pub l2: CacheConfig,
    /// L3 (DRAM cache) configuration.
    pub l3: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's Table 2 values.
    #[must_use]
    pub fn table2() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                hit_latency: Cycle(2),
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 4,
                hit_latency: Cycle(20),
            },
            l3: CacheConfig {
                size_bytes: 32 * 1024 * 1024,
                ways: 8,
                hit_latency: Cycle(200), // 50 ns at 4 GHz
            },
        }
    }

    /// A scaled-down hierarchy for fast tests (same structure, tiny
    /// capacities so misses actually happen).
    #[must_use]
    pub fn tiny() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 8 * LINE_BYTES,
                ways: 2,
                hit_latency: Cycle(2),
            },
            l2: CacheConfig {
                size_bytes: 32 * LINE_BYTES,
                ways: 4,
                hit_latency: Cycle(20),
            },
            l3: CacheConfig {
                size_bytes: 128 * LINE_BYTES,
                ways: 8,
                hit_latency: Cycle(200),
            },
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::table2()
    }
}

/// Outcome of pushing one reference through the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierarchyOutcome {
    /// Cache latency accumulated before PCM is reached (0 traffic means
    /// the reference was fully absorbed).
    pub latency: Cycle,
    /// Line that must be fetched from PCM (demand fill), if any.
    pub pcm_fill: Option<u64>,
    /// Dirty lines pushed out to PCM.
    pub pcm_writebacks: Vec<u64>,
}

impl HierarchyOutcome {
    /// Whether the reference was satisfied without touching PCM.
    #[must_use]
    pub fn absorbed(&self) -> bool {
        self.pcm_fill.is_none() && self.pcm_writebacks.is_empty()
    }
}

/// The private cache stack of one core.
///
/// # Examples
///
/// ```
/// use sdpcm_cachesim::cache::AccessKind;
/// use sdpcm_cachesim::hierarchy::{CoreCaches, HierarchyConfig};
///
/// let mut c = CoreCaches::new(HierarchyConfig::tiny());
/// let first = c.access(42, AccessKind::Read);
/// assert_eq!(first.pcm_fill, Some(42)); // cold miss reaches PCM
/// let second = c.access(42, AccessKind::Read);
/// assert!(second.absorbed());
/// ```
#[derive(Debug, Clone)]
pub struct CoreCaches {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
}

impl CoreCaches {
    /// Builds an empty hierarchy.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> CoreCaches {
        CoreCaches {
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
        }
    }

    /// Pushes one reference through L1 → L2 → L3, returning accumulated
    /// latency and the PCM traffic it generates.
    pub fn access(&mut self, line_addr: u64, kind: AccessKind) -> HierarchyOutcome {
        let _t = prof::timer(Site::CacheAccess);
        let mut out = HierarchyOutcome::default();

        // L1.
        out.latency += self.l1.config().hit_latency;
        let l1 = self.l1.access(line_addr, kind);
        if let Some(victim) = l1.writeback {
            // Dirty L1 victim lands in L2.
            self.write_into_l2(victim, &mut out);
        }
        if l1.hit {
            return out;
        }

        // L2 fill path (the fill itself is a read of the lower level).
        out.latency += self.l2.config().hit_latency;
        let l2 = self.l2.access(line_addr, AccessKind::Read);
        if let Some(victim) = l2.writeback {
            self.write_into_l3(victim, &mut out);
        }
        if l2.hit {
            return out;
        }

        // L3.
        out.latency += self.l3.config().hit_latency;
        let l3 = self.l3.access(line_addr, AccessKind::Read);
        if let Some(victim) = l3.writeback {
            out.pcm_writebacks.push(victim);
        }
        if !l3.hit {
            out.pcm_fill = Some(line_addr);
        }
        out
    }

    fn write_into_l2(&mut self, line_addr: u64, out: &mut HierarchyOutcome) {
        let r = self.l2.access(line_addr, AccessKind::Write);
        if let Some(victim) = r.writeback {
            self.write_into_l3(victim, out);
        }
        // A write-back that misses L2 allocates there; no PCM read is
        // needed (full-line write-back).
    }

    fn write_into_l3(&mut self, line_addr: u64, out: &mut HierarchyOutcome) {
        let r = self.l3.access(line_addr, AccessKind::Write);
        if let Some(victim) = r.writeback {
            out.pcm_writebacks.push(victim);
        }
    }

    /// Aggregate (hits, misses) across the three levels, L1-first.
    #[must_use]
    pub fn stats(&self) -> [(u64, u64); 3] {
        [
            (self.l1.hits(), self.l1.misses()),
            (self.l2.hits(), self.l2.misses()),
            (self.l3.hits(), self.l3.misses()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_reaches_pcm() {
        let mut c = CoreCaches::new(HierarchyConfig::tiny());
        let out = c.access(100, AccessKind::Read);
        assert_eq!(out.pcm_fill, Some(100));
        assert!(out.pcm_writebacks.is_empty());
        // Latency includes all three levels.
        assert_eq!(out.latency, Cycle(2 + 20 + 200));
    }

    #[test]
    fn warm_read_is_absorbed_fast() {
        let mut c = CoreCaches::new(HierarchyConfig::tiny());
        c.access(100, AccessKind::Read);
        let out = c.access(100, AccessKind::Read);
        assert!(out.absorbed());
        assert_eq!(out.latency, Cycle(2));
    }

    #[test]
    fn dirty_data_eventually_reaches_pcm() {
        let mut c = CoreCaches::new(HierarchyConfig::tiny());
        // Write a line, then stream enough distinct lines through to
        // force it out of all three levels.
        c.access(0, AccessKind::Write);
        let mut writebacks = Vec::new();
        for l in 1..4096u64 {
            let out = c.access(l, AccessKind::Read);
            writebacks.extend(out.pcm_writebacks);
        }
        assert!(
            writebacks.contains(&0),
            "dirty line 0 must be written back to PCM"
        );
    }

    #[test]
    fn clean_lines_never_write_back() {
        let mut c = CoreCaches::new(HierarchyConfig::tiny());
        for l in 0..4096u64 {
            let out = c.access(l, AccessKind::Read);
            assert!(out.pcm_writebacks.is_empty(), "read-only stream wrote back");
        }
    }

    #[test]
    fn l2_absorbs_l1_victims() {
        let mut c = CoreCaches::new(HierarchyConfig::tiny());
        // L1 tiny (16 lines span with 8 lines capacity); line 0 falls out
        // of L1 quickly but must still hit in L2.
        c.access(0, AccessKind::Read);
        for l in 1..9u64 {
            c.access(l * 2, AccessKind::Read); // same L1 sets
        }
        let out = c.access(0, AccessKind::Read);
        assert!(out.pcm_fill.is_none(), "L2/L3 should still hold line 0");
        assert!(out.latency < Cycle(2 + 20 + 200));
    }

    #[test]
    fn table2_config_shapes() {
        let cfg = HierarchyConfig::table2();
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.l3.size_bytes, 32 * 1024 * 1024);
        assert_eq!(cfg.l3.hit_latency, Cycle(200));
        // Must construct without panicking.
        let _ = CoreCaches::new(cfg);
    }
}
