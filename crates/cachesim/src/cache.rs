//! A generic set-associative cache.
//!
//! Write-back, write-allocate, true LRU. Addresses are *line* addresses
//! (byte address / 64); the cache never stores data — the device store is
//! the single source of truth for contents — only presence and dirtiness,
//! which is all the timing model needs.

use sdpcm_engine::Cycle;

/// Line size used throughout the system (Table 2: 64 B lines everywhere).
pub const LINE_BYTES: u64 = 64;

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Hit latency.
    pub hit_latency: Cycle,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not divide into whole sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        assert!(self.ways > 0 && self.size_bytes > 0);
        let lines = self.size_bytes / LINE_BYTES;
        assert!(
            lines.is_multiple_of(u64::from(self.ways)) && lines > 0,
            "capacity must divide into whole sets"
        );
        lines / u64::from(self.ways)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recently used
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Dirty line evicted to make room (line address), if any.
    pub writeback: Option<u64>,
}

/// A set-associative cache over line addresses.
///
/// # Examples
///
/// ```
/// use sdpcm_cachesim::cache::{AccessKind, CacheConfig, SetAssocCache};
/// use sdpcm_engine::Cycle;
///
/// let mut c = SetAssocCache::new(CacheConfig {
///     size_bytes: 4096,
///     ways: 2,
///     hit_latency: Cycle(2),
/// });
/// assert!(!c.access(7, AccessKind::Read).hit); // cold miss
/// assert!(c.access(7, AccessKind::Read).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> SetAssocCache {
        let sets = config.sets() as usize;
        SetAssocCache {
            config,
            sets: vec![vec![Way::default(); config.ways as usize]; sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit count so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_and_tag(&self, line_addr: u64) -> (usize, u64) {
        let sets = self.sets.len() as u64;
        ((line_addr % sets) as usize, line_addr / sets)
    }

    /// Accesses `line_addr`; on a miss the line is allocated (the caller
    /// is responsible for fetching it from below). Returns hit status and
    /// any dirty victim's line address.
    pub fn access(&mut self, line_addr: u64, kind: AccessKind) -> AccessOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let sets = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            if kind == AccessKind::Write {
                way.dirty = true;
            }
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }

        self.misses += 1;
        // Victim: invalid way if any, else LRU.
        let victim_idx = set.iter().position(|w| !w.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("set has at least one way")
        });
        let victim = set[victim_idx];
        let writeback = (victim.valid && victim.dirty).then(|| victim.tag * sets + set_idx as u64);
        set[victim_idx] = Way {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            lru: self.tick,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Whether a line is currently present (no LRU update).
    #[must_use]
    pub fn contains(&self, line_addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(line_addr);
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates a line, returning `true` if it was present and dirty.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(line_addr);
        for w in &mut self.sets[set_idx] {
            if w.valid && w.tag == tag {
                let was_dirty = w.dirty;
                w.valid = false;
                w.dirty = false;
                return was_dirty;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 2 sets × 2 ways.
        SetAssocCache::new(CacheConfig {
            size_bytes: 4 * LINE_BYTES,
            ways: 2,
            hit_latency: Cycle(1),
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(10, AccessKind::Read).hit);
        assert!(c.access(10, AccessKind::Read).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds even line addresses: 0, 2, 4 map to set 0.
        c.access(0, AccessKind::Read);
        c.access(2, AccessKind::Read);
        c.access(0, AccessKind::Read); // 0 now MRU
        c.access(4, AccessKind::Read); // evicts 2
        assert!(c.contains(0));
        assert!(!c.contains(2));
        assert!(c.contains(4));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, AccessKind::Write);
        c.access(2, AccessKind::Read);
        let out = c.access(4, AccessKind::Read); // evicts 0 (LRU, dirty)
        assert_eq!(out.writeback, Some(0));
        // Clean eviction reports none.
        let out = c.access(6, AccessKind::Read); // evicts 2 (clean)
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write);
        c.access(2, AccessKind::Read);
        let out = c.access(4, AccessKind::Read); // evicts 0
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = small();
        c.access(1, AccessKind::Write);
        assert!(c.invalidate(1));
        assert!(!c.contains(1));
        assert!(!c.invalidate(1)); // already gone
        c.access(3, AccessKind::Read);
        assert!(!c.invalidate(3)); // clean
    }

    #[test]
    fn set_mapping_separates_lines() {
        let mut c = small();
        // Odd lines map to set 1; filling set 0 must not evict them.
        c.access(1, AccessKind::Read);
        for l in [0u64, 2, 4, 6, 8] {
            c.access(l, AccessKind::Read);
        }
        assert!(c.contains(1));
    }

    #[test]
    fn config_sets_math() {
        let cfg = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            hit_latency: Cycle(1),
        };
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn bad_geometry_panics() {
        let _ = SetAssocCache::new(CacheConfig {
            size_bytes: 3 * LINE_BYTES,
            ways: 2,
            hit_latency: Cycle(1),
        });
    }
}
