#![warn(missing_docs)]

//! Cache-hierarchy model for the SD-PCM reproduction (paper Table 2).
//!
//! The paper's simulator "models the entire memory hierarchy including
//! L1, L2 and DRAM last level cache". This crate provides:
//!
//! * [`cache`] — a generic set-associative, write-back, write-allocate
//!   cache with true-LRU replacement.
//! * [`hierarchy`] — the Table 2 stack: private 32 KB L1, private 2 MB
//!   L2, private 32 MB DRAM L3 (50 ns hit); misses and dirty evictions
//!   propagate downwards and emerge as PCM reads/write-backs.
//!
//! The full-system simulator offers two front ends: this hierarchy fed by
//! instruction-level streams, or the post-cache trace mode matching the
//! paper's PIN methodology. Benches use post-cache mode; the hierarchy is
//! exercised by integration tests and the `hierarchy_mode` example.

pub mod cache;
pub mod hierarchy;

pub use cache::{AccessKind, AccessOutcome, CacheConfig, SetAssocCache};
pub use hierarchy::{CoreCaches, HierarchyConfig, HierarchyOutcome};
