//! Run-level metrics.

use sdpcm_memctrl::CtrlStats;
use sdpcm_pcm::energy::EnergyMeter;
use sdpcm_pcm::wear::WearMeter;

/// Everything a finished [`SystemSim`](crate::system::SystemSim) run
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Scheme name (figure label).
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Cycles until the last core finished its reference quota.
    pub total_cycles: u64,
    /// Instructions executed across all cores.
    pub instructions: u64,
    /// Demand reads issued by cores.
    pub reads: u64,
    /// Demand writes issued by cores.
    pub writes: u64,
    /// Controller counters.
    pub ctrl: CtrlStats,
    /// Device wear counters.
    pub wear: WearMeter,
    /// Array energy (demand vs mitigation overhead).
    pub energy: EnergyMeter,
}

impl RunStats {
    /// Cycles per instruction, aggregated over the eight cores (each
    /// core runs `instructions / 8` of them concurrently).
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        // All cores run in parallel; per-core instruction counts are
        // near-equal, so CPI = wall cycles / (instructions per core).
        self.total_cycles as f64 * 8.0 / self.instructions as f64
    }

    /// The paper's Speedup metric: `CPI_base / CPI_self` (§5.2). Values
    /// above 1 mean this run is faster than `base`.
    ///
    /// # Panics
    ///
    /// Panics if either run has no instructions.
    #[must_use]
    pub fn speedup_vs(&self, base: &RunStats) -> f64 {
        let a = self.cpi();
        let b = base.cpi();
        assert!(a > 0.0 && b > 0.0, "speedup needs non-empty runs");
        b / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64, insts: u64) -> RunStats {
        RunStats {
            scheme: "s".into(),
            workload: "w".into(),
            total_cycles: cycles,
            instructions: insts,
            reads: 0,
            writes: 0,
            ctrl: CtrlStats::new(),
            wear: WearMeter::default(),
            energy: EnergyMeter::default(),
        }
    }

    #[test]
    fn cpi_and_speedup() {
        let base = stats(8_000, 8_000); // CPI 8
        let fast = stats(4_000, 8_000); // CPI 4
        assert!((base.cpi() - 8.0).abs() < 1e-12);
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_vs(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_cpi_is_zero() {
        assert_eq!(stats(100, 0).cpi(), 0.0);
    }
}
