//! Parallel sweep executor for the figure runners.
//!
//! Every paper figure is a cross-product of independent `(scheme,
//! benchmark, knob)` cells: each cell builds its own [`crate::SystemSim`]
//! whose RNG streams derive solely from the cell's
//! [`crate::ExperimentParams::seed`] labels — no state is shared between
//! cells, so they can execute in any order (or concurrently) and produce
//! bit-identical results. [`parallel_map`] exploits that: it fans the
//! cells out over a scoped [`std::thread`] worker pool and reassembles
//! the outputs in input order, so a figure runner on top of it is
//! indistinguishable from the sequential loop it replaces.
//!
//! No work-stealing library is involved (the workspace builds offline):
//! workers pull the next cell index from a shared atomic counter, which
//! balances uneven cell costs (schemes with verification traffic run
//! several times longer than DIN-only cells) without any queueing
//! structure.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count picked by
/// [`default_workers`]. Set to `1` to force sequential execution.
pub const WORKERS_ENV: &str = "SDPCM_SWEEP_WORKERS";

/// Worker count for figure sweeps: the `SDPCM_SWEEP_WORKERS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism (falling back to 1 when that is unknowable).
#[must_use]
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    host_parallelism()
}

/// Environment variable selecting the *intra-cell* worker count: threads
/// the memory controller uses to process independent bank lanes inside a
/// single simulation ([`crate::SystemSim`] / [`crate::HierarchySim`]).
/// Orthogonal to [`WORKERS_ENV`], which fans out across sweep cells.
pub const CELL_WORKERS_ENV: &str = "SDPCM_CELL_WORKERS";

/// Intra-cell worker count: `SDPCM_CELL_WORKERS` when set to a positive
/// integer, otherwise 1 (serial). Deliberately *not* defaulted to the
/// host's parallelism: figure sweeps already saturate the machine at the
/// cell level, and nesting both would oversubscribe it. Results are
/// bit-identical at every value.
#[must_use]
pub fn default_cell_workers() -> usize {
    if let Ok(v) = std::env::var(CELL_WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    1
}

/// Environment variable overriding the host-core count recorded by
/// `figures bench` (for containers whose affinity mask hides the real
/// machine).
pub const HOST_CORES_ENV: &str = "SDPCM_HOST_CORES";

/// The machine's parallelism as recorded by `figures bench`:
/// `SDPCM_HOST_CORES` when set to a positive integer, otherwise the
/// larger of [`std::thread::available_parallelism`] (which reports the
/// *usable* parallelism and can read 1 inside an affinity-restricted
/// container) and the processor count in `/proc/cpuinfo` (the physical
/// machine, when readable). Falls back to 1 when nothing is knowable.
#[must_use]
pub fn host_parallelism() -> usize {
    if let Ok(v) = std::env::var(HOST_CORES_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let physical = std::fs::read_to_string("/proc/cpuinfo").map_or(0, |s| {
        s.lines().filter(|l| l.starts_with("processor")).count()
    });
    avail.max(physical).max(1)
}

/// Applies `f` to every item, fanning the calls across `workers` scoped
/// threads, and returns the outputs **in input order**.
///
/// `f` must be a pure function of its item (plus captured shared
/// state accessed read-only): cells are claimed from an atomic counter,
/// so the execution order across workers is nondeterministic even though
/// the returned `Vec` is not.
///
/// With `workers <= 1` (or fewer than two items) the items are mapped on
/// the calling thread — the same code path a `SDPCM_SWEEP_WORKERS=1`
/// override selects, which keeps a sequential reference run available.
///
/// # Panics
///
/// Propagates a panic from any worker (the sweep is aborted).
pub fn parallel_map<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, O)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, f(&items[i])));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(done) => done,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, out) in buckets.into_iter().flatten() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every claimed cell produces exactly one output"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 8, 200] {
            let out = parallel_map(&items, workers, |&x| x * 3);
            let expect: Vec<u64> = items.iter().map(|&x| x * 3).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_items() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_visited_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(&items, 8, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 57);
        assert_eq!(out, items);
    }

    #[test]
    fn uneven_costs_still_ordered() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, 4, |&x| {
            // Make early items the slowest so late items finish first.
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "cell panic")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let _ = parallel_map(&items, 2, |&x| {
            assert!(x != 5, "cell panic");
            x
        });
    }
}
