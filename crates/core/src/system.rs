//! The full-system simulator.
//!
//! Eight trace-driven, single-issue, in-order cores (Table 2) execute
//! their main-memory reference streams: non-memory instructions advance
//! the core clock at 1 CPI, reads block the core until the controller
//! answers, and writes post into the write queue (stalling only when the
//! bank's queue is full — the back-pressure behind bursty drains).
//!
//! The OS side happens at build time: each core's working set is mapped
//! through the WD-aware buddy allocator under the scheme's (n:m) ratio,
//! and the page table carries the allocator tag that the TLB forwards to
//! the memory controller with every request (Figure 9).

use std::sync::Arc;

use sdpcm_engine::hash::FxHashMap;
use sdpcm_engine::prof::{self, Site};
use sdpcm_engine::{Cycle, SimRng};
use sdpcm_memctrl::{Access, AccessKind, Completion, CtrlConfig, MemoryController, ReqId};
use sdpcm_osalloc::{NmAllocator, PageTable, Tlb};
use sdpcm_pcm::geometry::LineAddr;
use sdpcm_pcm::line::LineBuf;
use sdpcm_pcm::wear::HardErrorModel;
use sdpcm_trace::{BenchKind, RefSource, RefTrace, ToggleMask, TraceRef, Workload};

use crate::config::{ExperimentParams, Scheme};
use crate::error::{MapError, SdpcmError, SimError};
use crate::fault::FaultPlan;
use crate::metrics::RunStats;

struct Core {
    /// Where references come from: live generation or trace replay.
    src: RefSource,
    /// The next reference and the time the core is ready to issue it.
    pending: Option<(TraceRef, Cycle)>,
    blocked_read: Option<ReqId>,
    refs_done: u64,
    instructions: u64,
    finish: Option<Cycle>,
}

/// The assembled system: cores + OS mapping + controller.
pub struct SystemSim {
    scheme: Scheme,
    workload_name: String,
    params: ExperimentParams,
    ctrl: MemoryController,
    cores: Vec<Core>,
    tables: Vec<PageTable>,
    tlbs: Vec<Tlb>,
    /// Reusable completion buffer for the hot event loop.
    done_scratch: Vec<Completion>,
    inflight: FxHashMap<ReqId, usize>,
    next_id: u64,
    reads_issued: u64,
    writes_issued: u64,
}

impl std::fmt::Debug for SystemSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSim")
            .field("scheme", &self.scheme.name)
            .field("workload", &self.workload_name)
            .finish()
    }
}

impl SystemSim {
    /// Builds the system for eight copies of `bench` under `scheme`.
    /// The scheme is borrowed (sweeps reuse one instance across many
    /// cells) and cloned once into the simulator.
    pub fn build(
        scheme: &Scheme,
        bench: BenchKind,
        params: &ExperimentParams,
    ) -> Result<SystemSim, SdpcmError> {
        SystemSim::build_workload(scheme, &Workload::homogeneous(bench), params)
    }

    /// Builds the system for an arbitrary 8-core workload. Fails when the
    /// parameters are degenerate ([`ExperimentParams::validate`]) or the
    /// workload does not fit the device under the scheme's allocation
    /// ratio.
    pub fn build_workload(
        scheme: &Scheme,
        workload: &Workload,
        params: &ExperimentParams,
    ) -> Result<SystemSim, SdpcmError> {
        let (ctrl, mut rng) = SystemSim::build_backend(scheme, workload, params)?;
        let sources = RefSource::live_sources(workload, &mut rng);
        SystemSim::assemble(scheme, workload, params, ctrl, sources)
    }

    /// Builds the system over a previously captured reference trace:
    /// identical backend and issue semantics, but references replay from
    /// `trace` instead of being regenerated — the whole trace-generation
    /// front end is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TraceMismatch`] when the trace was captured
    /// for a different `(workload, seed, refs_per_core)` than `params`
    /// asks for, plus everything [`SystemSim::build_workload`] reports.
    pub fn build_replay(
        scheme: &Scheme,
        workload: &Workload,
        params: &ExperimentParams,
        trace: &Arc<RefTrace>,
    ) -> Result<SystemSim, SdpcmError> {
        let expect = format!(
            "{}/{}/{}",
            workload.name(),
            params.seed,
            params.refs_per_core
        );
        let got = format!(
            "{}/{}/{}",
            trace.meta.workload, trace.meta.seed, trace.meta.refs_per_core
        );
        if expect != got {
            return Err(SimError::TraceMismatch { expect, got }.into());
        }
        let (ctrl, _rng) = SystemSim::build_backend(scheme, workload, params)?;
        let sources = RefSource::replay_sources(trace);
        SystemSim::assemble(scheme, workload, params, ctrl, sources)
    }

    /// Validates the parameters and builds the controller. Returns the
    /// parent RNG *after* the controller stream has been derived — the
    /// exact point [`RefTrace::capture`] mirrors.
    fn build_backend(
        scheme: &Scheme,
        workload: &Workload,
        params: &ExperimentParams,
    ) -> Result<(MemoryController, SimRng), SdpcmError> {
        params.validate()?;
        let mut rng = SimRng::from_seed_label(params.seed, "system");
        let geometry = params.geometry_for(workload, scheme.ratio)?;
        let cfg = CtrlConfig {
            write_queue_cap: params.write_queue_cap,
            ecp_entries: params.ecp_entries,
            ..CtrlConfig::table2(scheme.ctrl)
        };
        let mut ctrl = MemoryController::try_new(cfg, geometry, rng.derive("ctrl"))?;
        ctrl.set_advance_workers(crate::sweep::default_cell_workers());
        if let Some(age) = params.dimm_age {
            ctrl.set_dimm_age(HardErrorModel::default(), age);
        }
        Ok((ctrl, rng))
    }

    /// Maps every core's working set and wires the reference sources to
    /// the backend.
    fn assemble(
        scheme: &Scheme,
        workload: &Workload,
        params: &ExperimentParams,
        ctrl: MemoryController,
        sources: Vec<RefSource>,
    ) -> Result<SystemSim, SdpcmError> {
        // OS: allocate and map every core's working set up front.
        let mut os = NmAllocator::new(ctrl.store().geometry().total_pages());
        let mut tables = Vec::new();
        let mut tlbs = Vec::new();
        for (core, pages) in workload.pages_per_core().into_iter().enumerate() {
            let frames = os
                .alloc_pages(scheme.ratio, pages)
                .ok_or(MapError::DeviceFull { core, pages })?;
            let mut table = PageTable::new();
            for (vpage, frame) in frames.into_iter().enumerate() {
                table.map(vpage as u64, frame, scheme.ratio);
            }
            tables.push(table);
            tlbs.push(Tlb::new(64));
        }

        let cores = sources
            .into_iter()
            .map(|mut src| {
                let first = src.next_ref();
                let ready = Cycle(first.gap);
                Core {
                    src,
                    pending: Some((first, ready)),
                    blocked_read: None,
                    refs_done: 0,
                    instructions: first.gap,
                    finish: None,
                }
            })
            .collect();

        Ok(SystemSim {
            scheme: scheme.clone(),
            workload_name: workload.name().to_owned(),
            params: *params,
            ctrl,
            cores,
            tables,
            tlbs,
            done_scratch: Vec::new(),
            inflight: FxHashMap::default(),
            next_id: 0,
            reads_issued: 0,
            writes_issued: 0,
        })
    }

    /// Immutable access to the controller (tests, diagnostics).
    #[must_use]
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Installs a chaos scenario: the plan is validated and handed to the
    /// controller, which fires its faults as the committed-write counter
    /// crosses their trigger points.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SdpcmError> {
        self.ctrl.install_chaos(plan.build()?);
        Ok(())
    }

    /// Translates a core's virtual line position to its device address.
    fn translate(&mut self, core: usize, vpage: u64, slot: u8) -> Result<LineAddr, MapError> {
        let pte = self.tlbs[core]
            .translate(vpage, &self.tables[core])
            .ok_or(MapError::WorkingSetUnmapped { core, vpage })?;
        let (bank, row) = self
            .ctrl
            .store()
            .geometry()
            .page_to_bank_row(sdpcm_pcm::geometry::PageId(pte.frame));
        Ok(LineAddr { bank, row, slot })
    }

    /// Synthesizes a write payload: the line's newest architectural
    /// value with the reference's recorded toggle mask applied. Both the
    /// live and the replay path go through here, so payloads are
    /// bit-identical between them by construction.
    fn payload(&mut self, addr: LineAddr, mask: &ToggleMask) -> LineBuf {
        let mut words = *self.ctrl.latest_architectural(addr).words();
        for (w, m) in words.iter_mut().zip(mask) {
            *w ^= m;
        }
        LineBuf::from_words(words)
    }

    /// Runs the simulation to completion and reports the statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] (with the controller's queue
    /// snapshot) when the event loop stops making progress, and
    /// propagates controller and translation errors.
    pub fn run(&mut self) -> Result<RunStats, SdpcmError> {
        let quota = self.params.refs_per_core;
        let mut guard: u64 = 0;
        loop {
            if self.cores.iter().all(|c| c.finish.is_some()) {
                break;
            }
            let _t = prof::timer(Site::SystemStep);
            let core_t = self
                .cores
                .iter()
                .filter(|c| c.blocked_read.is_none())
                .filter_map(|c| c.pending.as_ref())
                .map(|(_, at)| *at)
                .min();
            let ctrl_t = self.ctrl.next_event();
            let now = match (core_t, ctrl_t) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    // Cores are unfinished but nothing is scheduled: the
                    // loop can never progress again.
                    return Err(self.livelock(Cycle::MAX));
                }
            };
            guard += 1;
            if guard >= 500_000_000 {
                return Err(self.livelock(now));
            }

            // Deliver controller completions first: they may unblock
            // cores whose next issue is also at `now`.
            let mut done_buf = std::mem::take(&mut self.done_scratch);
            self.ctrl.advance_into(now, &mut done_buf)?;
            for done in &done_buf {
                if done.was_write {
                    continue;
                }
                let Some(core) = self.inflight.remove(&done.id) else {
                    continue;
                };
                self.cores[core].blocked_read = None;
                self.next_ref(core, done.at, quota);
            }
            self.done_scratch = done_buf;

            // Issue everything that is ready.
            for core in 0..self.cores.len() {
                let ready = matches!(
                    &self.cores[core].pending,
                    Some((_, at)) if *at <= now && self.cores[core].blocked_read.is_none()
                );
                if ready {
                    self.issue(core, now, quota)?;
                }
            }
        }

        // Flush remaining queued writes so per-write statistics cover the
        // full reference stream (not counted toward execution time).
        let end = self.ctrl.next_event().unwrap_or(Cycle(self.total_cycles()));
        self.ctrl.drain_all(end);
        let mut done_buf = std::mem::take(&mut self.done_scratch);
        while let Some(t) = self.ctrl.next_event() {
            self.ctrl.advance_into(t, &mut done_buf)?;
            self.ctrl.drain_all(t);
        }
        self.done_scratch = done_buf;

        Ok(RunStats {
            scheme: self.scheme.name.clone(),
            workload: self.workload_name.clone(),
            total_cycles: self.total_cycles(),
            instructions: self.cores.iter().map(|c| c.instructions).sum(),
            reads: self.reads_issued,
            writes: self.writes_issued,
            ctrl: self.ctrl.stats(),
            wear: self.ctrl.store().wear(),
            energy: self.ctrl.energy(),
        })
    }

    /// Builds the livelock report with the controller's queue snapshot.
    fn livelock(&self, now: Cycle) -> SdpcmError {
        SimError::Livelock {
            cycle: now.0,
            refs_done: self.cores.iter().map(|c| c.refs_done).sum(),
            snapshot: self.ctrl.snapshot(now),
        }
        .into()
    }

    fn total_cycles(&self) -> u64 {
        self.cores
            .iter()
            .filter_map(|c| c.finish)
            .map(|c| c.0)
            .max()
            .unwrap_or(0)
    }

    /// Issues the pending reference of `core` at time `now`.
    fn issue(&mut self, core: usize, now: Cycle, quota: u64) -> Result<(), SdpcmError> {
        let Some((r, _)) = self.cores[core].pending.take() else {
            return Ok(()); // raced away; nothing to issue
        };
        let addr = self.translate(core, r.vpage, r.slot)?;
        if r.is_write {
            if !self.ctrl.can_accept_write(addr) {
                // Queue full: stall until the controller makes progress.
                let retry = self
                    .ctrl
                    .next_event()
                    .map_or(now + Cycle(400), |t| t.max(now + Cycle(1)));
                self.cores[core].pending = Some((r, retry));
                return Ok(());
            }
            let data = self.payload(addr, &r.mask);
            let id = self.fresh_id();
            self.writes_issued += 1;
            self.ctrl.submit(
                Access {
                    id,
                    addr,
                    kind: AccessKind::Write(data),
                    ratio: self.scheme.ratio,
                    core: core as u8,
                    arrive: now,
                },
                now,
            )?;
            self.cores[core].refs_done += 1;
            self.next_ref(core, now, quota);
        } else {
            let id = self.fresh_id();
            self.reads_issued += 1;
            self.inflight.insert(id, core);
            self.cores[core].blocked_read = Some(id);
            self.ctrl.submit(
                Access {
                    id,
                    addr,
                    kind: AccessKind::Read,
                    ratio: self.scheme.ratio,
                    core: core as u8,
                    arrive: now,
                },
                now,
            )?;
            self.cores[core].refs_done += 1;
        }
        Ok(())
    }

    /// Prepares the core's next reference after time `at`, or marks it
    /// finished.
    fn next_ref(&mut self, core: usize, at: Cycle, quota: u64) {
        let c = &mut self.cores[core];
        if c.refs_done >= quota {
            if c.finish.is_none() {
                c.finish = Some(at);
            }
            c.pending = None;
            return;
        }
        let r = c.src.next_ref();
        c.instructions += r.gap;
        c.pending = Some((r, at + Cycle(r.gap)));
    }

    fn fresh_id(&mut self) -> ReqId {
        let id = ReqId(self.next_id);
        self.next_id += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn quick(scheme: Scheme, bench: BenchKind) -> RunStats {
        let params = ExperimentParams {
            refs_per_core: 400,
            ..ExperimentParams::quick_test()
        };
        SystemSim::build(&scheme, bench, &params)
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn run_completes_and_counts_refs() {
        let s = quick(Scheme::din(), BenchKind::Stream);
        assert_eq!(s.reads + s.writes, 8 * 400);
        assert!(s.total_cycles > 0);
        assert!(s.instructions > 0);
        assert!(s.cpi() > 1.0, "memory stalls must raise CPI above 1");
    }

    #[test]
    fn write_fraction_tracks_profile() {
        let s = quick(Scheme::din(), BenchKind::Mcf);
        let frac = s.writes as f64 / (s.reads + s.writes) as f64;
        let expect = BenchKind::Mcf.profile().write_fraction();
        assert!((frac - expect).abs() < 0.05, "frac={frac} expect={expect}");
    }

    #[test]
    fn baseline_vnc_slower_than_din() {
        let din = quick(Scheme::din(), BenchKind::Mcf);
        let base = quick(Scheme::baseline(), BenchKind::Mcf);
        let speedup = din.speedup_vs(&base);
        assert!(
            speedup > 1.05,
            "DIN must clearly beat basic VnC on mcf, got {speedup}"
        );
    }

    #[test]
    fn one_two_alloc_matches_din_performance() {
        // Identical per-write work (no VnC on either side); wall-clock
        // may differ by drain-alignment noise, so allow a 12% band —
        // seed-to-seed variance of this drain-bound workload is ±2-3%
        // and queue alignment adds several more points at small scale.
        let params = ExperimentParams {
            refs_per_core: 2_000,
            ..ExperimentParams::quick_test()
        };
        let din = SystemSim::build(&Scheme::din(), BenchKind::Lbm, &params)
            .unwrap()
            .run()
            .unwrap();
        let alloc12 = SystemSim::build(&Scheme::one_two_alloc(), BenchKind::Lbm, &params)
            .unwrap()
            .run()
            .unwrap();
        let ratio = alloc12.speedup_vs(&din);
        assert!((ratio - 1.0).abs() < 0.12, "ratio={ratio}");
        // The mechanism itself is exact: (1:2) never verifies interior
        // strips.
        assert_eq!(alloc12.ctrl.verification_ops.get(), 0);
        assert_eq!(alloc12.ctrl.phases.pre_reads, Cycle::ZERO);
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(Scheme::lazyc_preread(), BenchKind::Zeusmp);
        let b = quick(Scheme::lazyc_preread(), BenchKind::Zeusmp);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.ctrl.ecp_records.get(), b.ctrl.ecp_records.get());
        assert_eq!(a.wear, b.wear);
    }

    #[test]
    fn different_seeds_differ() {
        let params = ExperimentParams {
            refs_per_core: 400,
            ..ExperimentParams::quick_test()
        };
        let a = SystemSim::build(&Scheme::baseline(), BenchKind::Lbm, &params)
            .unwrap()
            .run()
            .unwrap();
        let params_b = ExperimentParams {
            seed: 1234,
            ..params
        };
        let b = SystemSim::build(&Scheme::baseline(), BenchKind::Lbm, &params_b)
            .unwrap()
            .run()
            .unwrap();
        assert_ne!(a.total_cycles, b.total_cycles);
    }
}
