//! One runner per paper table/figure.
//!
//! Each function performs the sweep the corresponding figure reports and
//! returns plain rows; the bench harness (`crates/bench`) formats them.
//! All runners are deterministic in `ExperimentParams::seed`.
//!
//! The sweeps execute on the parallel executor in [`crate::sweep`]: each
//! runner flattens its `(scheme, benchmark, knob)` cross-product into an
//! explicit cell list, fans the cells over the worker pool, and
//! assembles rows from the in-order results — so the output is
//! bit-identical to the sequential loops the runners replaced (every
//! cell's RNG derives only from its own parameters).

use sdpcm_engine::stats::geometric_mean;
use sdpcm_osalloc::NmRatio;
use sdpcm_trace::BenchKind;
use sdpcm_wd::disturb::DisturbanceModel;
use sdpcm_wd::scaling::ArraySpacing;
use sdpcm_wd::thermal::Direction;

use sdpcm_trace::Workload;

use crate::config::{ExperimentParams, Scheme};
use crate::metrics::RunStats;
use crate::sweep::{default_workers, parallel_map};
use crate::system::SystemSim;
use crate::tracestore::TraceStore;

/// Runs one (scheme, benchmark) cell, generating the reference stream
/// inline.
///
/// # Panics
///
/// Panics on a simulation error: the figure runners are driven with
/// known-good scheme/parameter combinations, so an error here is a bug
/// worth stopping the whole sweep for. Use [`SystemSim`] directly to
/// handle [`crate::SdpcmError`] yourself.
#[must_use]
pub fn run_cell(scheme: &Scheme, bench: BenchKind, params: &ExperimentParams) -> RunStats {
    SystemSim::build(scheme, bench, params)
        .and_then(|mut sim| sim.run())
        .expect("figure runners use known-good configurations")
}

/// Runs one (scheme, benchmark) cell over a shared trace store: the
/// workload's reference stream is captured on first touch (or loaded
/// from the store's disk cache) and replayed. Bit-identical to
/// [`run_cell`] — the golden replay tests pin that.
///
/// # Panics
///
/// Panics on a simulation error, like [`run_cell`].
#[must_use]
pub fn run_cell_replay(
    store: &TraceStore,
    scheme: &Scheme,
    bench: BenchKind,
    params: &ExperimentParams,
) -> RunStats {
    let workload = Workload::homogeneous(bench);
    let trace = store.get(&workload, params.seed, params.refs_per_core);
    SystemSim::build_replay(scheme, &workload, params, &trace)
        .and_then(|mut sim| sim.run())
        .expect("figure runners use known-good configurations")
}

/// One flattened sweep cell: a borrowed scheme, a benchmark, and the
/// (possibly knob-adjusted) parameters it runs under.
type Cell<'a> = (&'a Scheme, BenchKind, ExperimentParams);

/// Runs a flat cell list on the worker pool, results in input order.
///
/// Cells replay from a sweep-wide [`TraceStore`]: each distinct
/// `(workload, seed, refs_per_core)` stream is captured once by the
/// first cell to want it and shared (`Arc`) with every other cell —
/// knob sweeps (ECP entries, queue sizes, ages) reuse one trace across
/// the whole knob range. Set `SDPCM_TRACE_DIR` to also persist traces
/// across processes.
fn run_cells(cells: &[Cell<'_>]) -> Vec<RunStats> {
    let store = TraceStore::from_env();
    parallel_map(cells, default_workers(), |(scheme, bench, params)| {
        run_cell_replay(&store, scheme, *bench, params)
    })
}

/// Table 1: disturbance probability for 4F² cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// "Word-line" or "Bit-line".
    pub direction: String,
    /// Neighbour temperature at 2F spacing (°C).
    pub temp_c: f64,
    /// SLC disturbance probability per RESET.
    pub error_rate: f64,
}

/// Reproduces Table 1 from the thermal + disturbance models.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let m = DisturbanceModel::calibrated();
    let sd = ArraySpacing::super_dense();
    let node = m.node();
    [Direction::WordLine, Direction::BitLine]
        .into_iter()
        .map(|dir| {
            let d = node.distance_nm(sd.in_direction(dir));
            Table1Row {
                direction: match dir {
                    Direction::WordLine => "Word-line".to_owned(),
                    Direction::BitLine => "Bit-line".to_owned(),
                },
                temp_c: m.thermal().neighbor_temp(dir, d),
                error_rate: m.probability(dir, sd),
            }
        })
        .collect()
}

/// Figure 4: WD errors per line write.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Benchmark name.
    pub bench: String,
    /// Mean word-line errors per write (same word-line, after DIN).
    pub wl_avg: f64,
    /// Maximum word-line errors in one write.
    pub wl_max: u64,
    /// Mean bit-line errors per adjacent line per write.
    pub bl_avg: f64,
    /// Maximum bit-line errors in one adjacent line.
    pub bl_max: u64,
}

/// Reproduces Figure 4 by running the baseline (super dense, diff-write +
/// DIN) and reading the injection histograms.
#[must_use]
pub fn fig4(params: &ExperimentParams) -> Vec<Fig4Row> {
    let baseline = Scheme::baseline();
    let cells: Vec<Cell<'_>> = BenchKind::all()
        .into_iter()
        .map(|b| (&baseline, b, *params))
        .collect();
    run_cells(&cells)
        .into_iter()
        .zip(BenchKind::all())
        .map(|(stats, b)| Fig4Row {
            bench: b.name().to_owned(),
            wl_avg: stats.ctrl.wl_errors.mean(),
            wl_max: stats.ctrl.wl_errors.max_observed().unwrap_or(0),
            bl_avg: stats.ctrl.bl_errors_per_neighbor.mean(),
            bl_max: stats
                .ctrl
                .bl_errors_per_neighbor
                .max_observed()
                .unwrap_or(0),
        })
        .collect()
}

/// Figure 5: runtime overhead of basic VnC, split into verification and
/// correction, relative to the WD-free DIN design.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark name.
    pub bench: String,
    /// Fractional slowdown attributed to verification reads.
    pub verification: f64,
    /// Fractional slowdown attributed to corrections.
    pub correction: f64,
    /// Total fractional slowdown of baseline VnC vs DIN.
    pub total: f64,
}

/// Reproduces Figure 5. The total slowdown is measured directly
/// (`CPI_VnC / CPI_DIN − 1`); the split uses the controller's per-phase
/// busy-cycle accounting.
#[must_use]
pub fn fig5(params: &ExperimentParams) -> Vec<Fig5Row> {
    let din_scheme = Scheme::din();
    let baseline = Scheme::baseline();
    let mut cells: Vec<Cell<'_>> = Vec::new();
    for b in BenchKind::all() {
        cells.push((&din_scheme, b, *params));
        cells.push((&baseline, b, *params));
    }
    let stats = run_cells(&cells);
    BenchKind::all()
        .into_iter()
        .zip(stats.chunks_exact(2))
        .map(|(b, pair)| {
            let (din, vnc) = (&pair[0], &pair[1]);
            let total = (vnc.cpi() / din.cpi() - 1.0).max(0.0);
            let v = vnc.ctrl.phases.verification_total().0 as f64;
            let c = (vnc.ctrl.phases.correction_total() + vnc.ctrl.phases.own_fixes).0 as f64;
            let denom = (v + c).max(1.0);
            Fig5Row {
                bench: b.name().to_owned(),
                verification: total * v / denom,
                correction: total * c / denom,
                total,
            }
        })
        .collect()
}

/// Figure 11: speedup of every scheme, normalized to `baseline`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Benchmark name ("gmean" for the summary row).
    pub bench: String,
    /// `(scheme name, speedup vs baseline)` pairs in figure order.
    pub speedups: Vec<(String, f64)>,
}

/// Reproduces Figure 11 (the headline comparison).
#[must_use]
pub fn fig11(params: &ExperimentParams) -> Vec<Fig11Row> {
    let schemes = Scheme::figure11_set();
    let baseline = Scheme::baseline();
    // Per bench: the normalization run, then every non-baseline scheme
    // (the baseline's own speedup is 1.0 by definition, not simulated).
    let mut cells: Vec<Cell<'_>> = Vec::new();
    for b in BenchKind::all() {
        cells.push((&baseline, b, *params));
        for s in schemes.iter().filter(|s| s.name != "baseline") {
            cells.push((s, b, *params));
        }
    }
    let stats = run_cells(&cells);
    let stride = 1 + schemes.iter().filter(|s| s.name != "baseline").count();

    let mut rows: Vec<Fig11Row> = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for (bi, b) in BenchKind::all().into_iter().enumerate() {
        let chunk = &stats[bi * stride..(bi + 1) * stride];
        let base = &chunk[0];
        let mut measured = chunk[1..].iter();
        let mut speedups = Vec::new();
        for (i, s) in schemes.iter().enumerate() {
            let speedup = if s.name == "baseline" {
                1.0
            } else {
                measured
                    .next()
                    .expect("one cell per non-baseline scheme")
                    .speedup_vs(base)
            };
            per_scheme[i].push(speedup);
            speedups.push((s.name.clone(), speedup));
        }
        rows.push(Fig11Row {
            bench: b.name().to_owned(),
            speedups,
        });
    }
    rows.push(Fig11Row {
        bench: "gmean".to_owned(),
        speedups: schemes
            .iter()
            .zip(&per_scheme)
            .map(|(s, v)| (s.name.clone(), geometric_mean(v)))
            .collect(),
    });
    rows
}

/// Figures 12 & 13: sensitivity to the number of ECP entries.
#[derive(Debug, Clone, PartialEq)]
pub struct EcpSweepRow {
    /// ECP entries per line.
    pub entries: usize,
    /// Mean correction operations per write (gmean across benchmarks is
    /// not meaningful for a count, so this is the arithmetic mean).
    pub corrections_per_write: f64,
    /// Geometric-mean speedup vs ECP-0 (i.e. vs `baseline`).
    pub speedup_vs_ecp0: f64,
}

/// Reproduces Figures 12 and 13 with one sweep (LazyC at each ECP-N;
/// ECP-0 degenerates to the basic VnC).
#[must_use]
pub fn fig12_13(params: &ExperimentParams, entries: &[usize]) -> Vec<EcpSweepRow> {
    let benches = BenchKind::all();
    let baseline = Scheme::baseline();
    let lazyc = Scheme::lazyc();
    // Cells: the ECP-0 normalization runs per bench, then one cell per
    // (entries, bench) pair.
    let mut cells: Vec<Cell<'_>> = benches
        .iter()
        .map(|&b| {
            let p = ExperimentParams {
                ecp_entries: 0,
                ..*params
            };
            (&baseline, b, p)
        })
        .collect();
    for &n in entries {
        for &b in &benches {
            let p = ExperimentParams {
                ecp_entries: n,
                ..*params
            };
            let scheme = if n == 0 { &baseline } else { &lazyc };
            cells.push((scheme, b, p));
        }
    }
    let stats = run_cells(&cells);
    let (base, swept) = stats.split_at(benches.len());
    entries
        .iter()
        .zip(swept.chunks_exact(benches.len()))
        .map(|(&n, row)| {
            let corr: Vec<f64> = row.iter().map(|r| r.ctrl.corrections_per_write()).collect();
            let speedups: Vec<f64> = row.iter().zip(base).map(|(r, b)| r.speedup_vs(b)).collect();
            EcpSweepRow {
                entries: n,
                corrections_per_write: corr.iter().sum::<f64>() / corr.len() as f64,
                speedup_vs_ecp0: geometric_mean(&speedups),
            }
        })
        .collect()
}

/// Figure 14: performance across the DIMM's lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Consumed lifetime fraction.
    pub age: f64,
    /// Geometric-mean speedup vs the fresh (age 0) DIMM.
    pub speedup_vs_fresh: f64,
}

/// Reproduces Figure 14 (LazyC, hard errors eating ECP entries with age).
#[must_use]
pub fn fig14(params: &ExperimentParams, ages: &[f64]) -> Vec<Fig14Row> {
    let benches = BenchKind::all();
    let lazyc = Scheme::lazyc();
    let mut cells: Vec<Cell<'_>> = benches.iter().map(|&b| (&lazyc, b, *params)).collect();
    for &age in ages {
        for &b in &benches {
            let p = ExperimentParams {
                dimm_age: Some(age),
                ..*params
            };
            cells.push((&lazyc, b, p));
        }
    }
    let stats = run_cells(&cells);
    let (fresh, aged) = stats.split_at(benches.len());
    ages.iter()
        .zip(aged.chunks_exact(benches.len()))
        .map(|(&age, row)| {
            let speedups: Vec<f64> = row
                .iter()
                .zip(fresh)
                .map(|(r, f)| r.speedup_vs(f))
                .collect();
            Fig14Row {
                age,
                speedup_vs_fresh: geometric_mean(&speedups),
            }
        })
        .collect()
}

/// Figure 15: write-queue-size sensitivity for LazyC+PreRead.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Write-queue entries per bank.
    pub queue_size: usize,
    /// Geometric-mean speedup vs DIN (1.0 would match DIN).
    pub speedup_vs_din: f64,
}

/// Reproduces Figure 15.
#[must_use]
pub fn fig15(params: &ExperimentParams, sizes: &[usize]) -> Vec<Fig15Row> {
    let benches = BenchKind::all();
    let din_scheme = Scheme::din();
    let lazyc_preread = Scheme::lazyc_preread();
    let mut cells: Vec<Cell<'_>> = benches.iter().map(|&b| (&din_scheme, b, *params)).collect();
    for &q in sizes {
        for &b in &benches {
            let p = ExperimentParams {
                write_queue_cap: q,
                ..*params
            };
            cells.push((&lazyc_preread, b, p));
        }
    }
    let stats = run_cells(&cells);
    let (din, swept) = stats.split_at(benches.len());
    sizes
        .iter()
        .zip(swept.chunks_exact(benches.len()))
        .map(|(&q, row)| {
            let speedups: Vec<f64> = row.iter().zip(din).map(|(r, d)| r.speedup_vs(d)).collect();
            Fig15Row {
                queue_size: q,
                speedup_vs_din: geometric_mean(&speedups),
            }
        })
        .collect()
}

/// Figure 16: (n:m) ratio sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16Row {
    /// The allocator.
    pub ratio: NmRatio,
    /// Geometric-mean speedup vs DIN.
    pub speedup_vs_din: f64,
    /// Usable capacity fraction (the other side of the trade-off).
    pub capacity_fraction: f64,
}

/// Reproduces Figure 16 (basic VnC + each allocator).
#[must_use]
pub fn fig16(params: &ExperimentParams, ratios: &[NmRatio]) -> Vec<Fig16Row> {
    let benches = BenchKind::all();
    let din_scheme = Scheme::din();
    let ratio_schemes: Vec<Scheme> = ratios
        .iter()
        .map(|&r| Scheme::baseline_with_ratio(r))
        .collect();
    let mut cells: Vec<Cell<'_>> = benches.iter().map(|&b| (&din_scheme, b, *params)).collect();
    for s in &ratio_schemes {
        for &b in &benches {
            cells.push((s, b, *params));
        }
    }
    let stats = run_cells(&cells);
    let (din, swept) = stats.split_at(benches.len());
    ratios
        .iter()
        .zip(swept.chunks_exact(benches.len()))
        .map(|(&ratio, row)| {
            let speedups: Vec<f64> = row.iter().zip(din).map(|(r, d)| r.speedup_vs(d)).collect();
            Fig16Row {
                ratio,
                speedup_vs_din: geometric_mean(&speedups),
                capacity_fraction: ratio.capacity_fraction(),
            }
        })
        .collect()
}

/// Figures 17 & 18: normalized lifetime of data chips and the ECP chip.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeRow {
    /// Benchmark name.
    pub bench: String,
    /// Normalized data-chip lifetime (1.0 = undegraded), Figure 17.
    pub data_lifetime: f64,
    /// Normalized ECP-chip lifetime, Figure 18.
    pub ecp_lifetime: f64,
}

/// Reproduces Figures 17 and 18 under the full SD-PCM configuration
/// (LazyC, which routes WD errors through the ECP chip).
#[must_use]
pub fn fig17_18(params: &ExperimentParams) -> Vec<LifetimeRow> {
    let lazyc = Scheme::lazyc();
    let cells: Vec<Cell<'_>> = BenchKind::all()
        .into_iter()
        .map(|b| (&lazyc, b, *params))
        .collect();
    run_cells(&cells)
        .into_iter()
        .zip(BenchKind::all())
        .map(|(r, b)| LifetimeRow {
            bench: b.name().to_owned(),
            data_lifetime: r.wear.data_lifetime_norm(),
            ecp_lifetime: r.wear.ecp_lifetime_norm(),
        })
        .collect()
}

/// Figure 19: integration with write cancellation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig19Row {
    /// Benchmark name ("gmean" for the summary row).
    pub bench: String,
    /// Speedups vs `VnC` for: `WC`, `LazyC`, `WC+LazyC`.
    pub wc: f64,
    /// LazyC alone.
    pub lazyc: f64,
    /// Write cancellation + LazyC.
    pub wc_lazyc: f64,
}

/// Reproduces Figure 19.
#[must_use]
pub fn fig19(params: &ExperimentParams) -> Vec<Fig19Row> {
    let baseline = Scheme::baseline();
    let lazyc = Scheme::lazyc();
    let wc_scheme = Scheme {
        name: "WC".into(),
        ctrl: Scheme::baseline().ctrl.with_write_cancellation(),
        ratio: NmRatio::one_one(),
    };
    let wc_lazy_scheme = Scheme {
        name: "WC+LazyC".into(),
        ctrl: Scheme::lazyc().ctrl.with_write_cancellation(),
        ratio: NmRatio::one_one(),
    };
    let mut cells: Vec<Cell<'_>> = Vec::new();
    for b in BenchKind::all() {
        for s in [&baseline, &wc_scheme, &lazyc, &wc_lazy_scheme] {
            cells.push((s, b, *params));
        }
    }
    let stats = run_cells(&cells);

    let mut rows = Vec::new();
    let mut acc = [Vec::new(), Vec::new(), Vec::new()];
    for (b, chunk) in BenchKind::all().into_iter().zip(stats.chunks_exact(4)) {
        let base = &chunk[0];
        let wc = chunk[1].speedup_vs(base);
        let lazyc = chunk[2].speedup_vs(base);
        let wc_lazyc = chunk[3].speedup_vs(base);
        acc[0].push(wc);
        acc[1].push(lazyc);
        acc[2].push(wc_lazyc);
        rows.push(Fig19Row {
            bench: b.name().to_owned(),
            wc,
            lazyc,
            wc_lazyc,
        });
    }
    rows.push(Fig19Row {
        bench: "gmean".to_owned(),
        wc: geometric_mean(&acc[0]),
        lazyc: geometric_mean(&acc[1]),
        wc_lazyc: geometric_mean(&acc[2]),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentParams {
        ExperimentParams {
            refs_per_core: 300,
            ..ExperimentParams::quick_test()
        }
    }

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 2);
        assert!((t[0].temp_c - 310.0).abs() < 0.5);
        assert!((t[0].error_rate - 0.099).abs() < 1e-6);
        assert!((t[1].temp_c - 320.0).abs() < 0.5);
        assert!((t[1].error_rate - 0.115).abs() < 1e-6);
    }

    #[test]
    fn fig4_single_bench_shape() {
        // Run just one benchmark's cell to keep the test fast.
        let stats = run_cell(&Scheme::baseline(), BenchKind::Mcf, &tiny());
        let bl_avg = stats.ctrl.bl_errors_per_neighbor.mean();
        let wl_avg = stats.ctrl.wl_errors.mean();
        // Bit-line errors dominate word-line errors (the paper's point).
        assert!(bl_avg > wl_avg, "bl={bl_avg} wl={wl_avg}");
        assert!(bl_avg > 0.5, "several BL errors per write expected");
    }

    #[test]
    fn fig16_ratio_ordering() {
        // Interior check on the policy-level driver rather than a full
        // sweep: verification needs are monotone in the ratio.
        use sdpcm_osalloc::VerifyPolicy;
        let p = VerifyPolicy::new(1 << 20);
        let v: Vec<f64> = [
            NmRatio::one_one(),
            NmRatio::three_four(),
            NmRatio::two_three(),
            NmRatio::one_two(),
        ]
        .into_iter()
        .map(|r| p.mean_interior_verifications(r))
        .collect();
        assert!(v[0] > v[1] && v[1] > v[2] && v[2] > v[3]);
    }

    #[test]
    fn fig19_wc_lazyc_beats_lazyc_for_read_heavy() {
        // Smoke: WC+LazyC speedup exists and is >= LazyC on a read-heavy
        // benchmark where cancellation pays off.
        let params = tiny();
        let base = run_cell(&Scheme::baseline(), BenchKind::Bwaves, &params);
        let lazyc = run_cell(&Scheme::lazyc(), BenchKind::Bwaves, &params).speedup_vs(&base);
        let wc_lazy_scheme = Scheme {
            name: "WC+LazyC".into(),
            ctrl: Scheme::lazyc().ctrl.with_write_cancellation(),
            ratio: NmRatio::one_one(),
        };
        let wc_lazyc = run_cell(&wc_lazy_scheme, BenchKind::Bwaves, &params).speedup_vs(&base);
        assert!(lazyc > 0.5 && wc_lazyc > 0.5);
    }
}
