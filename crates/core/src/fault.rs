//! System-level fault scenarios for the chaos-injection harness.
//!
//! A [`FaultPlan`] is the experiment-facing builder over
//! [`sdpcm_wd::chaos::ChaosPlan`]: it collects scheduled faults in plain
//! terms (storm windows, stuck-at bursts, aging ramps), validates them on
//! [`FaultPlan::build`], and installs into a simulator via
//! [`crate::SystemSim::install_fault_plan`]. Scenarios are keyed on the
//! committed-write count, so the same seed and plan replay bit-exactly —
//! the property the reproducibility tests pin down.

use sdpcm_wd::chaos::{ChaosError, ChaosPlan, FaultKind, ScheduledFault};

/// A builder for deterministic fault scenarios.
///
/// # Examples
///
/// ```
/// use sdpcm_core::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .storm(200, 8.0, 400)
///     .stuck_burst(500, 4, 3)
///     .aging_ramp(800, 0.9)
///     .build()
///     .unwrap();
/// assert_eq!(plan.faults().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty scenario.
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules an elevated-disturbance window: both WD probabilities
    /// are multiplied by `mult` for the `duration_writes` committed
    /// writes after write number `at_write`.
    #[must_use]
    pub fn storm(mut self, at_write: u64, mult: f64, duration_writes: u64) -> FaultPlan {
        self.faults.push(ScheduledFault {
            at_write,
            kind: FaultKind::Storm {
                mult,
                duration_writes,
            },
        });
        self
    }

    /// Schedules a burst of permanent cell failures: `cells_per_line`
    /// stuck-at cells on each of `lines` lines near the working set.
    #[must_use]
    pub fn stuck_burst(mut self, at_write: u64, lines: u32, cells_per_line: u16) -> FaultPlan {
        self.faults.push(ScheduledFault {
            at_write,
            kind: FaultKind::StuckBurst {
                lines,
                cells_per_line,
            },
        });
        self
    }

    /// Schedules a DIMM aging step to `lifetime_fraction` of consumed
    /// lifetime (drives the hard-error model for lines touched after).
    #[must_use]
    pub fn aging_ramp(mut self, at_write: u64, lifetime_fraction: f64) -> FaultPlan {
        self.faults.push(ScheduledFault {
            at_write,
            kind: FaultKind::AgingRamp { lifetime_fraction },
        });
        self
    }

    /// Whether the scenario schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Validates the scenario into an executable [`ChaosPlan`].
    pub fn build(self) -> Result<ChaosPlan, ChaosError> {
        ChaosPlan::new(self.faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_by_trigger() {
        let plan = FaultPlan::new()
            .stuck_burst(900, 2, 1)
            .storm(100, 4.0, 50)
            .build()
            .unwrap();
        assert_eq!(plan.faults()[0].at_write, 100);
        assert_eq!(plan.faults()[1].at_write, 900);
    }

    #[test]
    fn builder_rejects_invalid_faults() {
        assert!(matches!(
            FaultPlan::new().storm(0, -2.0, 10).build(),
            Err(ChaosError::InvalidStormMult { .. })
        ));
        assert!(matches!(
            FaultPlan::new().aging_ramp(0, 2.0).build(),
            Err(ChaosError::InvalidAge { .. })
        ));
        assert!(FaultPlan::new().is_empty());
    }
}
