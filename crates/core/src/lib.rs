#![warn(missing_docs)]

//! SD-PCM core library: schemes, the full-system simulator, and the
//! experiment runners behind every table and figure of the paper.
//!
//! The pieces below tie the workspace together:
//!
//! * [`config`] — [`config::Scheme`] (the §5.3 compared schemes:
//!   `DIN`, `baseline` VnC, `LazyC`, `PreRead`, their combinations, and
//!   the `(n:m)` allocators) and [`config::ExperimentParams`]
//!   (seed, reference counts, geometry sizing).
//! * [`system`] — [`system::SystemSim`]: eight trace-driven
//!   in-order cores, per-core page tables filled by the WD-aware OS
//!   allocator, and the cycle-level memory controller, advanced by one
//!   event loop.
//! * [`metrics`] — [`metrics::RunStats`]: cycles, CPI,
//!   speedups, controller counters, and wear/lifetime summaries.
//! * [`experiments`] — one function per paper table/figure, returning
//!   plain rows that the bench harness formats.
//! * [`hiersim`] — the alternative full-hierarchy front end: cores →
//!   L1/L2/L3 → controller, for cache-sensitivity studies.
//! * [`hiertrace`] — capture-once/replay-many traces of the hierarchy
//!   front end: the cache outcomes are recorded once per workload and
//!   replayed bit-identically by every scheme cell.
//! * [`sweep`] — the parallel sweep executor: independent figure cells
//!   fan out over a scoped thread pool with outputs reassembled in
//!   input order, bit-identical to a sequential run.
//! * [`tracestore`] — the shared reference-trace cache behind the
//!   figure sweeps: first-toucher capture under a `OnceLock`, `Arc`
//!   sharing across scheme cells, and an optional versioned on-disk
//!   cache (`SDPCM_TRACE_DIR`).
//! * [`error`] — the typed [`error::SdpcmError`] hierarchy every
//!   simulator entry point reports instead of panicking.
//! * [`fault`] — [`fault::FaultPlan`]: deterministic chaos scenarios
//!   (storms, stuck-at bursts, aging ramps) installed into a simulator.
//!
//! # Examples
//!
//! ```
//! use sdpcm_core::{ExperimentParams, Scheme, SystemSim};
//! use sdpcm_trace::BenchKind;
//!
//! let params = ExperimentParams::quick_test();
//! let mut sim = SystemSim::build(&Scheme::din(), BenchKind::Stream, &params).unwrap();
//! let stats = sim.run().unwrap();
//! assert!(stats.total_cycles > 0);
//! assert!(stats.reads > 0);
//! ```

pub mod config;
pub mod error;
pub mod experiments;
pub mod fault;
pub mod hiersim;
pub mod hiertrace;
pub mod metrics;
pub mod sweep;
pub mod system;
pub mod tracestore;

pub use config::{ExperimentParams, Scheme};
pub use error::{ConfigError, MapError, SdpcmError, SimError};
pub use fault::FaultPlan;
pub use hiertrace::HierTrace;
pub use metrics::RunStats;
pub use system::SystemSim;
pub use tracestore::TraceStore;
