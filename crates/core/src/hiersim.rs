//! The full-hierarchy front end: cores → L1/L2/L3 → memory controller.
//!
//! [`crate::system::SystemSim`] replays *post-cache* reference streams,
//! matching the paper's PIN methodology (§5.2). This simulator is the
//! other front end the paper's in-house tool had: cores issue cache-line
//! loads/stores, the Table 2 hierarchy filters them, and only L3 misses
//! and dirty L3 evictions reach PCM. Useful when the question is how a
//! cache configuration changes the PCM-level traffic mix (the figures do
//! not need it; `examples/hierarchy_mode.rs` shows the raw plumbing).
//!
//! Modelling notes: cores are in-order and blocking — a load stalls the
//! core through the hierarchy latency plus, on an L3 miss, the PCM read;
//! stores are posted once the hierarchy access completes; write-backs
//! synthesize their payload from the line's newest architectural value
//! XOR a per-core toggle mask (the store path is presence/dirtiness
//! only, per `sdpcm-cachesim`).
//!
//! Two front ends drive the same backend:
//!
//! * [`HierarchySim::build`] simulates the cache stacks inline;
//! * [`HierarchySim::build_replay`] walks a [`HierTrace`] captured once
//!   by [`HierTrace::capture`], skipping the cache simulation and the
//!   absorbed (cache-resident) accesses entirely. Both produce
//!   bit-identical [`RunStats`] and device state — the determinism
//!   contract `DESIGN.md` spells out.

use std::sync::Arc;

use sdpcm_cachesim::cache::AccessKind as CacheAccess;
use sdpcm_cachesim::hierarchy::CoreCaches;
use sdpcm_engine::hash::FxHashMap;
use sdpcm_engine::prof::{self, Site};
use sdpcm_engine::{Cycle, SimRng};
use sdpcm_memctrl::{Access, AccessKind, Completion, CtrlConfig, MemoryController, ReqId};
use sdpcm_osalloc::{NmAllocator, PageTable};
use sdpcm_pcm::geometry::{LineAddr, PageId};
use sdpcm_trace::addr::{AddressStream, LINES_PER_PAGE};
use sdpcm_trace::{BenchKind, ToggleMask, Workload};

use crate::config::{ExperimentParams, Scheme};
use crate::error::{MapError, SdpcmError, SimError};
use crate::hiertrace::{HierTrace, HierTraceMeta};
use crate::metrics::RunStats;

pub use crate::hiertrace::HierEvent;

/// Knobs specific to hierarchy mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyParams {
    /// Cache accesses each core performs.
    pub accesses_per_core: u64,
    /// Instructions (cycles at 1 CPI) between consecutive cache accesses.
    pub insts_per_access: u64,
    /// Fraction of accesses that are stores.
    pub store_fraction: f64,
    /// The cache stack (Table 2 by default; shrink for tests so misses
    /// actually reach PCM).
    pub caches: sdpcm_cachesim::hierarchy::HierarchyConfig,
}

impl HierarchyParams {
    /// Small caches + short runs: every test reaches PCM quickly.
    #[must_use]
    pub fn quick_test() -> HierarchyParams {
        HierarchyParams {
            accesses_per_core: 1_500,
            insts_per_access: 3,
            store_fraction: 0.3,
            caches: sdpcm_cachesim::hierarchy::HierarchyConfig::tiny(),
        }
    }

    /// The paper's Table 2 hierarchy.
    #[must_use]
    pub fn table2() -> HierarchyParams {
        HierarchyParams {
            accesses_per_core: 100_000,
            insts_per_access: 3,
            store_fraction: 0.3,
            caches: sdpcm_cachesim::hierarchy::HierarchyConfig::table2(),
        }
    }
}

/// Where a core's cache-level outcomes come from.
enum HSource {
    /// Simulate the cache stack inline.
    Live {
        stream: AddressStream,
        caches: Box<CoreCaches>,
        rng: SimRng,
    },
    /// Walk this core's slice of the shared [`HierTrace`].
    Replay {
        /// Next event index.
        pos: usize,
        /// Whether the current event's leading gap has been applied.
        gap_done: bool,
    },
}

/// A live-mode access whose cache outcome is known but whose controller
/// interactions (write-backs, fill) must wait until the event loop
/// reaches the access's start time. Produced when
/// [`HierarchySim::step_core_live`] batches cache-resident accesses past
/// `now` and then hits one that touches PCM: the payload synthesis reads
/// controller state, so it may only run once the controller has been
/// advanced to the access time.
struct PendingAccess {
    fill: Option<u64>,
    writebacks: Vec<(u64, ToggleMask)>,
    latency: Cycle,
}

struct HCore {
    src: HSource,
    ready_at: Cycle,
    accesses_done: u64,
    instructions: u64,
    blocked_on: Option<ReqId>,
    finish: Option<Cycle>,
    /// Deferred non-absorbed access from a live batch (see
    /// [`PendingAccess`]); replay cores never use it.
    pending: Option<PendingAccess>,
}

/// The hierarchy-mode simulator.
///
/// # Examples
///
/// ```
/// use sdpcm_core::hiersim::{HierarchyParams, HierarchySim};
/// use sdpcm_core::{ExperimentParams, Scheme};
/// use sdpcm_trace::BenchKind;
///
/// let mut sim = HierarchySim::build(
///     Scheme::lazyc(),
///     BenchKind::Wrf,
///     &ExperimentParams::quick_test(),
///     &HierarchyParams::quick_test(),
/// )
/// .unwrap();
/// let stats = sim.run().unwrap();
/// assert!(stats.total_cycles > 0);
/// ```
pub struct HierarchySim {
    scheme: Scheme,
    workload_name: String,
    hparams: HierarchyParams,
    ctrl: MemoryController,
    cores: Vec<HCore>,
    tables: Vec<PageTable>,
    trace: Option<Arc<HierTrace>>,
    inflight: FxHashMap<ReqId, usize>,
    done_scratch: Vec<Completion>,
    next_id: u64,
    pcm_fills: u64,
    pcm_writebacks: u64,
}

impl std::fmt::Debug for HierarchySim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchySim")
            .field("scheme", &self.scheme.name)
            .field("workload", &self.workload_name)
            .field("replay", &self.trace.is_some())
            .finish()
    }
}

impl HierarchySim {
    /// Builds the system: eight copies of `bench`, each core with its own
    /// private cache stack and OS page mapping. Fails when the parameters
    /// are degenerate or the workload does not fit the device.
    pub fn build(
        scheme: Scheme,
        bench: BenchKind,
        params: &ExperimentParams,
        hparams: &HierarchyParams,
    ) -> Result<HierarchySim, SdpcmError> {
        let workload = Workload::homogeneous(bench);
        let (ctrl, tables, mut rng) = HierarchySim::build_backend(&scheme, &workload, params)?;
        let cores = workload
            .profiles()
            .iter()
            .enumerate()
            .map(|(core, profile)| HCore {
                src: HSource::Live {
                    stream: AddressStream::new(
                        profile.pattern,
                        profile.ws_pages,
                        rng.derive(&format!("hier-addr{core}")),
                    ),
                    caches: Box::new(CoreCaches::new(hparams.caches)),
                    rng: rng.derive(&format!("hier-core{core}")),
                },
                ready_at: Cycle::ZERO,
                accesses_done: 0,
                instructions: 0,
                blocked_on: None,
                finish: None,
                pending: None,
            })
            .collect();
        Ok(HierarchySim::assemble(
            scheme, &workload, hparams, ctrl, tables, cores, None,
        ))
    }

    /// Builds the system over a captured front-end trace: the same
    /// backend, but cache outcomes replay from `trace` instead of being
    /// re-simulated.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TraceMismatch`] when the trace was captured
    /// for different inputs than this run, plus everything
    /// [`HierarchySim::build`] reports.
    pub fn build_replay(
        scheme: Scheme,
        bench: BenchKind,
        params: &ExperimentParams,
        hparams: &HierarchyParams,
        trace: &Arc<HierTrace>,
    ) -> Result<HierarchySim, SdpcmError> {
        let expect = HierTraceMeta::for_run(bench, params, hparams);
        if trace.meta != expect {
            return Err(SimError::TraceMismatch {
                expect: format!("{:016x} ({})", expect.content_key(), expect.workload),
                got: format!(
                    "{:016x} ({})",
                    trace.meta.content_key(),
                    trace.meta.workload
                ),
            }
            .into());
        }
        let workload = Workload::homogeneous(bench);
        let (ctrl, tables, _rng) = HierarchySim::build_backend(&scheme, &workload, params)?;
        let cores = (0..trace.per_core.len())
            .map(|_| HCore {
                src: HSource::Replay {
                    pos: 0,
                    gap_done: false,
                },
                ready_at: Cycle::ZERO,
                accesses_done: 0,
                instructions: 0,
                blocked_on: None,
                finish: None,
                pending: None,
            })
            .collect();
        Ok(HierarchySim::assemble(
            scheme,
            &workload,
            hparams,
            ctrl,
            tables,
            cores,
            Some(trace.clone()),
        ))
    }

    /// Validates parameters, builds the controller, and maps every
    /// core's working set. Returns the parent RNG *after* the controller
    /// stream has been derived — the point [`HierTrace::capture`]
    /// mirrors before deriving the per-core front-end streams.
    fn build_backend(
        scheme: &Scheme,
        workload: &Workload,
        params: &ExperimentParams,
    ) -> Result<(MemoryController, Vec<PageTable>, SimRng), SdpcmError> {
        params.validate()?;
        let mut rng = SimRng::from_seed_label(params.seed, "hier-system");
        let geometry = params.geometry_for(workload, scheme.ratio)?;
        let cfg = CtrlConfig {
            write_queue_cap: params.write_queue_cap,
            ecp_entries: params.ecp_entries,
            ..CtrlConfig::table2(scheme.ctrl)
        };
        let mut ctrl = MemoryController::try_new(cfg, geometry, rng.derive("ctrl"))?;
        ctrl.set_advance_workers(crate::sweep::default_cell_workers());

        let mut os = NmAllocator::new(geometry.total_pages());
        let mut tables = Vec::new();
        for (core, pages) in workload.pages_per_core().into_iter().enumerate() {
            let frames = os
                .alloc_pages(scheme.ratio, pages)
                .ok_or(MapError::DeviceFull { core, pages })?;
            let mut table = PageTable::new();
            for (vpage, frame) in frames.into_iter().enumerate() {
                table.map(vpage as u64, frame, scheme.ratio);
            }
            tables.push(table);
        }
        Ok((ctrl, tables, rng))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        scheme: Scheme,
        workload: &Workload,
        hparams: &HierarchyParams,
        ctrl: MemoryController,
        tables: Vec<PageTable>,
        cores: Vec<HCore>,
        trace: Option<Arc<HierTrace>>,
    ) -> HierarchySim {
        HierarchySim {
            scheme,
            workload_name: workload.name().to_owned(),
            hparams: *hparams,
            ctrl,
            cores,
            tables,
            trace,
            inflight: FxHashMap::default(),
            done_scratch: Vec::new(),
            next_id: 0,
            pcm_fills: 0,
            pcm_writebacks: 0,
        }
    }

    /// The controller (diagnostics).
    #[must_use]
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// `(L3-miss fills, dirty write-backs)` the hierarchy produced.
    #[must_use]
    pub fn pcm_traffic(&self) -> (u64, u64) {
        (self.pcm_fills, self.pcm_writebacks)
    }

    fn translate(&self, core: usize, vline: u64) -> Result<LineAddr, MapError> {
        let vpage = vline / LINES_PER_PAGE;
        let slot = (vline % LINES_PER_PAGE) as u8;
        let pte = self.tables[core]
            .translate(vpage)
            .ok_or(MapError::WorkingSetUnmapped { core, vpage })?;
        let (bank, row) = self
            .ctrl
            .store()
            .geometry()
            .page_to_bank_row(PageId(pte.frame));
        Ok(LineAddr { bank, row, slot })
    }

    /// Posts a dirty write-back whose payload is the line's newest
    /// architectural value with `mask` applied — the single payload
    /// path both the live and the replay front end go through.
    fn submit_writeback_mask(
        &mut self,
        core: usize,
        vline: u64,
        mask: &ToggleMask,
        now: Cycle,
    ) -> Result<(), SdpcmError> {
        let addr = self.translate(core, vline)?;
        let mut words = *self.ctrl.latest_architectural(addr).words();
        for (w, m) in words.iter_mut().zip(mask) {
            *w ^= m;
        }
        let id = ReqId(self.next_id);
        self.next_id += 1;
        self.pcm_writebacks += 1;
        self.ctrl.submit(
            Access {
                id,
                addr,
                kind: AccessKind::Write(sdpcm_pcm::line::LineBuf::from_words(words)),
                ratio: self.scheme.ratio,
                core: core as u8,
                arrive: now,
            },
            now,
        )?;
        Ok(())
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] when the event loop stops making
    /// progress, and propagates controller and translation errors.
    pub fn run(&mut self) -> Result<RunStats, SdpcmError> {
        let quota = self.hparams.accesses_per_core;
        let mut guard = 0u64;
        loop {
            if self.cores.iter().all(|c| c.finish.is_some()) {
                break;
            }
            let core_t = self
                .cores
                .iter()
                .filter(|c| c.blocked_on.is_none() && c.finish.is_none())
                .map(|c| c.ready_at)
                .min();
            let ctrl_t = self.ctrl.next_event();
            let now = match (core_t, ctrl_t) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return Err(self.livelock(Cycle::MAX)),
            };
            guard += 1;
            if guard >= 500_000_000 {
                return Err(self.livelock(now));
            }
            let _t = prof::timer(Site::HierStep);

            let mut done_buf = std::mem::take(&mut self.done_scratch);
            self.ctrl.advance_into(now, &mut done_buf)?;
            for done in &done_buf {
                if let Some(core) = self.inflight.remove(&done.id) {
                    self.cores[core].blocked_on = None;
                    self.cores[core].ready_at = done.at;
                }
            }
            self.done_scratch = done_buf;

            for core in 0..self.cores.len() {
                let c = &self.cores[core];
                if c.finish.is_some() || c.blocked_on.is_some() || c.ready_at > now {
                    continue;
                }
                match c.src {
                    HSource::Live { .. } => self.step_core_live(core, now, quota)?,
                    HSource::Replay { .. } => self.step_core_replay(core, now, quota)?,
                }
            }
        }

        // Final flush so per-write statistics cover everything.
        let end = Cycle(self.total_cycles());
        self.ctrl.drain_all(end);
        while let Some(t) = self.ctrl.next_event() {
            let mut done_buf = std::mem::take(&mut self.done_scratch);
            self.ctrl.advance_into(t, &mut done_buf)?;
            self.done_scratch = done_buf;
            self.ctrl.drain_all(t);
        }

        Ok(RunStats {
            scheme: self.scheme.name.clone(),
            workload: format!("{}(hier)", self.workload_name),
            total_cycles: self.total_cycles(),
            instructions: self.cores.iter().map(|c| c.instructions).sum(),
            reads: self.pcm_fills,
            writes: self.pcm_writebacks,
            ctrl: self.ctrl.stats(),
            wear: self.ctrl.store().wear(),
            energy: self.ctrl.energy(),
        })
    }

    /// Builds the livelock report with the controller's queue snapshot.
    fn livelock(&self, now: Cycle) -> SdpcmError {
        SimError::Livelock {
            cycle: now.0,
            refs_done: self.cores.iter().map(|c| c.accesses_done).sum(),
            snapshot: self.ctrl.snapshot(now),
        }
        .into()
    }

    /// One live-core turn. Cache-resident (absorbed) accesses are purely
    /// core-local — stream, RNG, and cache state are private, and they
    /// never touch the controller — so consecutive ones are retired in a
    /// batch here instead of bouncing through the event loop once per
    /// access. The first access that does reach PCM ends the batch: its
    /// cache outcome and toggle draws are taken immediately (the per-core
    /// RNG order must not change), but its controller interactions are
    /// deferred via [`PendingAccess`] until the event loop has advanced
    /// the controller to the access's start time — payload synthesis
    /// reads controller state, and submitting early would reorder it
    /// against other cores' intervening traffic.
    fn step_core_live(&mut self, core: usize, now: Cycle, quota: u64) -> Result<(), SdpcmError> {
        if let Some(p) = self.cores[core].pending.take() {
            for (vline, mask) in &p.writebacks {
                self.submit_writeback_mask(core, *vline, mask, now)?;
            }
            let c = &mut self.cores[core];
            c.accesses_done += 1;
            c.instructions += self.hparams.insts_per_access;
            let after = now + p.latency + Cycle(self.hparams.insts_per_access);
            return self.finish_access(core, p.fill, after, quota);
        }
        let store_fraction = self.hparams.store_fraction;
        let insts = self.hparams.insts_per_access;
        let mut t = now;
        loop {
            let HSource::Live {
                stream,
                caches,
                rng,
            } = &mut self.cores[core].src
            else {
                unreachable!("live step on a replay core")
            };
            let (vpage, slot) = stream.next_line();
            let vline = vpage * LINES_PER_PAGE + u64::from(slot);
            let is_store = rng.chance(store_fraction);
            let kind = if is_store {
                CacheAccess::Write
            } else {
                CacheAccess::Read
            };
            let out = caches.access(vline, kind);
            if out.pcm_fill.is_none() && out.pcm_writebacks.is_empty() {
                let latency = out.latency;
                let c = &mut self.cores[core];
                c.accesses_done += 1;
                c.instructions += insts;
                t = t + latency + Cycle(insts);
                if c.accesses_done >= quota {
                    c.finish = Some(t);
                    c.blocked_on = None;
                    self.inflight.retain(|_, &mut owner| owner != core);
                    return Ok(());
                }
                continue;
            }
            // Dirty evictions become posted PCM writes; payloads are the
            // newest architectural value XOR 48 per-core toggle draws.
            let mut writebacks = Vec::new();
            for &wb in &out.pcm_writebacks {
                let mut mask = ToggleMask::default();
                for _ in 0..48 {
                    let b = rng.index(512);
                    mask[b / 64] ^= 1 << (b % 64);
                }
                writebacks.push((wb, mask));
            }
            if t == now {
                for (vline, mask) in &writebacks {
                    self.submit_writeback_mask(core, *vline, mask, now)?;
                }
                let c = &mut self.cores[core];
                c.accesses_done += 1;
                c.instructions += insts;
                let after = now + out.latency + Cycle(insts);
                return self.finish_access(core, out.pcm_fill, after, quota);
            }
            let c = &mut self.cores[core];
            c.pending = Some(PendingAccess {
                fill: out.pcm_fill,
                writebacks,
                latency: out.latency,
            });
            c.ready_at = t;
            return Ok(());
        }
    }

    fn step_core_replay(&mut self, core: usize, now: Cycle, quota: u64) -> Result<(), SdpcmError> {
        let trace = self
            .trace
            .clone()
            .expect("replay cores carry a shared trace");
        let ct = &trace.per_core[core];
        let insts = self.hparams.insts_per_access;
        let HSource::Replay { pos, gap_done } = &mut self.cores[core].src else {
            unreachable!("replay step on a live core")
        };
        if *pos == ct.events.len() {
            // Only cache-resident accesses remain: they never touch the
            // controller, so their aggregate latency is the finish time.
            let c = &mut self.cores[core];
            c.accesses_done += ct.tail_absorbed;
            c.instructions += ct.tail_absorbed * insts;
            c.finish = Some(now + Cycle(ct.tail_gap));
            return Ok(());
        }
        let ev = &ct.events[*pos];
        if !*gap_done && ev.gap > 0 {
            // Absorbed accesses before this event: advance the core
            // without touching the controller.
            *gap_done = true;
            self.cores[core].ready_at = now + Cycle(ev.gap);
            return Ok(());
        }
        *pos += 1;
        *gap_done = false;

        for (vline, mask) in &ev.writebacks {
            self.submit_writeback_mask(core, *vline, mask, now)?;
        }
        let c = &mut self.cores[core];
        c.accesses_done += ev.absorbed + 1;
        c.instructions += (ev.absorbed + 1) * insts;
        let after = now + Cycle(ev.latency) + Cycle(insts);
        self.finish_access(core, ev.fill, after, quota)
    }

    /// The shared back half of one access: block on an L3-miss fill,
    /// otherwise resume at `after`; retire the core when it reaches its
    /// quota (a final fill is still submitted but no longer awaited).
    fn finish_access(
        &mut self,
        core: usize,
        fill: Option<u64>,
        after: Cycle,
        quota: u64,
    ) -> Result<(), SdpcmError> {
        if let Some(fill_line) = fill {
            // L3 miss: the core blocks on the PCM read.
            let addr = self.translate(core, fill_line)?;
            let id = ReqId(self.next_id);
            self.next_id += 1;
            self.pcm_fills += 1;
            self.inflight.insert(id, core);
            self.cores[core].blocked_on = Some(id);
            self.ctrl.submit(
                Access {
                    id,
                    addr,
                    kind: AccessKind::Read,
                    ratio: self.scheme.ratio,
                    core: core as u8,
                    arrive: after,
                },
                after,
            )?;
        } else {
            self.cores[core].ready_at = after;
        }
        if self.cores[core].accesses_done >= quota {
            self.cores[core].finish = Some(after);
            self.cores[core].blocked_on = None;
            self.inflight.retain(|_, &mut c| c != core);
        }
        Ok(())
    }

    fn total_cycles(&self) -> u64 {
        self.cores
            .iter()
            .filter_map(|c| c.finish)
            .map(|c| c.0)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: Scheme, bench: BenchKind) -> (RunStats, (u64, u64)) {
        let mut sim = HierarchySim::build(
            scheme,
            bench,
            &ExperimentParams::quick_test(),
            &HierarchyParams::quick_test(),
        )
        .unwrap();
        let stats = sim.run().unwrap();
        let traffic = sim.pcm_traffic();
        (stats, traffic)
    }

    #[test]
    fn completes_and_produces_pcm_traffic() {
        let (stats, (fills, wbs)) = quick(Scheme::lazyc(), BenchKind::Mcf);
        assert!(stats.total_cycles > 0);
        assert!(fills > 100, "random mcf traffic must miss the tiny caches");
        assert!(wbs > 10, "stores must eventually write back");
        assert_eq!(stats.reads, fills);
        assert_eq!(stats.writes, wbs);
    }

    #[test]
    fn cache_resident_workload_barely_touches_pcm() {
        // wrf's hot set fits even the tiny L3 after warmup: PCM fills per
        // access must be far below mcf's.
        let (wrf, (wrf_fills, _)) = quick(Scheme::lazyc(), BenchKind::Wrf);
        let (mcf, (mcf_fills, _)) = quick(Scheme::lazyc(), BenchKind::Mcf);
        let wrf_rate = wrf_fills as f64 / 1_500.0;
        let mcf_rate = mcf_fills as f64 / 1_500.0;
        assert!(
            wrf_rate < mcf_rate,
            "hot-set wrf ({wrf_rate:.3}) must miss less than random mcf ({mcf_rate:.3})"
        );
        assert!(wrf.total_cycles < mcf.total_cycles);
    }

    #[test]
    fn vnc_overhead_visible_through_the_hierarchy() {
        let (din, _) = quick(Scheme::din(), BenchKind::Mcf);
        let (base, _) = quick(Scheme::baseline(), BenchKind::Mcf);
        assert!(
            base.total_cycles > din.total_cycles,
            "basic VnC must be slower even behind caches: {} vs {}",
            base.total_cycles,
            din.total_cycles
        );
        assert!(base.ctrl.verification_ops.get() > 0);
    }

    #[test]
    fn deterministic() {
        let (a, ta) = quick(Scheme::lazyc_preread(), BenchKind::Zeusmp);
        let (b, tb) = quick(Scheme::lazyc_preread(), BenchKind::Zeusmp);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(ta, tb);
    }

    #[test]
    fn replay_matches_inline_bit_for_bit() {
        let params = ExperimentParams::quick_test();
        let hparams = HierarchyParams::quick_test();
        for bench in [BenchKind::Mcf, BenchKind::Wrf] {
            let trace = HierTrace::capture(bench, &params, &hparams);
            for scheme in [Scheme::baseline(), Scheme::lazyc_preread()] {
                let mut inline =
                    HierarchySim::build(scheme.clone(), bench, &params, &hparams).unwrap();
                let a = inline.run().unwrap();
                let mut replay =
                    HierarchySim::build_replay(scheme, bench, &params, &hparams, &trace).unwrap();
                let b = replay.run().unwrap();
                assert_eq!(a, b, "stats must be bit-identical");
                assert_eq!(inline.pcm_traffic(), replay.pcm_traffic());
                assert_eq!(
                    inline.controller().store().content_digest(),
                    replay.controller().store().content_digest(),
                    "device state must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn replay_rejects_mismatched_trace() {
        let params = ExperimentParams::quick_test();
        let hparams = HierarchyParams::quick_test();
        let trace = HierTrace::capture(BenchKind::Mcf, &params, &hparams);
        let err = HierarchySim::build_replay(
            Scheme::baseline(),
            BenchKind::Wrf,
            &params,
            &hparams,
            &trace,
        )
        .unwrap_err();
        assert!(err.to_string().contains("trace mismatch"), "{err}");
    }
}
