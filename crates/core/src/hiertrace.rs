//! Capture-once/replay-many traces for the hierarchy front end.
//!
//! A [`crate::hiersim::HierarchySim`] spends most of its time in the
//! per-core cache stacks, yet everything the caches decide — which
//! accesses miss to PCM, which dirty lines write back, each access's
//! hierarchy latency — is *timing-independent*: the access stream, the
//! store/load split and the write-back toggle draws all come from
//! per-core RNGs advanced in program order, and the cache state is a
//! pure function of the access sequence. A [`HierTrace`] records that
//! front-end outcome once per `(bench, params, hierarchy params, seed)`
//! and lets every scheme cell of a sweep replay it, skipping the cache
//! simulation entirely.
//!
//! The trace is *coalesced*: runs of accesses that never touch PCM
//! collapse into a single `gap` (their aggregate latency + instruction
//! cycles), so replay also visits far fewer event-loop time points.
//! The controller completes operations in global time order regardless
//! of how often it is polled, so the coarser cadence leaves `RunStats`
//! and the device digest bit-identical (see `DESIGN.md`).

use std::sync::Arc;

use sdpcm_cachesim::cache::AccessKind as CacheAccess;
use sdpcm_cachesim::hierarchy::{CoreCaches, HierarchyConfig};
use sdpcm_engine::SimRng;
use sdpcm_trace::addr::{AddressStream, LINES_PER_PAGE};
use sdpcm_trace::wire::{fnv1a, Reader, WireError, Writer};
use sdpcm_trace::{BenchKind, ToggleMask, Workload, TRACE_SCHEMA_VERSION};

use crate::config::ExperimentParams;
use crate::hiersim::HierarchyParams;

/// Magic bytes of the on-wire hierarchy-trace format.
const MAGIC: &[u8; 4] = b"SDHT";

/// One PCM-touching cache access of one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierEvent {
    /// Cycles consumed by the cache-resident accesses absorbed between
    /// the previous event and this one (their latencies plus
    /// `insts_per_access` each).
    pub gap: u64,
    /// How many accesses were absorbed into `gap`.
    pub absorbed: u64,
    /// This access's own hierarchy latency.
    pub latency: u64,
    /// Dirty L3 evictions this access caused: `(virtual line, payload
    /// toggle mask)` in eviction order.
    pub writebacks: Vec<(u64, ToggleMask)>,
    /// The virtual line filled from PCM on an L3 miss.
    pub fill: Option<u64>,
}

/// One core's coalesced event sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierCoreTrace {
    /// PCM-touching accesses, in program order.
    pub events: Vec<HierEvent>,
    /// Cycles of the cache-resident accesses after the last event.
    pub tail_gap: u64,
    /// How many accesses the tail absorbs.
    pub tail_absorbed: u64,
}

/// What a [`HierTrace`] was captured for. Replay refuses a trace whose
/// meta does not match the run being built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierTraceMeta {
    /// Workload name (eight copies of one benchmark).
    pub workload: String,
    /// Seed the front-end RNG streams derive from.
    pub seed: u64,
    /// Cache accesses per core.
    pub accesses_per_core: u64,
    /// Instruction cycles between accesses.
    pub insts_per_access: u64,
    /// `store_fraction` as raw bits (exact, hashable).
    pub store_fraction_bits: u64,
    /// Fingerprint of the three cache levels' geometry and latency.
    pub cache_fingerprint: u64,
}

impl HierTraceMeta {
    /// The meta a run with these inputs captures (and demands).
    #[must_use]
    pub fn for_run(
        bench: BenchKind,
        params: &ExperimentParams,
        hparams: &HierarchyParams,
    ) -> HierTraceMeta {
        HierTraceMeta {
            workload: Workload::homogeneous(bench).name().to_owned(),
            seed: params.seed,
            accesses_per_core: hparams.accesses_per_core,
            insts_per_access: hparams.insts_per_access,
            store_fraction_bits: hparams.store_fraction.to_bits(),
            cache_fingerprint: cache_fingerprint(&hparams.caches),
        }
    }

    /// Stable content hash (includes the schema version), usable as an
    /// on-disk cache key.
    #[must_use]
    pub fn content_key(&self) -> u64 {
        let mut w = Writer::new();
        w.put_u32(TRACE_SCHEMA_VERSION);
        w.put_str(&self.workload);
        w.put_u64(self.seed);
        w.put_u64(self.accesses_per_core);
        w.put_u64(self.insts_per_access);
        w.put_u64(self.store_fraction_bits);
        w.put_u64(self.cache_fingerprint);
        fnv1a(&w.finish())
    }
}

/// Hashes every structural field of the hierarchy configuration.
fn cache_fingerprint(caches: &HierarchyConfig) -> u64 {
    let mut w = Writer::new();
    for c in [caches.l1, caches.l2, caches.l3] {
        w.put_u64(c.size_bytes);
        w.put_u32(c.ways);
        w.put_u64(c.hit_latency.0);
    }
    fnv1a(&w.finish())
}

/// A captured hierarchy front-end trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierTrace {
    /// What the trace was captured for.
    pub meta: HierTraceMeta,
    /// One coalesced sequence per core.
    pub per_core: Vec<HierCoreTrace>,
}

impl HierTrace {
    /// Runs the cache front end untimed and records every PCM-touching
    /// access. Mirrors [`crate::hiersim::HierarchySim::build`]'s RNG
    /// derivation chain exactly, so replaying the result is
    /// bit-identical to inline simulation.
    #[must_use]
    pub fn capture(
        bench: BenchKind,
        params: &ExperimentParams,
        hparams: &HierarchyParams,
    ) -> Arc<HierTrace> {
        let workload = Workload::homogeneous(bench);
        let mut rng = SimRng::from_seed_label(params.seed, "hier-system");
        // The controller consumes the first derived stream; discard it
        // to stay aligned with the live build.
        let _ = rng.derive("ctrl");
        let mut per_core = Vec::new();
        for (core, profile) in workload.profiles().iter().enumerate() {
            let mut stream = AddressStream::new(
                profile.pattern,
                profile.ws_pages,
                rng.derive(&format!("hier-addr{core}")),
            );
            let mut crng = rng.derive(&format!("hier-core{core}"));
            let mut caches = CoreCaches::new(hparams.caches);
            let mut trace = HierCoreTrace::default();
            let mut gap = 0u64;
            let mut absorbed = 0u64;
            for _ in 0..hparams.accesses_per_core {
                let (vpage, slot) = stream.next_line();
                let vline = vpage * LINES_PER_PAGE + u64::from(slot);
                let is_store = crng.chance(hparams.store_fraction);
                let kind = if is_store {
                    CacheAccess::Write
                } else {
                    CacheAccess::Read
                };
                let out = caches.access(vline, kind);
                let mut writebacks = Vec::new();
                for &wb in &out.pcm_writebacks {
                    // Same 48 toggle draws the live write-back path
                    // makes; duplicates cancel under XOR exactly as
                    // repeated in-place flips do.
                    let mut mask = ToggleMask::default();
                    for _ in 0..48 {
                        let b = crng.index(512);
                        mask[b / 64] ^= 1 << (b % 64);
                    }
                    writebacks.push((wb, mask));
                }
                if out.pcm_fill.is_some() || !writebacks.is_empty() {
                    trace.events.push(HierEvent {
                        gap,
                        absorbed,
                        latency: out.latency.0,
                        writebacks,
                        fill: out.pcm_fill,
                    });
                    gap = 0;
                    absorbed = 0;
                } else {
                    gap += out.latency.0 + hparams.insts_per_access;
                    absorbed += 1;
                }
            }
            trace.tail_gap = gap;
            trace.tail_absorbed = absorbed;
            per_core.push(trace);
        }
        Arc::new(HierTrace {
            meta: HierTraceMeta {
                workload: workload.name().to_owned(),
                seed: params.seed,
                accesses_per_core: hparams.accesses_per_core,
                insts_per_access: hparams.insts_per_access,
                store_fraction_bits: hparams.store_fraction.to_bits(),
                cache_fingerprint: cache_fingerprint(&hparams.caches),
            },
            per_core,
        })
    }

    /// Total PCM-touching events across all cores.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.per_core.iter().map(|c| c.events.len() as u64).sum()
    }

    /// Serializes the trace (versioned, digest-protected).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(MAGIC[0]);
        w.put_u8(MAGIC[1]);
        w.put_u8(MAGIC[2]);
        w.put_u8(MAGIC[3]);
        w.put_u32(TRACE_SCHEMA_VERSION);
        w.put_str(&self.meta.workload);
        w.put_u64(self.meta.seed);
        w.put_u64(self.meta.accesses_per_core);
        w.put_u64(self.meta.insts_per_access);
        w.put_u64(self.meta.store_fraction_bits);
        w.put_u64(self.meta.cache_fingerprint);
        w.put_u32(self.per_core.len() as u32);
        for core in &self.per_core {
            w.put_u64(core.tail_gap);
            w.put_u64(core.tail_absorbed);
            w.put_u32(core.events.len() as u32);
            for ev in &core.events {
                w.put_u64(ev.gap);
                w.put_u64(ev.absorbed);
                w.put_u64(ev.latency);
                match ev.fill {
                    Some(v) => {
                        w.put_u8(1);
                        w.put_u64(v);
                    }
                    None => w.put_u8(0),
                }
                w.put_u16(ev.writebacks.len() as u16);
                for (vline, mask) in &ev.writebacks {
                    w.put_u64(*vline);
                    for word in mask {
                        w.put_u64(*word);
                    }
                }
            }
        }
        w.finish()
    }

    /// Deserializes a trace, rejecting corruption, truncation, trailing
    /// garbage and other schema versions.
    pub fn from_bytes(bytes: &[u8]) -> Result<HierTrace, WireError> {
        let mut r = Reader::checked(bytes)?;
        for expect in MAGIC {
            if r.get_u8()? != *expect {
                return Err(WireError::Malformed);
            }
        }
        if r.get_u32()? != TRACE_SCHEMA_VERSION {
            return Err(WireError::WrongSchema);
        }
        let meta = HierTraceMeta {
            workload: r.get_str()?,
            seed: r.get_u64()?,
            accesses_per_core: r.get_u64()?,
            insts_per_access: r.get_u64()?,
            store_fraction_bits: r.get_u64()?,
            cache_fingerprint: r.get_u64()?,
        };
        let cores = r.get_u32()? as usize;
        if cores > 1024 {
            return Err(WireError::Malformed);
        }
        let mut per_core = Vec::with_capacity(cores);
        for _ in 0..cores {
            let tail_gap = r.get_u64()?;
            let tail_absorbed = r.get_u64()?;
            let n = r.get_u32()? as usize;
            let mut events = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let gap = r.get_u64()?;
                let absorbed = r.get_u64()?;
                let latency = r.get_u64()?;
                let fill = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_u64()?),
                    _ => return Err(WireError::Malformed),
                };
                let wbs = r.get_u16()? as usize;
                let mut writebacks = Vec::with_capacity(wbs);
                for _ in 0..wbs {
                    let vline = r.get_u64()?;
                    let mut mask = ToggleMask::default();
                    for word in &mut mask {
                        *word = r.get_u64()?;
                    }
                    writebacks.push((vline, mask));
                }
                events.push(HierEvent {
                    gap,
                    absorbed,
                    latency,
                    writebacks,
                    fill,
                });
            }
            per_core.push(HierCoreTrace {
                events,
                tail_gap,
                tail_absorbed,
            });
        }
        if !r.at_end() {
            return Err(WireError::Malformed);
        }
        Ok(HierTrace { meta, per_core })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture_quick() -> Arc<HierTrace> {
        HierTrace::capture(
            BenchKind::Mcf,
            &ExperimentParams::quick_test(),
            &HierarchyParams::quick_test(),
        )
    }

    #[test]
    fn capture_accounts_every_access() {
        let t = capture_quick();
        let quota = HierarchyParams::quick_test().accesses_per_core;
        assert_eq!(t.per_core.len(), 8);
        for core in &t.per_core {
            let events: u64 = core.events.len() as u64;
            let absorbed: u64 = core.events.iter().map(|e| e.absorbed).sum();
            assert_eq!(events + absorbed + core.tail_absorbed, quota);
        }
        assert!(t.total_events() > 0, "tiny caches must leak traffic");
    }

    #[test]
    fn capture_is_deterministic() {
        let a = capture_quick();
        let b = capture_quick();
        assert_eq!(*a, *b);
    }

    #[test]
    fn wire_roundtrip() {
        let t = capture_quick();
        let bytes = t.to_bytes();
        let back = HierTrace::from_bytes(&bytes).unwrap();
        assert_eq!(*t, back);
    }

    #[test]
    fn wire_rejects_corruption_and_stale_schema() {
        let t = capture_quick();
        let mut bytes = t.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            HierTrace::from_bytes(&bytes),
            Err(WireError::DigestMismatch)
        ));
        assert!(matches!(
            HierTrace::from_bytes(&t.to_bytes()[..10]),
            Err(WireError::Truncated) | Err(WireError::DigestMismatch)
        ));
    }

    #[test]
    fn meta_key_separates_configurations() {
        let p = ExperimentParams::quick_test();
        let h = HierarchyParams::quick_test();
        let a = HierTraceMeta::for_run(BenchKind::Mcf, &p, &h);
        let b = HierTraceMeta::for_run(BenchKind::Wrf, &p, &h);
        let mut h2 = h;
        h2.accesses_per_core += 1;
        let c = HierTraceMeta::for_run(BenchKind::Mcf, &p, &h2);
        let mut h3 = h;
        h3.caches = HierarchyConfig::table2();
        let d = HierTraceMeta::for_run(BenchKind::Mcf, &p, &h3);
        let keys = [
            a.content_key(),
            b.content_key(),
            c.content_key(),
            d.content_key(),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }
}
