//! Scheme definitions (§5.3) and experiment parameters.

use sdpcm_memctrl::CtrlScheme;
use sdpcm_osalloc::NmRatio;
use sdpcm_pcm::geometry::MemGeometry;
use sdpcm_trace::Workload;

use crate::error::ConfigError;

/// A complete evaluated configuration: controller mechanisms plus the
/// page-allocation ratio every application uses (§5.3 assumes one
/// allocator per application).
#[derive(Debug, Clone, PartialEq)]
pub struct Scheme {
    /// Display name used in figures.
    pub name: String,
    /// Controller mechanism switches.
    pub ctrl: CtrlScheme,
    /// The (n:m) allocator applications request.
    pub ratio: NmRatio,
}

impl Scheme {
    fn named(name: &str, ctrl: CtrlScheme, ratio: NmRatio) -> Scheme {
        Scheme {
            name: name.to_owned(),
            ctrl,
            ratio,
        }
    }

    /// `DIN` — 8F² DIN-enhanced PCM, WD-free along bit-lines.
    #[must_use]
    pub fn din() -> Scheme {
        Scheme::named("DIN", CtrlScheme::din(), NmRatio::one_one())
    }

    /// `baseline` — basic VnC on super dense 4F² PCM.
    #[must_use]
    pub fn baseline() -> Scheme {
        Scheme::named("baseline", CtrlScheme::baseline_vnc(), NmRatio::one_one())
    }

    /// `LazyC`.
    #[must_use]
    pub fn lazyc() -> Scheme {
        Scheme::named("LazyC", CtrlScheme::lazyc(), NmRatio::one_one())
    }

    /// `PreRead` (on top of baseline, without LazyC).
    #[must_use]
    pub fn preread() -> Scheme {
        Scheme::named("PreRead", CtrlScheme::preread(), NmRatio::one_one())
    }

    /// `LazyC+PreRead`.
    #[must_use]
    pub fn lazyc_preread() -> Scheme {
        Scheme::named(
            "LazyC+PreRead",
            CtrlScheme::lazyc_preread(),
            NmRatio::one_one(),
        )
    }

    /// `LazyC+(2:3)Alloc`.
    #[must_use]
    pub fn lazyc_two_three() -> Scheme {
        Scheme::named("LazyC+(2:3)", CtrlScheme::lazyc(), NmRatio::two_three())
    }

    /// `LazyC+PreRead+(2:3)Alloc` — the paper's best VnC-bearing combo.
    #[must_use]
    pub fn lazyc_preread_two_three() -> Scheme {
        Scheme::named(
            "LazyC+PreRead+(2:3)",
            CtrlScheme::lazyc_preread(),
            NmRatio::two_three(),
        )
    }

    /// `(1:2)Alloc` — eliminates VnC entirely; needs no LazyC/PreRead.
    #[must_use]
    pub fn one_two_alloc() -> Scheme {
        Scheme::named("(1:2)Alloc", CtrlScheme::baseline_vnc(), NmRatio::one_two())
    }

    /// Basic VnC combined with an arbitrary allocator (Figure 16 sweep).
    #[must_use]
    pub fn baseline_with_ratio(ratio: NmRatio) -> Scheme {
        Scheme::named(&format!("VnC+{ratio}"), CtrlScheme::baseline_vnc(), ratio)
    }

    /// The seven bars of Figure 11, in the paper's order.
    #[must_use]
    pub fn figure11_set() -> Vec<Scheme> {
        vec![
            Scheme::din(),
            Scheme::baseline(),
            Scheme::lazyc(),
            Scheme::lazyc_preread(),
            Scheme::lazyc_two_three(),
            Scheme::lazyc_preread_two_three(),
            Scheme::one_two_alloc(),
        ]
    }
}

/// Global experiment knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentParams {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Main-memory references each of the eight cores executes (the
    /// paper uses 10 M total; see EXPERIMENTS.md for the counts used).
    pub refs_per_core: u64,
    /// Write-queue entries per bank.
    pub write_queue_cap: usize,
    /// ECP entries per line.
    pub ecp_entries: usize,
    /// Consumed-lifetime fraction for DIMM-aging runs.
    pub dimm_age: Option<f64>,
}

impl ExperimentParams {
    /// Tiny runs for unit/integration tests.
    #[must_use]
    pub fn quick_test() -> ExperimentParams {
        ExperimentParams {
            seed: 0x5d9c_2015,
            refs_per_core: 1_500,
            write_queue_cap: 32,
            ecp_entries: 6,
            dimm_age: None,
        }
    }

    /// Default size for the figure harness: large enough for stable
    /// relative results, small enough for a full multi-figure sweep.
    #[must_use]
    pub fn bench_default() -> ExperimentParams {
        ExperimentParams {
            refs_per_core: 25_000,
            ..ExperimentParams::quick_test()
        }
    }

    /// Rejects parameter sets the simulators cannot run with: zero-sized
    /// queues or reference quotas, and aging fractions outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.refs_per_core == 0 {
            return Err(ConfigError::ZeroField {
                field: "refs_per_core",
            });
        }
        if self.write_queue_cap == 0 {
            return Err(ConfigError::ZeroField {
                field: "write_queue_cap",
            });
        }
        if let Some(age) = self.dimm_age {
            if !(0.0..=1.0).contains(&age) {
                return Err(ConfigError::AgeOutOfRange { value: age });
            }
        }
        Ok(())
    }

    /// Sizes a device geometry that fits `workload` under `ratio`, with
    /// slack for the allocator's block granularity. Fails when the
    /// required geometry would exceed the real 8 GB device.
    pub fn geometry_for(
        &self,
        workload: &Workload,
        ratio: NmRatio,
    ) -> Result<MemGeometry, ConfigError> {
        let demand = workload.total_pages() as f64 / ratio.capacity_fraction();
        let padded = (demand * 1.5) as u64 + 1024;
        let rows_per_bank = padded.div_ceil(16).max(64);
        const LIMIT: u64 = 128 * 1024;
        if rows_per_bank > LIMIT {
            return Err(ConfigError::WorkloadTooLarge {
                rows_per_bank,
                limit: LIMIT,
            });
        }
        Ok(MemGeometry::small(rows_per_bank as u32))
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams::bench_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpcm_trace::BenchKind;

    #[test]
    fn figure11_set_matches_paper_order() {
        let names: Vec<String> = Scheme::figure11_set().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "DIN",
                "baseline",
                "LazyC",
                "LazyC+PreRead",
                "LazyC+(2:3)",
                "LazyC+PreRead+(2:3)",
                "(1:2)Alloc"
            ]
        );
    }

    #[test]
    fn scheme_mechanisms() {
        assert!(!Scheme::din().ctrl.vnc);
        assert!(Scheme::baseline().ctrl.vnc);
        assert!(Scheme::lazyc().ctrl.lazy_correction);
        assert!(Scheme::lazyc_preread().ctrl.preread);
        assert_eq!(Scheme::one_two_alloc().ratio, NmRatio::one_two());
        assert_eq!(Scheme::lazyc_two_three().ratio, NmRatio::two_three());
    }

    #[test]
    fn geometry_scales_with_ratio() {
        let p = ExperimentParams::quick_test();
        let w = sdpcm_trace::Workload::homogeneous(BenchKind::Wrf);
        let g11 = p.geometry_for(&w, NmRatio::one_one()).unwrap();
        let g12 = p.geometry_for(&w, NmRatio::one_two()).unwrap();
        assert!(g12.total_pages() > g11.total_pages());
        assert!(g11.total_pages() >= w.total_pages());
    }

    #[test]
    fn validate_rejects_degenerate_params() {
        use crate::error::ConfigError;
        assert!(ExperimentParams::quick_test().validate().is_ok());
        let p = ExperimentParams {
            refs_per_core: 0,
            ..ExperimentParams::quick_test()
        };
        assert_eq!(
            p.validate(),
            Err(ConfigError::ZeroField {
                field: "refs_per_core"
            })
        );
        let p = ExperimentParams {
            write_queue_cap: 0,
            ..ExperimentParams::quick_test()
        };
        assert!(p.validate().is_err());
        let p = ExperimentParams {
            dimm_age: Some(1.2),
            ..ExperimentParams::quick_test()
        };
        assert_eq!(p.validate(), Err(ConfigError::AgeOutOfRange { value: 1.2 }));
    }

    #[test]
    fn ratio_name_formatting() {
        assert_eq!(
            Scheme::baseline_with_ratio(NmRatio::three_four()).name,
            "VnC+(3:4)"
        );
    }
}
