//! Typed errors for the full-system simulators.
//!
//! The simulators never panic on the steady-state path: configuration
//! problems, OS-mapping failures, controller faults, and scheduling
//! livelocks all surface as an [`SdpcmError`], carrying enough state (a
//! [`CtrlSnapshot`] where relevant) to diagnose a failed multi-hour run
//! from its error message alone.

use sdpcm_memctrl::{CtrlError, CtrlSnapshot};
use sdpcm_wd::chaos::ChaosError;
use sdpcm_wd::WdError;

/// A rejected [`crate::ExperimentParams`] / workload combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A count or capacity that must be positive was zero.
    ZeroField {
        /// The offending field.
        field: &'static str,
    },
    /// A DIMM-age fraction outside `[0, 1]`.
    AgeOutOfRange {
        /// The rejected fraction.
        value: f64,
    },
    /// The workload needs more rows per bank than the 8 GB device has.
    WorkloadTooLarge {
        /// Rows per bank the workload would need.
        rows_per_bank: u64,
        /// Rows per bank the device offers.
        limit: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroField { field } => {
                write!(f, "experiment parameter {field} must be > 0")
            }
            ConfigError::AgeOutOfRange { value } => {
                write!(f, "dimm_age {value} outside [0, 1]")
            }
            ConfigError::WorkloadTooLarge {
                rows_per_bank,
                limit,
            } => write!(
                f,
                "workload needs {rows_per_bank} rows per bank, device has {limit}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// An OS-mapping failure: the working set could not be placed, or a
/// reference escaped the mapped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// A core referenced a virtual page its page table does not map.
    WorkingSetUnmapped {
        /// The faulting core.
        core: usize,
        /// The unmapped virtual page.
        vpage: u64,
    },
    /// The allocator could not place a core's working set.
    DeviceFull {
        /// The core whose allocation failed.
        core: usize,
        /// Pages the core asked for.
        pages: u64,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::WorkingSetUnmapped { core, vpage } => {
                write!(f, "core {core} referenced unmapped virtual page {vpage}")
            }
            MapError::DeviceFull { core, pages } => {
                write!(f, "no room to map {pages} pages for core {core}")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// A runtime simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The event loop stopped making progress: cores are unfinished but
    /// the iteration guard tripped. The queue state shows where the
    /// requests piled up.
    Livelock {
        /// Simulated cycle at detection.
        cycle: u64,
        /// References completed across all cores.
        refs_done: u64,
        /// Controller queue state at detection.
        snapshot: CtrlSnapshot,
    },
    /// A replay build was handed a trace captured for different inputs
    /// (workload, seed or quota); replaying it would silently simulate
    /// the wrong experiment.
    TraceMismatch {
        /// What the simulator expected, `workload/seed/refs_per_core`.
        expect: String,
        /// What the trace was captured for.
        got: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Livelock {
                cycle,
                refs_done,
                snapshot,
            } => write!(
                f,
                "simulation livelock at cycle {cycle} after {refs_done} refs [{snapshot}]"
            ),
            SimError::TraceMismatch { expect, got } => {
                write!(f, "trace mismatch: expected {expect}, capture is {got}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Umbrella error for everything the simulators can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SdpcmError {
    /// Rejected experiment configuration.
    Config(ConfigError),
    /// OS-mapping failure.
    Map(MapError),
    /// Memory-controller error (including internal anomalies).
    Ctrl(CtrlError),
    /// Runtime simulation failure.
    Sim(SimError),
    /// Rejected chaos scenario.
    Chaos(ChaosError),
    /// Rejected disturbance-injector configuration.
    Wd(WdError),
}

impl std::fmt::Display for SdpcmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdpcmError::Config(e) => write!(f, "{e}"),
            SdpcmError::Map(e) => write!(f, "{e}"),
            SdpcmError::Ctrl(e) => write!(f, "{e}"),
            SdpcmError::Sim(e) => write!(f, "{e}"),
            SdpcmError::Chaos(e) => write!(f, "{e}"),
            SdpcmError::Wd(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SdpcmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdpcmError::Config(e) => Some(e),
            SdpcmError::Map(e) => Some(e),
            SdpcmError::Ctrl(e) => Some(e),
            SdpcmError::Sim(e) => Some(e),
            SdpcmError::Chaos(e) => Some(e),
            SdpcmError::Wd(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SdpcmError {
    fn from(e: ConfigError) -> SdpcmError {
        SdpcmError::Config(e)
    }
}

impl From<MapError> for SdpcmError {
    fn from(e: MapError) -> SdpcmError {
        SdpcmError::Map(e)
    }
}

impl From<CtrlError> for SdpcmError {
    fn from(e: CtrlError) -> SdpcmError {
        SdpcmError::Ctrl(e)
    }
}

impl From<SimError> for SdpcmError {
    fn from(e: SimError) -> SdpcmError {
        SdpcmError::Sim(e)
    }
}

impl From<ChaosError> for SdpcmError {
    fn from(e: ChaosError) -> SdpcmError {
        SdpcmError::Chaos(e)
    }
}

impl From<WdError> for SdpcmError {
    fn from(e: WdError) -> SdpcmError {
        SdpcmError::Wd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_diagnostic() {
        let e = SdpcmError::from(SimError::Livelock {
            cycle: 42,
            refs_done: 7,
            snapshot: CtrlSnapshot::default(),
        });
        let msg = e.to_string();
        assert!(msg.contains("livelock"));
        assert!(msg.contains("cycle 42"));
        assert!(msg.contains("7 refs"));
    }

    #[test]
    fn conversions_tag_the_source() {
        let e: SdpcmError = MapError::WorkingSetUnmapped { core: 3, vpage: 9 }.into();
        assert!(matches!(e, SdpcmError::Map(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: SdpcmError = ConfigError::ZeroField {
            field: "refs_per_core",
        }
        .into();
        assert!(e.to_string().contains("refs_per_core"));
    }
}
