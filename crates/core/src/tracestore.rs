//! Shared reference-trace cache for the figure sweeps.
//!
//! Every figure is a cross-product of schemes over a handful of
//! workloads, and the post-cache reference stream of a cell depends
//! only on `(workload, seed, refs_per_core)` — never on the scheme (see
//! [`sdpcm_trace::reftrace`]). A [`TraceStore`] therefore captures each
//! distinct stream once and hands the same `Arc<RefTrace>` to every
//! cell that wants it, at any sweep worker count:
//!
//! * **First-toucher capture.** Each key maps to an
//!   `Arc<OnceLock<…>>`; the map mutex is held only to fetch the slot,
//!   then the first worker to reach `get_or_init` captures while any
//!   other worker wanting the same workload blocks on the lock — never
//!   capturing twice, never blocking workers on *other* workloads.
//! * **Optional on-disk cache.** When constructed [`TraceStore::from_env`]
//!   honours the `SDPCM_TRACE_DIR` environment variable: traces are
//!   stored as `<content-key>.sdpt` (the key hashes workload, seed,
//!   quota and the wire schema version), written atomically via a
//!   temporary file + rename. Corrupted, truncated or stale files are
//!   detected by the wire layer's digest/schema checks and silently
//!   regenerated.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use sdpcm_engine::hash::FxHashMap;
use sdpcm_trace::{RefTrace, TraceMeta, Workload};

/// Environment variable naming the on-disk trace cache directory.
pub const TRACE_DIR_ENV: &str = "SDPCM_TRACE_DIR";

/// A process-wide cache of captured [`RefTrace`]s, shared across sweep
/// workers.
#[derive(Debug, Default)]
pub struct TraceStore {
    dir: Option<PathBuf>,
    slots: Mutex<FxHashMap<u64, Arc<OnceLock<Arc<RefTrace>>>>>,
}

impl TraceStore {
    /// An in-memory store (no disk cache).
    #[must_use]
    pub fn in_memory() -> TraceStore {
        TraceStore::default()
    }

    /// A store backed by an on-disk cache directory.
    #[must_use]
    pub fn with_dir(dir: PathBuf) -> TraceStore {
        TraceStore {
            dir: Some(dir),
            slots: Mutex::default(),
        }
    }

    /// A store honouring the `SDPCM_TRACE_DIR` environment variable
    /// (in-memory when unset or empty).
    #[must_use]
    pub fn from_env() -> TraceStore {
        match std::env::var(TRACE_DIR_ENV) {
            Ok(dir) if !dir.trim().is_empty() => TraceStore::with_dir(PathBuf::from(dir)),
            _ => TraceStore::in_memory(),
        }
    }

    /// The trace for `(workload, seed, refs_per_core)`: loaded from the
    /// disk cache when available and valid, captured (once) otherwise.
    /// Concurrent callers for the same key share one capture; callers
    /// for different keys never block each other.
    #[must_use]
    pub fn get(&self, workload: &Workload, seed: u64, refs_per_core: u64) -> Arc<RefTrace> {
        let meta = TraceMeta {
            workload: workload.name().to_owned(),
            seed,
            refs_per_core,
        };
        let key = meta.content_key();
        let slot = {
            let mut slots = self.slots.lock().expect("trace store poisoned");
            slots.entry(key).or_default().clone()
        };
        slot.get_or_init(|| self.load_or_capture(workload, &meta, key))
            .clone()
    }

    fn load_or_capture(&self, workload: &Workload, meta: &TraceMeta, key: u64) -> Arc<RefTrace> {
        if let Some(trace) = self.try_load(meta, key) {
            return Arc::new(trace);
        }
        let trace = RefTrace::capture(workload, meta.seed, meta.refs_per_core);
        self.try_store(&trace, key);
        Arc::new(trace)
    }

    fn cache_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.sdpt")))
    }

    /// Loads and validates a cached trace; any failure (missing file,
    /// digest mismatch, wrong schema, or a content-hash collision where
    /// the stored meta differs) means "capture instead".
    fn try_load(&self, meta: &TraceMeta, key: u64) -> Option<RefTrace> {
        let path = self.cache_path(key)?;
        let bytes = std::fs::read(&path).ok()?;
        let trace = RefTrace::from_bytes(&bytes).ok()?;
        (trace.meta == *meta).then_some(trace)
    }

    /// Best-effort atomic write: the cache is an accelerator, so IO
    /// errors are swallowed (the next run simply recaptures).
    fn try_store(&self, trace: &RefTrace, key: u64) {
        let Some(path) = self.cache_path(key) else {
            return;
        };
        let Some(dir) = path.parent() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!("{key:016x}.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, trace.to_bytes()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpcm_trace::BenchKind;

    fn tiny_workload() -> Workload {
        Workload::homogeneous(BenchKind::Wrf)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdpcm-tracestore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn same_key_shares_one_capture() {
        let store = TraceStore::in_memory();
        let w = tiny_workload();
        let a = store.get(&w, 1, 50);
        let b = store.get(&w, 1, 50);
        assert!(Arc::ptr_eq(&a, &b), "second get must reuse the capture");
        let c = store.get(&w, 2, 50);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different trace");
    }

    #[test]
    fn concurrent_getters_agree() {
        let store = TraceStore::in_memory();
        let w = tiny_workload();
        let traces: Vec<Arc<RefTrace>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(|| store.get(&w, 3, 40))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t));
        }
    }

    #[test]
    fn disk_cache_round_trips() {
        let dir = tmp_dir("roundtrip");
        let w = tiny_workload();
        let first = TraceStore::with_dir(dir.clone()).get(&w, 7, 60);
        // A fresh store must load the same bytes from disk.
        let second = TraceStore::with_dir(dir.clone()).get(&w, 7, 60);
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(*first, *second);
        assert_eq!(first.to_bytes(), second.to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_entry_is_regenerated() {
        let dir = tmp_dir("corrupt");
        let w = tiny_workload();
        let reference = TraceStore::in_memory().get(&w, 9, 60);
        let key = reference.meta.content_key();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{key:016x}.sdpt"));

        // Corrupted payload: digest check rejects it, capture replaces it.
        let mut bytes = reference.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        std::fs::write(&path, &bytes).unwrap();
        let got = TraceStore::with_dir(dir.clone()).get(&w, 9, 60);
        assert_eq!(*got, *reference);
        assert_eq!(std::fs::read(&path).unwrap(), reference.to_bytes());

        // Stale schema version: rejected and regenerated too.
        let mut stale = reference.to_bytes();
        stale[4] ^= 0xff; // schema u32 follows the 4-byte magic
        let tail = stale.len() - 8;
        let digest = sdpcm_trace::wire::fnv1a(&stale[..tail]);
        stale[tail..].copy_from_slice(&digest.to_le_bytes());
        std::fs::write(&path, &stale).unwrap();
        let got = TraceStore::with_dir(dir.clone()).get(&w, 9, 60);
        assert_eq!(*got, *reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
