//! PCM energy accounting.
//!
//! The paper evaluates performance, capacity and lifetime; energy is the
//! fourth axis any adopter of a PCM controller asks about, and VnC's
//! extra array reads and correction RESETs consume real energy. This
//! module provides per-pulse constants (from the PCM architecture
//! literature the paper builds on [Lee et al., ISCA'09]) and an
//! [`EnergyMeter`] the device store charges per operation.
//!
//! The interesting output is *relative*: how much energy a mitigation
//! scheme adds over the WD-free design (see `examples/ablations.rs`).

/// Per-cell pulse energies in picojoules [ISCA'09, Table 4 ballpark].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// One RESET pulse (melt + quench).
    pub reset_pj: f64,
    /// One SET pulse (longer, lower current).
    pub set_pj: f64,
    /// Array read, per bit sensed.
    pub read_pj_per_bit: f64,
}

impl EnergyParams {
    /// Literature constants: RESET 19.2 pJ, SET 13.5 pJ, read 2.47 pJ/bit.
    #[must_use]
    pub fn isca09() -> EnergyParams {
        EnergyParams {
            reset_pj: 19.2,
            set_pj: 13.5,
            read_pj_per_bit: 2.47,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::isca09()
    }
}

/// Accumulated energy, split by purpose so scheme overheads are visible.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::energy::{EnergyMeter, EnergyParams};
///
/// let mut e = EnergyMeter::new(EnergyParams::isca09());
/// e.charge_write(10, 5, false); // 10 SETs + 5 RESETs, demand write
/// e.charge_read(512, true);     // one verification line read
/// assert!(e.total_pj() > 0.0);
/// assert!(e.overhead_pj() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyMeter {
    params: EnergyParams,
    demand_pj: f64,
    overhead_pj: f64,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    #[must_use]
    pub fn new(params: EnergyParams) -> EnergyMeter {
        EnergyMeter {
            params,
            demand_pj: 0.0,
            overhead_pj: 0.0,
        }
    }

    /// Charges a programming operation; `overhead` marks VnC-induced
    /// work (corrections, WL fix-ups) as opposed to demand writes.
    pub fn charge_write(&mut self, sets: u32, resets: u32, overhead: bool) {
        let pj = f64::from(sets) * self.params.set_pj + f64::from(resets) * self.params.reset_pj;
        if overhead {
            self.overhead_pj += pj;
        } else {
            self.demand_pj += pj;
        }
    }

    /// Charges an array read of `bits` cells; `overhead` marks
    /// verification reads (pre/post/cascade) as opposed to demand reads.
    pub fn charge_read(&mut self, bits: u32, overhead: bool) {
        let pj = f64::from(bits) * self.params.read_pj_per_bit;
        if overhead {
            self.overhead_pj += pj;
        } else {
            self.demand_pj += pj;
        }
    }

    /// Energy of demand traffic (reads + writes the program asked for).
    #[must_use]
    pub fn demand_pj(&self) -> f64 {
        self.demand_pj
    }

    /// Energy added by the mitigation machinery.
    #[must_use]
    pub fn overhead_pj(&self) -> f64 {
        self.overhead_pj
    }

    /// Total energy.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.demand_pj + self.overhead_pj
    }

    /// Overhead as a fraction of demand energy (0 when nothing demanded).
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        if self.demand_pj == 0.0 {
            0.0
        } else {
            self.overhead_pj / self.demand_pj
        }
    }

    /// Folds another meter into this one.
    ///
    /// # Panics
    ///
    /// Panics if the meters use different parameters.
    pub fn merge(&mut self, other: &EnergyMeter) {
        assert!(self.params == other.params, "mismatched energy params");
        self.demand_pj += other.demand_pj;
        self.overhead_pj += other.overhead_pj;
    }
}

impl Default for EnergyMeter {
    fn default() -> Self {
        EnergyMeter::new(EnergyParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_energy_splits_by_pulse_kind() {
        let mut e = EnergyMeter::new(EnergyParams {
            reset_pj: 10.0,
            set_pj: 5.0,
            read_pj_per_bit: 1.0,
        });
        e.charge_write(2, 3, false);
        assert!((e.demand_pj() - (2.0 * 5.0 + 3.0 * 10.0)).abs() < 1e-12);
        assert_eq!(e.overhead_pj(), 0.0);
    }

    #[test]
    fn overhead_classified_separately() {
        let mut e = EnergyMeter::default();
        e.charge_write(0, 4, true); // correction
        e.charge_read(512, true); // verification read
        e.charge_read(512, false); // demand read
        assert!(e.overhead_pj() > 0.0);
        assert!(e.demand_pj() > 0.0);
        assert!((e.total_pj() - e.demand_pj() - e.overhead_pj()).abs() < 1e-9);
        assert!(e.overhead_fraction() > 0.0);
    }

    #[test]
    fn empty_meter_has_no_overhead_fraction() {
        let e = EnergyMeter::default();
        assert_eq!(e.overhead_fraction(), 0.0);
        assert_eq!(e.total_pj(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = EnergyMeter::default();
        a.charge_read(100, false);
        let mut b = EnergyMeter::default();
        b.charge_read(100, true);
        a.merge(&b);
        assert!(a.demand_pj() > 0.0 && a.overhead_pj() > 0.0);
    }

    #[test]
    fn reset_costs_more_than_set() {
        let p = EnergyParams::isca09();
        assert!(p.reset_pj > p.set_pj, "RESET melts; SET only crystallizes");
    }
}
