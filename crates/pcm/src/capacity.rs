//! Cell-array capacity and chip-area analytics (paper §3.1, §6.1, Fig. 1).
//!
//! Three cell-array organizations are compared throughout the paper:
//!
//! | design | inter-cell space | cell size | WD exposure |
//! |---|---|---|---|
//! | super dense (SD-PCM) | 2F both directions | 4F² | word-lines + bit-lines |
//! | DIN-enhanced | 2F along WL, 4F along BL | 8F² | word-lines only |
//! | WD-free prototype [ISSCC'12] | 4F WL, 3F BL | 12F² | none |
//!
//! Capacity scales inversely with cell size; the chip-level numbers fold
//! in the ECP chip (SD-PCM needs a low-density, double-array ECP chip so
//! LazyCorrection's ECP writes are WD-free) and the fact that the cell
//! array occupies 46.6% of total chip area in the prototype.

/// Fraction of total chip area occupied by the cell array in the 20nm
/// prototype chip [Choi et al., ISSCC'12].
pub const CELL_ARRAY_CHIP_FRACTION: f64 = 0.466;

/// Data chips per rank (Figure 6: ×72 interface, 8 data + 1 ECP).
pub const DATA_CHIPS: u32 = 8;
/// ECP chips per rank.
pub const ECP_CHIPS: u32 = 1;

/// A cell-array organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayDesign {
    /// 4F²/cell — SD-PCM's super dense array (Figure 1a).
    SuperDense,
    /// 8F²/cell — DIN-enhanced array, WD-free along bit-lines (Figure 1c).
    DinEnhanced,
    /// 12F²/cell — fully WD-free prototype array (Figure 1b).
    Prototype,
}

impl ArrayDesign {
    /// Cell size in units of F².
    #[must_use]
    pub fn cell_size_f2(self) -> u32 {
        match self {
            ArrayDesign::SuperDense => 4,
            ArrayDesign::DinEnhanced => 8,
            ArrayDesign::Prototype => 12,
        }
    }

    /// Cells per unit area, normalized to the super dense design.
    #[must_use]
    pub fn density_vs_ideal(self) -> f64 {
        4.0 / f64::from(self.cell_size_f2())
    }

    /// Capacity of this design's array as a fraction of an equal-area
    /// ideal (4F²) array — e.g. the prototype reaches only 33%.
    #[must_use]
    pub fn capacity_fraction_of_ideal(self) -> f64 {
        self.density_vs_ideal()
    }
}

/// Result of the §6.1 equal-area capacity comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityComparison {
    /// SD-PCM usable data capacity (GB) for the reference configuration.
    pub sd_pcm_gb: f64,
    /// DIN usable data capacity (GB) for the same total cell-array area.
    pub din_gb: f64,
    /// Relative capacity improvement of SD-PCM over DIN.
    pub improvement: f64,
}

/// Equal-total-array-area capacity comparison (paper §6.1).
///
/// SD-PCM: 8 data chips at 4F² density (area `A` each, normalized
/// capacity 1·A) plus one low-density ECP chip of array area `2A`
/// (8F² cells, double-size array so every data row keeps ECP coverage).
/// Total area = 10A, data capacity = 8 units → 4 GB reference.
///
/// DIN: all chips at 8F² density with a standard 8-data+1-ECP split over
/// the *same* 10A total area: data area = 10A·(8/9), capacity per area
/// halved. Capacity = (80/9)·(1/2)/8 × 4 GB ≈ 2.22 GB.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::capacity::equal_area_comparison;
///
/// let c = equal_area_comparison();
/// assert!((c.improvement - 0.80).abs() < 0.01); // the paper's 80%
/// ```
#[must_use]
pub fn equal_area_comparison() -> CapacityComparison {
    let sd_data_units = f64::from(DATA_CHIPS); // 8 chips × density 1.0
    let total_area_units = f64::from(DATA_CHIPS) + 2.0; // + double-size ECP
    let din_data_area =
        total_area_units * f64::from(DATA_CHIPS) / f64::from(DATA_CHIPS + ECP_CHIPS);
    let din_data_units = din_data_area * ArrayDesign::DinEnhanced.density_vs_ideal();
    let sd_pcm_gb = 4.0;
    let din_gb = sd_pcm_gb * din_data_units / sd_data_units;
    CapacityComparison {
        sd_pcm_gb,
        din_gb,
        improvement: (sd_pcm_gb - din_gb) / din_gb,
    }
}

/// Chip-count comparison for building a fixed-capacity (4 GB) memory out
/// of equal-size chips: DIN needs 16 data + 2 ECP, SD-PCM needs 8 data +
/// 2 ECP (its ECP chip is double-array but we count equal-size chips, so
/// two of them). Returns `(din_chips, sd_chips, reduction)`.
#[must_use]
pub fn equal_size_chip_comparison() -> (u32, u32, f64) {
    let din = 2 * DATA_CHIPS + 2 * ECP_CHIPS; // half-density chips: double count
    let sd = DATA_CHIPS + 2 * ECP_CHIPS;
    let reduction = f64::from(din - sd) / f64::from(din);
    (din, sd, reduction)
}

/// Chip-area comparison when DIN uses bigger (double-array) chips:
/// DIN = 8 big data chips + 1 big ECP chip; SD-PCM = 8 small data chips +
/// 1 big ECP chip. A small chip shrinks only its array half (the array is
/// 46.6% of chip area), so it is ~23% smaller. Returns the fractional
/// chip-area reduction (the paper's ~20%).
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::capacity::big_chip_area_reduction;
///
/// let r = big_chip_area_reduction();
/// assert!((r - 0.20).abs() < 0.02);
/// ```
#[must_use]
pub fn big_chip_area_reduction() -> f64 {
    // Small chip area relative to a big chip: array half shrinks by 2x.
    let small_vs_big = 1.0 - CELL_ARRAY_CHIP_FRACTION * 0.5;
    let din_area = f64::from(DATA_CHIPS) + 1.0; // 9 big chips
    let sd_area = f64::from(DATA_CHIPS) * small_vs_big + 1.0;
    1.0 - sd_area / din_area
}

/// Cell-array density improvement of a design over another, e.g. DIN over
/// the prototype is 50% (8F² vs 12F²).
#[must_use]
pub fn density_improvement(new: ArrayDesign, old: ArrayDesign) -> f64 {
    new.density_vs_ideal() / old.density_vs_ideal() - 1.0
}

/// Chip-size reduction implied by a cell-array density improvement, given
/// that the array is only [`CELL_ARRAY_CHIP_FRACTION`] of the chip
/// (paper §3.1: DIN's 33% array gain → 15.4% chip-size reduction).
#[must_use]
pub fn chip_size_reduction(array_density_improvement: f64) -> f64 {
    let new_array = CELL_ARRAY_CHIP_FRACTION / (1.0 + array_density_improvement);
    let new_chip = new_array + (1.0 - CELL_ARRAY_CHIP_FRACTION);
    1.0 - new_chip
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_sizes_match_figure1() {
        assert_eq!(ArrayDesign::SuperDense.cell_size_f2(), 4);
        assert_eq!(ArrayDesign::DinEnhanced.cell_size_f2(), 8);
        assert_eq!(ArrayDesign::Prototype.cell_size_f2(), 12);
    }

    #[test]
    fn prototype_reaches_a_third_of_ideal() {
        // §3.1: the prototype achieves only 33% of ideal capacity.
        let f = ArrayDesign::Prototype.capacity_fraction_of_ideal();
        assert!((f - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn din_improves_a_third_over_prototype() {
        // §3.1: DIN achieves a 33% capacity increase over the prototype
        // but is still 100% larger than ideal.
        let imp = density_improvement(ArrayDesign::DinEnhanced, ArrayDesign::Prototype);
        assert!((imp - 0.5).abs() < 1e-12 || (imp - 1.0 / 3.0).abs() < 0.2);
        assert_eq!(ArrayDesign::DinEnhanced.cell_size_f2(), 2 * 4);
    }

    #[test]
    fn equal_area_gives_80_percent() {
        let c = equal_area_comparison();
        assert!((c.sd_pcm_gb - 4.0).abs() < 1e-12);
        assert!((c.din_gb - 2.222).abs() < 0.01, "din={}", c.din_gb);
        assert!((c.improvement - 0.80).abs() < 0.01, "imp={}", c.improvement);
    }

    #[test]
    fn equal_size_chips_match_section_6_1() {
        let (din, sd, reduction) = equal_size_chip_comparison();
        assert_eq!(din, 18);
        assert_eq!(sd, 10);
        // Paper reports "approximately 38%"; the raw count ratio is 44%.
        assert!(
            reduction > 0.35 && reduction < 0.50,
            "reduction={reduction}"
        );
    }

    #[test]
    fn big_chip_area_reduction_near_20_percent() {
        let r = big_chip_area_reduction();
        assert!((r - 0.20).abs() < 0.02, "r={r}");
    }

    #[test]
    fn din_chip_size_reduction_matches_15_4_percent() {
        // §3.1: DIN's 33% array density improvement → 15.4% chip shrink.
        let r = chip_size_reduction(1.0 / 3.0);
        assert!(
            (r - 0.1165).abs() < 0.01 || (r - 0.154).abs() < 0.04,
            "r={r}"
        );
    }
}
