//! Wear accounting and the lifetime models behind Figures 14, 17 and 18.
//!
//! PCM cells endure a bounded number of programming pulses, so every
//! scheme is judged not only on performance but on how many *extra* cell
//! writes it induces:
//!
//! * **Data chips** (Figure 17) — corrections RESET disturbed cells in
//!   adjacent lines; those pulses are pure overhead on top of the normal
//!   differential-write traffic.
//! * **ECP chip** (Figure 18) — LazyCorrection writes a 10-bit record
//!   (9-bit address + value) per buffered WD error. The paper calibrates
//!   the no-WD ECP chip at 10× the data-chip lifetime (its baseline cell
//!   change rate is low), which [`WearMeter::ecp_lifetime_norm`]
//!   reproduces via `ECP_BASELINE_TRAFFIC_RATIO`.
//! * **DIMM aging** (Figure 14) — as the DIMM ages, hard errors occupy
//!   more ECP entries, leaving fewer for LazyCorrection;
//!   [`HardErrorModel`] produces the per-line hard-error population at a
//!   given lifetime fraction.

use sdpcm_engine::SimRng;

use crate::ecp::BITS_PER_ECP_RECORD;

/// Whether a data-array write is a normal (demand) write or a
/// disturbance-correction write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteClass {
    /// Demand write from the memory controller.
    Normal,
    /// DIN word-line fix-up of the written line itself. Part of the
    /// common baseline (the DIN design pays it too), so it does not
    /// count as SD-PCM-induced degradation in Figure 17.
    WordlineFix,
    /// Correction of disturbed cells in an adjacent line — the extra
    /// wear SD-PCM's bit-line VnC adds.
    Correction,
}

/// Calibration: baseline ECP-chip cell traffic per demand line write —
/// hard-entry value refreshes and spare-region maintenance. Chosen so
/// that, absent WD records, the ECP chip "exhibits 10× longer lifetime
/// than the data chip" (§6.7).
pub const ECP_BASELINE_BITS_PER_WRITE: f64 = 8.0;

/// Wear-levelling dilution of WD records: the low-density ECP chip's
/// double-size array gives each line ~128 ECP-region cells over which
/// the 10-bit records rotate, so one record's per-cell wear is diluted
/// by 128/10.
pub const ECP_RECORD_DILUTION: f64 = 12.8;

/// Accumulated cell-write counts.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::wear::{WearMeter, WriteClass};
///
/// let mut w = WearMeter::default();
/// w.charge_data_bits(100, WriteClass::Normal);
/// w.charge_data_bits(2, WriteClass::Correction);
/// assert!(w.data_lifetime_norm() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WearMeter {
    data_normal: u64,
    data_writes: u64,
    data_wlfix: u64,
    data_correction: u64,
    ecp_records: u64,
}

impl WearMeter {
    /// Charges `bits` programmed cells on the data chips.
    pub fn charge_data_bits(&mut self, bits: u64, class: WriteClass) {
        match class {
            WriteClass::Normal => {
                self.data_normal += bits;
                self.data_writes += 1;
            }
            WriteClass::WordlineFix => self.data_wlfix += bits,
            WriteClass::Correction => self.data_correction += bits,
        }
    }

    /// Charges one buffered-WD record written to the ECP chip.
    pub fn charge_ecp_record(&mut self) {
        self.ecp_records += 1;
    }

    /// Cells programmed by normal writes.
    #[must_use]
    pub fn data_bits_normal(&self) -> u64 {
        self.data_normal
    }

    /// Cells programmed by word-line fix-up writes (common baseline).
    #[must_use]
    pub fn data_bits_wlfix(&self) -> u64 {
        self.data_wlfix
    }

    /// Cells programmed by correction writes.
    #[must_use]
    pub fn data_bits_correction(&self) -> u64 {
        self.data_correction
    }

    /// WD records written to the ECP chip.
    #[must_use]
    pub fn ecp_records(&self) -> u64 {
        self.ecp_records
    }

    /// Bits written to the ECP chip by WD records (10 bits each).
    #[must_use]
    pub fn ecp_record_bits(&self) -> u64 {
        self.ecp_records * BITS_PER_ECP_RECORD
    }

    /// Normalized data-chip lifetime: the fraction of data-chip write
    /// traffic that would exist without the bit-line WD corrections
    /// (Figure 17). Word-line fix-ups count toward the baseline — the
    /// DIN design pays them too. `1.0` means no degradation.
    #[must_use]
    pub fn data_lifetime_norm(&self) -> f64 {
        let baseline = self.data_normal + self.data_wlfix;
        let total = baseline + self.data_correction;
        if total == 0 {
            1.0
        } else {
            baseline as f64 / total as f64
        }
    }

    /// Normalized ECP-chip lifetime (Figure 18): baseline ECP traffic
    /// ([`ECP_BASELINE_BITS_PER_WRITE`] per demand write) divided by
    /// baseline-plus-record traffic, with records diluted by the
    /// wear-levelled ECP region ([`ECP_RECORD_DILUTION`]). `1.0` means no
    /// degradation. See `EXPERIMENTS.md` for this model's calibration
    /// rationale.
    #[must_use]
    pub fn ecp_lifetime_norm(&self) -> f64 {
        let baseline = self.data_writes as f64 * ECP_BASELINE_BITS_PER_WRITE;
        let wd = self.ecp_record_bits() as f64 / ECP_RECORD_DILUTION;
        if baseline + wd == 0.0 {
            1.0
        } else {
            baseline / (baseline + wd)
        }
    }

    /// Folds another meter into this one.
    pub fn merge(&mut self, other: &WearMeter) {
        self.data_normal += other.data_normal;
        self.data_writes += other.data_writes;
        self.data_wlfix += other.data_wlfix;
        self.data_correction += other.data_correction;
        self.ecp_records += other.ecp_records;
    }
}

/// Hard-error population as the DIMM ages (drives Figure 14).
///
/// The paper's ECP chip uses ECP-6 per line; as cells reach their
/// endurance limit, hard errors appear and permanently consume ECP
/// entries, shrinking the budget available to LazyCorrection. We model the
/// per-line hard-error count as a Poisson draw whose mean grows
/// superlinearly with the consumed-lifetime fraction — wear-leveled PCM
/// shows a sharp end-of-life onset — calibrated so that at 100% lifetime
/// the *mean* line has nearly exhausted its ECP-6 entries while the
/// overall DIMM is still functional (matching the ~0.2% performance
/// degradation in Figure 14).
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::wear::HardErrorModel;
/// use sdpcm_engine::SimRng;
///
/// let model = HardErrorModel::default();
/// let mut rng = SimRng::from_seed(1);
/// assert_eq!(model.sample_line_errors(0.0, &mut rng), 0);
/// let end_of_life = model.mean_errors(1.0);
/// assert!(end_of_life > model.mean_errors(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardErrorModel {
    /// Mean hard errors per line at 100% consumed lifetime.
    pub mean_at_eol: f64,
    /// Onset sharpness (exponent of the lifetime fraction).
    pub onset_exponent: f64,
}

impl HardErrorModel {
    /// Default calibration: mean 2.0 stuck cells per line at end of life
    /// (leaving ECP-6 with 4 spare entries on the average line, per the
    /// paper's §6.4 example of "two hard errors"), with a cubic onset.
    #[must_use]
    pub fn new() -> HardErrorModel {
        HardErrorModel {
            mean_at_eol: 2.0,
            onset_exponent: 3.0,
        }
    }

    /// Mean hard errors per line at `lifetime_fraction ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    #[must_use]
    pub fn mean_errors(&self, lifetime_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&lifetime_fraction),
            "lifetime fraction must be within [0,1]"
        );
        self.mean_at_eol * lifetime_fraction.powf(self.onset_exponent)
    }

    /// Samples the number of stuck cells for one line at the given age.
    #[must_use]
    pub fn sample_line_errors(&self, lifetime_fraction: f64, rng: &mut SimRng) -> u64 {
        rng.poisson(self.mean_errors(lifetime_fraction))
    }
}

impl Default for HardErrorModel {
    fn default() -> Self {
        HardErrorModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_norm_no_overhead_is_one() {
        let mut w = WearMeter::default();
        w.charge_data_bits(1000, WriteClass::Normal);
        assert_eq!(w.data_lifetime_norm(), 1.0);
        assert_eq!(w.ecp_lifetime_norm(), 1.0);
    }

    #[test]
    fn empty_meter_is_undegraded() {
        let w = WearMeter::default();
        assert_eq!(w.data_lifetime_norm(), 1.0);
        assert_eq!(w.ecp_lifetime_norm(), 1.0);
    }

    #[test]
    fn correction_bits_degrade_data_lifetime() {
        let mut w = WearMeter::default();
        w.charge_data_bits(9996, WriteClass::Normal);
        w.charge_data_bits(4, WriteClass::Correction);
        let norm = w.data_lifetime_norm();
        assert!((norm - 0.9996).abs() < 1e-9, "norm={norm}");
    }

    #[test]
    fn ecp_records_degrade_ecp_lifetime() {
        let mut w = WearMeter::default();
        for _ in 0..100 {
            w.charge_data_bits(100, WriteClass::Normal);
        }
        for _ in 0..10 {
            w.charge_ecp_record();
        }
        assert_eq!(w.ecp_record_bits(), 100);
        // baseline = 100 writes × 8 = 800; wd = 100/12.8 = 7.8125.
        let expect = 800.0 / (800.0 + 100.0 / ECP_RECORD_DILUTION);
        assert!((w.ecp_lifetime_norm() - expect).abs() < 1e-9);
        assert!(w.ecp_lifetime_norm() < 1.0);
    }

    #[test]
    fn merge_sums_components() {
        let mut a = WearMeter::default();
        a.charge_data_bits(10, WriteClass::Normal);
        let mut b = WearMeter::default();
        b.charge_data_bits(5, WriteClass::Correction);
        b.charge_ecp_record();
        a.merge(&b);
        assert_eq!(a.data_bits_normal(), 10);
        assert_eq!(a.data_bits_correction(), 5);
        assert_eq!(a.ecp_records(), 1);
    }

    #[test]
    fn hard_error_model_monotone_in_age() {
        let m = HardErrorModel::default();
        let mut last = -1.0;
        for i in 0..=10 {
            let f = f64::from(i) / 10.0;
            let mean = m.mean_errors(f);
            assert!(mean >= last);
            last = mean;
        }
        assert_eq!(m.mean_errors(0.0), 0.0);
        assert!((m.mean_errors(1.0) - m.mean_at_eol).abs() < 1e-12);
    }

    #[test]
    fn hard_error_sampling_mean_tracks_model() {
        let m = HardErrorModel::default();
        let mut rng = SimRng::from_seed(42);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample_line_errors(0.8, &mut rng)).sum();
        let mean = total as f64 / f64::from(n);
        let expect = m.mean_errors(0.8);
        assert!((mean - expect).abs() < 0.05, "mean={mean} expect={expect}");
    }

    #[test]
    #[should_panic(expected = "within [0,1]")]
    fn bad_lifetime_fraction_panics() {
        let _ = HardErrorModel::default().mean_errors(1.5);
    }
}
