//! Error-Correcting Pointers (ECP) per memory line.
//!
//! ECP [Schechter et al., ISCA'10] pairs each 64 B line with `N` pointer
//! entries; each entry stores a 9-bit cell address plus the 1-bit correct
//! value (10 bits total). The original proposal targets *hard* (stuck-at)
//! errors. SD-PCM's **LazyCorrection** (§4.2) reuses spare entries to
//! buffer *write-disturbance* errors detected in adjacent lines, deferring
//! the expensive correction RESET until the entries run out:
//!
//! * hard errors always have allocation priority;
//! * WD errors fill whatever remains;
//! * a correction (or a normal write to the line) clears the WD entries —
//!   hard-error entries are permanent;
//! * if hard errors consume the entire table, the line falls back to the
//!   basic per-write VnC strategy.
//!
//! Reads of a line are patched with the recorded values, so a line whose
//! ECP entries cover all its outstanding errors is never observed in an
//! erroneous state.

use crate::line::{LineBuf, LINE_BITS};

/// Default number of ECP entries per 64 B line (the paper's ECP-6).
pub const DEFAULT_ECP_ENTRIES: usize = 6;
/// Bits written into the ECP chip per recorded error: 9-bit cell address
/// + 1-bit value (paper §6.7).
pub const BITS_PER_ECP_RECORD: u64 = 10;

/// Why an ECP recording could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcpError {
    /// Every entry is occupied and nothing can be displaced: the caller
    /// must fall back to an immediate correction (or retire the line).
    Exhausted {
        /// Table capacity (N in ECP-N).
        capacity: usize,
        /// Entries pinned by permanent hard errors.
        hard: usize,
    },
    /// The cell index does not address a cell of the line.
    BadCell {
        /// The rejected index.
        bit: u16,
    },
}

impl std::fmt::Display for EcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcpError::Exhausted { capacity, hard } => write!(
                f,
                "ECP table exhausted: all {capacity} entries in use ({hard} hard)"
            ),
            EcpError::BadCell { bit } => {
                write!(f, "cell index {bit} outside the line ({LINE_BITS} cells)")
            }
        }
    }
}

impl std::error::Error for EcpError {}

/// What an ECP entry protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcpKind {
    /// Permanent stuck-at cell failure.
    Hard,
    /// Buffered write-disturbance error (LazyCorrection).
    Disturb,
}

/// One correction pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcpEntry {
    /// The failed/disturbed cell (`0..512`).
    pub bit: u16,
    /// The correct stored value of that cell.
    pub value: bool,
    /// Hard failure or buffered disturbance.
    pub kind: EcpKind,
}

/// The ECP table of one line.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::ecp::{EcpKind, EcpTable};
///
/// let mut t = EcpTable::new(6);
/// assert_eq!(t.free_slots(), 6);
/// assert!(t.try_record(3, false, EcpKind::Disturb));
/// assert_eq!(t.disturb_count(), 1);
/// t.clear_disturb();
/// assert_eq!(t.free_slots(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EcpTable {
    entries: Vec<EcpEntry>,
    capacity: usize,
}

impl EcpTable {
    /// Creates an empty table with room for `capacity` entries (ECP-N).
    #[must_use]
    pub fn new(capacity: usize) -> EcpTable {
        EcpTable {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Total entry slots (N in ECP-N).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unused entry slots.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Number of recorded hard errors.
    #[must_use]
    pub fn hard_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == EcpKind::Hard)
            .count()
    }

    /// Number of buffered WD errors.
    #[must_use]
    pub fn disturb_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == EcpKind::Disturb)
            .count()
    }

    /// All current entries.
    #[must_use]
    pub fn entries(&self) -> &[EcpEntry] {
        &self.entries
    }

    /// Records an error if a slot is free (or if the same cell is already
    /// recorded, in which case the entry is updated in place). Returns
    /// `false` when the table is full — the caller must fall back to an
    /// immediate correction.
    ///
    /// Hard errors may displace a buffered WD entry (hard errors have
    /// allocation priority, §4.2); the displaced disturbance then needs an
    /// immediate correction, which the caller detects via
    /// [`EcpTable::disturb_count`] bookkeeping before/after.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not a valid cell index.
    pub fn try_record(&mut self, bit: u16, value: bool, kind: EcpKind) -> bool {
        assert!((bit as usize) < LINE_BITS, "cell index out of range");
        if let Some(e) = self.entries.iter_mut().find(|e| e.bit == bit) {
            // Same cell already pointed at: refresh value; hard status is
            // sticky (a disturbed reading of a stuck cell is still stuck).
            e.value = value;
            if kind == EcpKind::Hard {
                e.kind = EcpKind::Hard;
            }
            return true;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(EcpEntry { bit, value, kind });
            return true;
        }
        if kind == EcpKind::Hard {
            // Displace one buffered disturbance in favour of the hard error.
            if let Some(pos) = self.entries.iter().position(|e| e.kind == EcpKind::Disturb) {
                self.entries[pos] = EcpEntry { bit, value, kind };
                return true;
            }
        }
        false
    }

    /// [`EcpTable::try_record`] with a typed error instead of a boolean
    /// (and a `Result` for the bad-cell case rather than a panic): the
    /// memory controller's degradation ladder branches on the reason.
    pub fn record(&mut self, bit: u16, value: bool, kind: EcpKind) -> Result<(), EcpError> {
        if (bit as usize) >= LINE_BITS {
            return Err(EcpError::BadCell { bit });
        }
        if self.try_record(bit, value, kind) {
            Ok(())
        } else {
            Err(EcpError::Exhausted {
                capacity: self.capacity,
                hard: self.hard_count(),
            })
        }
    }

    /// Removes all buffered WD entries (after a correction write or a
    /// normal write to the line) and returns how many were dropped.
    pub fn clear_disturb(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.kind == EcpKind::Hard);
        before - self.entries.len()
    }

    /// The cells currently buffered as disturbed, with their correct
    /// values (the work list for a correction write).
    #[must_use]
    pub fn disturbed_cells(&self) -> Vec<(u16, bool)> {
        self.entries
            .iter()
            .filter(|e| e.kind == EcpKind::Disturb)
            .map(|e| (e.bit, e.value))
            .collect()
    }

    /// Patches raw array data with every recorded correct value — the
    /// read-path fixup. Hard-error cells and buffered-disturbance cells
    /// both read back correctly.
    #[must_use]
    pub fn patch(&self, raw: &LineBuf) -> LineBuf {
        let mut out = *raw;
        for e in &self.entries {
            out.set_bit(e.bit as usize, e.value);
        }
        out
    }

    /// Whether the given cell is recorded as a hard error.
    #[must_use]
    pub fn is_hard(&self, bit: u16) -> bool {
        self.entries
            .iter()
            .any(|e| e.bit == bit && e.kind == EcpKind::Hard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_until_full() {
        let mut t = EcpTable::new(2);
        assert!(t.try_record(0, false, EcpKind::Disturb));
        assert!(t.try_record(1, false, EcpKind::Disturb));
        assert!(!t.try_record(2, false, EcpKind::Disturb));
        assert_eq!(t.free_slots(), 0);
    }

    #[test]
    fn hard_displaces_disturb() {
        let mut t = EcpTable::new(1);
        assert!(t.try_record(5, false, EcpKind::Disturb));
        assert!(t.try_record(9, true, EcpKind::Hard));
        assert_eq!(t.hard_count(), 1);
        assert_eq!(t.disturb_count(), 0);
        // A second hard error finds no WD victim and fails.
        assert!(!t.try_record(10, false, EcpKind::Hard));
    }

    #[test]
    fn duplicate_cell_updates_in_place() {
        let mut t = EcpTable::new(1);
        assert!(t.try_record(7, false, EcpKind::Disturb));
        assert!(t.try_record(7, true, EcpKind::Disturb));
        assert_eq!(t.entries().len(), 1);
        assert!(t.entries()[0].value);
        // Upgrading to hard is sticky.
        assert!(t.try_record(7, false, EcpKind::Hard));
        assert!(t.is_hard(7));
        assert!(t.try_record(7, true, EcpKind::Disturb));
        assert!(t.is_hard(7), "hard status must not be downgraded");
    }

    #[test]
    fn clear_disturb_keeps_hard() {
        let mut t = EcpTable::new(4);
        t.try_record(1, false, EcpKind::Hard);
        t.try_record(2, false, EcpKind::Disturb);
        t.try_record(3, false, EcpKind::Disturb);
        assert_eq!(t.clear_disturb(), 2);
        assert_eq!(t.hard_count(), 1);
        assert_eq!(t.free_slots(), 3);
    }

    #[test]
    fn patch_fixes_reads() {
        let mut t = EcpTable::new(6);
        let mut raw = LineBuf::zeroed();
        raw.set_bit(100, true); // disturbed: should be 0
        t.try_record(100, false, EcpKind::Disturb);
        t.try_record(200, true, EcpKind::Hard); // stuck at 0, should be 1
        let fixed = t.patch(&raw);
        assert!(!fixed.bit(100));
        assert!(fixed.bit(200));
    }

    #[test]
    fn disturbed_cells_worklist() {
        let mut t = EcpTable::new(6);
        t.try_record(1, false, EcpKind::Hard);
        t.try_record(2, false, EcpKind::Disturb);
        assert_eq!(t.disturbed_cells(), vec![(2, false)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_index_panics() {
        let mut t = EcpTable::new(1);
        t.try_record(512, false, EcpKind::Disturb);
    }

    #[test]
    fn record_reports_typed_errors() {
        let mut t = EcpTable::new(1);
        assert_eq!(
            t.record(512, false, EcpKind::Disturb),
            Err(EcpError::BadCell { bit: 512 })
        );
        assert_eq!(t.record(3, false, EcpKind::Hard), Ok(()));
        assert_eq!(
            t.record(4, false, EcpKind::Disturb),
            Err(EcpError::Exhausted {
                capacity: 1,
                hard: 1
            })
        );
        assert!(t
            .record(4, false, EcpKind::Disturb)
            .unwrap_err()
            .to_string()
            .contains("exhausted"));
    }
}
