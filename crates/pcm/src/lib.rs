#![warn(missing_docs)]

//! PCM device model for the SD-PCM reproduction.
//!
//! Models the memory organization of the paper's Figure 6 and Table 2:
//! one channel, two ranks, eight banks per rank; each bank row stores one
//! 4 KB logical page spread across eight data chips plus one ECP chip;
//! memory lines are 64 B (512 SLC cells).
//!
//! The crate provides:
//!
//! * [`geometry`] — address math: pages ↔ (bank, row), line addressing,
//!   strip indices, bit-line adjacency (rows `r±1` of the same bank, i.e.
//!   physical pages 16 frames apart).
//! * [`mod@line`] — 64-byte line buffers and differential-write masks
//!   (SET/RESET per cell), including the 128-bit parallel write-driver
//!   wave accounting.
//! * [`ecp`] — Error-Correcting-Pointer tables (ECP-N), shared between
//!   hard errors (priority) and LazyCorrection's buffered WD errors.
//! * [`store`] — a sparse device store: only touched rows are
//!   materialized, so the full 8 GB address space costs megabytes.
//! * [`timing`] — SET/RESET/read latencies and differential write latency.
//! * [`wear`] — cell-write accounting and the hard-error population model
//!   used for the lifetime experiments (Figures 14, 17, 18).
//! * [`capacity`] — the cell-size / array-capacity / chip-area analytics
//!   of §6.1 (4F² vs 8F² vs 12F²).

pub mod capacity;
pub mod ecp;
pub mod energy;
pub mod geometry;
pub mod line;
pub mod store;
pub mod timing;
pub mod wear;

pub use ecp::{EcpEntry, EcpKind, EcpTable};
pub use energy::{EnergyMeter, EnergyParams};
pub use geometry::{BankId, LineAddr, MemGeometry, PageId, RowId};
pub use line::{DiffMask, LineBuf, LINE_BITS, LINE_BYTES};
pub use store::{DeviceStore, InitContent, LineState};
pub use timing::PcmTiming;
pub use wear::{HardErrorModel, WearMeter};
