//! Sparse device store: the actual cell contents of the PCM DIMM.
//!
//! Only lines that have been touched by a write, a disturbance, or an
//! ECP/hard-error event are materialized (64 B of data plus the line's
//! ECP table and stuck-cell list), so simulating the full 8 GB address
//! space costs host memory proportional to the set of *written* lines.
//! Untouched lines read as their [`InitContent`] — all-zero for a fresh
//! array, or deterministic pseudorandom data modelling a running system.
//!
//! The store exposes *device-level* primitives — raw reads, applying a
//! differential-write mask, crystallizing a disturbed cell, planting hard
//! errors — and keeps wear accounting. Orchestration (when to verify,
//! what to correct) lives in the memory-controller crate.

use sdpcm_engine::hash::FxHashMap;
use sdpcm_engine::prof::{self, Site};

use crate::ecp::{EcpKind, EcpTable};
use crate::geometry::{LineAddr, MemGeometry, LINES_PER_ROW};
use crate::line::{DiffMask, LineBuf};
use crate::wear::{WearMeter, WriteClass};

/// Materialized state of one 64 B line.
#[derive(Debug, Clone)]
pub struct LineState {
    data: LineBuf,
    ecp: EcpTable,
    stuck: Vec<(u16, bool)>,
}

impl LineState {
    fn new(ecp_entries: usize) -> LineState {
        LineState {
            data: LineBuf::zeroed(),
            ecp: EcpTable::new(ecp_entries),
            stuck: Vec::new(),
        }
    }
}

/// Initial (pre-first-write) content of the array.
///
/// A fresh PCM array is fully amorphous (all zero), but a *running*
/// system's lines hold program data long before the first simulated
/// write reaches them (pages are loaded, zeroed, reused). `Pseudorandom`
/// models that steady state: every untouched line reads as a
/// deterministic hash of its address, so first writes perform realistic
/// mixed SET/RESET differential programming instead of all-SET bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitContent {
    /// Fully amorphous array (all cells `0`).
    Zeroed,
    /// Deterministic per-address pseudorandom content.
    Pseudorandom(u64),
}

/// The sparse cell-array store of the whole DIMM.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::geometry::{BankId, LineAddr, MemGeometry, RowId};
/// use sdpcm_pcm::line::{DiffMask, LineBuf};
/// use sdpcm_pcm::store::DeviceStore;
/// use sdpcm_pcm::wear::WriteClass;
///
/// let mut dev = DeviceStore::new(MemGeometry::small(16), 6);
/// let addr = LineAddr { bank: BankId(0), row: RowId(3), slot: 0 };
/// let mut data = LineBuf::zeroed();
/// data.set_bit(42, true);
/// let diff = DiffMask::between(&dev.raw_line(addr), &data);
/// dev.apply_write(addr, &diff, WriteClass::Normal);
/// assert_eq!(dev.read_line(addr), data);
/// ```
#[derive(Debug)]
pub struct DeviceStore {
    geometry: MemGeometry,
    ecp_entries: usize,
    init: InitContent,
    banks: Vec<BankStore>,
}

/// The materialized lines and wear tally of a single bank.
///
/// Keeping wear accounting per bank (merged on read) lets bank lanes be
/// advanced concurrently without sharing a mutable meter; each lane
/// charges wear in its own bank-local event order, so totals are
/// independent of how lanes were scheduled across host threads.
#[derive(Debug, Default)]
struct BankStore {
    lines: FxHashMap<(u32, u8), LineState>,
    wear: WearMeter,
}

/// Mutable view of one bank of the store.
///
/// Holds everything needed to serve per-line device primitives for
/// addresses within that bank, borrowed disjointly from the other banks
/// so independent bank lanes can operate in parallel. Every method
/// debug-asserts that the address belongs to the viewed bank.
#[derive(Debug)]
pub struct StoreLane<'a> {
    geometry: &'a MemGeometry,
    ecp_entries: usize,
    init: InitContent,
    bank_id: u16,
    bank: &'a mut BankStore,
}

impl DeviceStore {
    /// Creates an all-zero (fully amorphous) store.
    #[must_use]
    pub fn new(geometry: MemGeometry, ecp_entries: usize) -> DeviceStore {
        DeviceStore::with_init(geometry, ecp_entries, InitContent::Zeroed)
    }

    /// Creates a store with the given initial-content policy.
    #[must_use]
    pub fn with_init(geometry: MemGeometry, ecp_entries: usize, init: InitContent) -> DeviceStore {
        DeviceStore {
            geometry,
            ecp_entries,
            init,
            banks: (0..geometry.banks())
                .map(|_| BankStore::default())
                .collect(),
        }
    }

    /// The initial content of an untouched line.
    #[must_use]
    pub fn initial_line(&self, addr: LineAddr) -> LineBuf {
        initial_line_of(self.init, addr)
    }

    /// The geometry this store was built with.
    #[must_use]
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// ECP entries per line (N of ECP-N).
    #[must_use]
    pub fn ecp_entries(&self) -> usize {
        self.ecp_entries
    }

    /// Wear accounting collected so far, aggregated over the per-bank
    /// meters in fixed bank order.
    #[must_use]
    pub fn wear(&self) -> WearMeter {
        let mut total = WearMeter::default();
        for bank in &self.banks {
            total.merge(&bank.wear);
        }
        total
    }

    /// Number of materialized lines (test/diagnostic aid).
    #[must_use]
    pub fn materialized_lines(&self) -> usize {
        self.banks.iter().map(|b| b.lines.len()).sum()
    }

    /// Mutable view of one bank, for the bank-sharded controller lanes.
    ///
    /// # Panics
    /// Panics if `bank` is out of range for the geometry.
    #[must_use]
    pub fn lane_mut(&mut self, bank: u16) -> StoreLane<'_> {
        StoreLane {
            geometry: &self.geometry,
            ecp_entries: self.ecp_entries,
            init: self.init,
            bank_id: bank,
            bank: &mut self.banks[bank as usize],
        }
    }

    /// Disjoint mutable views of every bank at once, in bank order —
    /// the parallel-advance path hands one to each worker.
    #[must_use]
    pub fn lanes_mut(&mut self) -> Vec<StoreLane<'_>> {
        let geometry = &self.geometry;
        let ecp_entries = self.ecp_entries;
        let init = self.init;
        self.banks
            .iter_mut()
            .enumerate()
            .map(|(b, bank)| StoreLane {
                geometry,
                ecp_entries,
                init,
                bank_id: b as u16,
                bank,
            })
            .collect()
    }

    fn line(&self, addr: LineAddr) -> Option<&LineState> {
        self.banks[addr.bank.0 as usize]
            .lines
            .get(&(addr.row.0, addr.slot))
    }

    /// Raw array contents of a line — *without* ECP patching. Untouched
    /// lines read as their initial content.
    #[must_use]
    pub fn raw_line(&self, addr: LineAddr) -> LineBuf {
        let _t = prof::timer(Site::StoreRead);
        self.line(addr)
            .map_or_else(|| self.initial_line(addr), |l| l.data)
    }

    /// Borrowed raw contents of a materialized line. `None` means the
    /// line is untouched and reads as [`DeviceStore::initial_line`] —
    /// hot paths use this to skip the 64-byte copy entirely.
    #[must_use]
    pub fn raw_line_ref(&self, addr: LineAddr) -> Option<&LineBuf> {
        self.line(addr).map(|l| &l.data)
    }

    /// Architectural read: raw contents patched by the line's ECP table.
    /// This is what the memory controller returns to the system.
    ///
    /// Fast paths: an unmaterialized line is its initial content, and a
    /// line with an empty ECP table needs no patching — both skip the
    /// patch loop and its intermediate copy (most reads, since ECP
    /// entries exist only on lines that have absorbed errors).
    #[must_use]
    pub fn read_line(&self, addr: LineAddr) -> LineBuf {
        let _t = prof::timer(Site::StoreRead);
        match self.line(addr) {
            None => self.initial_line(addr),
            Some(l) if l.ecp.entries().is_empty() => l.data,
            Some(l) => l.ecp.patch(&l.data),
        }
    }

    /// Borrowed architectural contents, available when the line is
    /// materialized and needs no ECP patching (the common case). `None`
    /// falls back to the owning [`DeviceStore::read_line`].
    #[must_use]
    pub fn read_line_ref(&self, addr: LineAddr) -> Option<&LineBuf> {
        self.line(addr)
            .filter(|l| l.ecp.entries().is_empty())
            .map(|l| &l.data)
    }

    /// Applies a differential-write mask to the array. Stuck cells retain
    /// their stuck value regardless of the pulse applied. Returns the
    /// post-write raw contents.
    ///
    /// Wear is charged to `class` (normal data write vs correction).
    pub fn apply_write(&mut self, addr: LineAddr, diff: &DiffMask, class: WriteClass) -> LineBuf {
        self.lane_mut(addr.bank.0).apply_write(addr, diff, class)
    }

    /// Crystallizes one cell of a line: the write-disturbance effect
    /// (an idle amorphous cell partially SETs, reading back as `1`).
    /// Returns whether the cell actually changed state — stuck cells are
    /// unaffected, and an already-crystalline cell cannot flip again.
    pub fn inject_disturb(&mut self, addr: LineAddr, bit: u16) -> bool {
        self.lane_mut(addr.bank.0).inject_disturb(addr, bit)
    }

    /// Plants a permanent stuck-at fault and records it in the line's ECP
    /// table (hard errors have allocation priority). Returns `false` if
    /// the ECP table could not absorb it (table full of hard errors) — the
    /// line is then unprotected, as in the paper's end-of-life regime.
    pub fn plant_hard_error(&mut self, addr: LineAddr, bit: u16, stuck_val: bool) -> bool {
        self.lane_mut(addr.bank.0)
            .plant_hard_error(addr, bit, stuck_val)
    }

    /// Like [`DeviceStore::plant_hard_error`], but with the architectural
    /// value supplied by the caller — needed when the raw array currently
    /// holds *known-but-unrecorded* disturbance errors that must not be
    /// mistaken for data.
    pub fn plant_hard_error_with_value(
        &mut self,
        addr: LineAddr,
        bit: u16,
        stuck_val: bool,
        correct: bool,
    ) -> bool {
        self.lane_mut(addr.bank.0)
            .plant_hard_error_with_value(addr, bit, stuck_val, correct)
    }

    /// Refreshes the ECP `value` fields of hard-error entries after a
    /// write so reads patch stuck cells with the newly written data.
    ///
    /// `intended` is the data the write was supposed to store.
    pub fn refresh_hard_values(&mut self, addr: LineAddr, intended: &LineBuf) {
        self.lane_mut(addr.bank.0)
            .refresh_hard_values(addr, intended);
    }

    /// A snapshot of a line's ECP table (empty table for untouched
    /// lines).
    #[must_use]
    pub fn ecp(&self, addr: LineAddr) -> EcpTable {
        self.line(addr)
            .map_or_else(|| EcpTable::new(self.ecp_entries), |l| l.ecp.clone())
    }

    /// Borrowed view of a line's ECP table, `None` for untouched lines
    /// (whose notional table is empty). Lets hot paths inspect entry
    /// counts without cloning the table as [`DeviceStore::ecp`] does.
    #[must_use]
    pub fn ecp_ref(&self, addr: LineAddr) -> Option<&EcpTable> {
        self.line(addr).map(|l| &l.ecp)
    }

    /// Mutable access to a line's ECP table (materializes the line).
    pub fn ecp_mut(&mut self, addr: LineAddr) -> &mut EcpTable {
        let init = self.init;
        let entries = self.ecp_entries;
        &mut materialize_line(&mut self.banks[addr.bank.0 as usize], init, entries, addr).ecp
    }

    /// Number of stuck cells planted on a line.
    #[must_use]
    pub fn hard_error_count(&self, addr: LineAddr) -> usize {
        self.line(addr).map_or(0, |l| l.stuck.len())
    }

    /// Digest of all materialized device state (raw data, ECP tables,
    /// stuck cells). Each line is hashed on its own (FNV-1a over the
    /// line's address and state) and the per-line digests are combined
    /// with a commutative sum, so the value is independent of hash-map
    /// iteration order *without* collecting and sorting the keys on
    /// every call. Two runs of the same seeded simulation must end with
    /// identical digests — the reproducibility tests compare this
    /// instead of dumping 8 GB.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut total: u64 = 0;
        let mut count: u64 = 0;
        for (bank, store) in self.banks.iter().enumerate() {
            for (key, line) in &store.lines {
                let mut h = OFFSET;
                let mut mix = |v: u64| {
                    for byte in v.to_le_bytes() {
                        h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
                    }
                };
                mix(bank as u64);
                mix(u64::from(key.0) << 8 | u64::from(key.1));
                for &w in line.data.words() {
                    mix(w);
                }
                for e in line.ecp.entries() {
                    mix(u64::from(e.bit) << 2
                        | u64::from(e.value) << 1
                        | u64::from(e.kind == EcpKind::Hard));
                }
                for &(bit, val) in &line.stuck {
                    mix(u64::from(bit) << 1 | u64::from(val));
                }
                // Finalize: a second multiply round decorrelates lines so
                // the commutative sum cannot cancel structured pairs.
                total = total.wrapping_add(h.wrapping_mul(PRIME) ^ h.rotate_left(32));
                count += 1;
            }
        }
        total ^ count.wrapping_mul(PRIME)
    }
}

impl<'a> StoreLane<'a> {
    /// The bank this lane views.
    #[must_use]
    pub fn bank_id(&self) -> u16 {
        self.bank_id
    }

    fn line(&self, addr: LineAddr) -> Option<&LineState> {
        debug_assert_eq!(addr.bank.0, self.bank_id, "address outside lane bank");
        self.bank.lines.get(&(addr.row.0, addr.slot))
    }

    fn line_mut(&mut self, addr: LineAddr) -> &mut LineState {
        debug_assert_eq!(addr.bank.0, self.bank_id, "address outside lane bank");
        debug_assert!(addr.row.0 < self.geometry.rows_per_bank());
        debug_assert!((addr.slot as usize) < LINES_PER_ROW);
        materialize_line(self.bank, self.init, self.ecp_entries, addr)
    }

    /// The initial content of an untouched line.
    #[must_use]
    pub fn initial_line(&self, addr: LineAddr) -> LineBuf {
        initial_line_of(self.init, addr)
    }

    /// Raw array contents of a line (see [`DeviceStore::raw_line`]).
    #[must_use]
    pub fn raw_line(&self, addr: LineAddr) -> LineBuf {
        let _t = prof::timer(Site::StoreRead);
        self.line(addr)
            .map_or_else(|| self.initial_line(addr), |l| l.data)
    }

    /// Borrowed raw contents of a materialized line (see
    /// [`DeviceStore::raw_line_ref`]).
    #[must_use]
    pub fn raw_line_ref(&self, addr: LineAddr) -> Option<&LineBuf> {
        self.line(addr).map(|l| &l.data)
    }

    /// Architectural read (see [`DeviceStore::read_line`]).
    #[must_use]
    pub fn read_line(&self, addr: LineAddr) -> LineBuf {
        let _t = prof::timer(Site::StoreRead);
        match self.line(addr) {
            None => self.initial_line(addr),
            Some(l) if l.ecp.entries().is_empty() => l.data,
            Some(l) => l.ecp.patch(&l.data),
        }
    }

    /// Borrowed architectural contents when no ECP patching is needed
    /// (see [`DeviceStore::read_line_ref`]).
    #[must_use]
    pub fn read_line_ref(&self, addr: LineAddr) -> Option<&LineBuf> {
        self.line(addr)
            .filter(|l| l.ecp.entries().is_empty())
            .map(|l| &l.data)
    }

    /// Applies a differential write (see [`DeviceStore::apply_write`]).
    /// Wear is charged to this lane's bank meter.
    pub fn apply_write(&mut self, addr: LineAddr, diff: &DiffMask, class: WriteClass) -> LineBuf {
        let _t = prof::timer(Site::StoreWrite);
        let line = self.line_mut(addr);
        let mut after = diff.apply(&line.data);
        for &(bit, stuck_val) in &line.stuck {
            after.set_bit(bit as usize, stuck_val);
        }
        line.data = after;
        self.bank
            .wear
            .charge_data_bits(u64::from(diff.changed_count()), class);
        after
    }

    /// Crystallizes one cell (see [`DeviceStore::inject_disturb`]).
    pub fn inject_disturb(&mut self, addr: LineAddr, bit: u16) -> bool {
        let line = self.line_mut(addr);
        if line.stuck.iter().any(|&(b, _)| b == bit) {
            return false;
        }
        if line.data.bit(bit as usize) {
            return false;
        }
        line.data.set_bit(bit as usize, true);
        true
    }

    /// Plants a stuck-at fault (see [`DeviceStore::plant_hard_error`]).
    pub fn plant_hard_error(&mut self, addr: LineAddr, bit: u16, stuck_val: bool) -> bool {
        let correct = {
            let line = self.line_mut(addr);
            line.ecp.patch(&line.data).bit(bit as usize)
        };
        self.plant_hard_error_with_value(addr, bit, stuck_val, correct)
    }

    /// Plants a stuck-at fault with a caller-supplied architectural value
    /// (see [`DeviceStore::plant_hard_error_with_value`]).
    pub fn plant_hard_error_with_value(
        &mut self,
        addr: LineAddr,
        bit: u16,
        stuck_val: bool,
        correct: bool,
    ) -> bool {
        let line = self.line_mut(addr);
        if !line.stuck.iter().any(|&(b, _)| b == bit) {
            line.stuck.push((bit, stuck_val));
            line.data.set_bit(bit as usize, stuck_val);
        }
        line.ecp.try_record(bit, correct, EcpKind::Hard)
    }

    /// Refreshes hard-error ECP values after a write (see
    /// [`DeviceStore::refresh_hard_values`]).
    pub fn refresh_hard_values(&mut self, addr: LineAddr, intended: &LineBuf) {
        let line = self.line_mut(addr);
        let stuck = line.stuck.clone();
        for (bit, _) in stuck {
            line.ecp
                .try_record(bit, intended.bit(bit as usize), EcpKind::Hard);
        }
    }

    /// Borrowed view of a line's ECP table (see
    /// [`DeviceStore::ecp_ref`]).
    #[must_use]
    pub fn ecp_ref(&self, addr: LineAddr) -> Option<&EcpTable> {
        self.line(addr).map(|l| &l.ecp)
    }

    /// Mutable access to a line's ECP table (materializes the line).
    pub fn ecp_mut(&mut self, addr: LineAddr) -> &mut EcpTable {
        &mut self.line_mut(addr).ecp
    }

    /// Number of stuck cells planted on a line.
    #[must_use]
    pub fn hard_error_count(&self, addr: LineAddr) -> usize {
        self.line(addr).map_or(0, |l| l.stuck.len())
    }

    /// Charges one ECP-chip record write to this bank's wear meter.
    pub fn charge_ecp_record(&mut self) {
        self.bank.wear.charge_ecp_record();
    }
}

fn materialize_line(
    bank: &mut BankStore,
    init: InitContent,
    ecp_entries: usize,
    addr: LineAddr,
) -> &mut LineState {
    bank.lines
        .entry((addr.row.0, addr.slot))
        .or_insert_with(|| {
            let mut l = LineState::new(ecp_entries);
            l.data = initial_line_of(init, addr);
            l
        })
}

fn initial_line_of(init: InitContent, addr: LineAddr) -> LineBuf {
    match init {
        InitContent::Zeroed => LineBuf::zeroed(),
        InitContent::Pseudorandom(seed) => {
            let mut words = [0u64; 8];
            let base = seed
                ^ (u64::from(addr.bank.0) << 48)
                ^ (u64::from(addr.row.0) << 8)
                ^ u64::from(addr.slot);
            for (i, w) in words.iter_mut().enumerate() {
                *w = splitmix64(
                    base.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                );
            }
            LineBuf::from_words(words)
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BankId, RowId};
    use crate::wear::WriteClass;

    fn addr(bank: u16, row: u32, slot: u8) -> LineAddr {
        LineAddr {
            bank: BankId(bank),
            row: RowId(row),
            slot,
        }
    }

    fn store() -> DeviceStore {
        DeviceStore::new(MemGeometry::small(64), 6)
    }

    #[test]
    fn untouched_lines_read_zero() {
        let dev = store();
        assert_eq!(dev.read_line(addr(5, 10, 3)), LineBuf::zeroed());
        assert_eq!(dev.materialized_lines(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut dev = store();
        let a = addr(1, 2, 3);
        let mut data = LineBuf::zeroed();
        data.set_bit(0, true);
        data.set_bit(511, true);
        let diff = DiffMask::between(&dev.raw_line(a), &data);
        dev.apply_write(a, &diff, WriteClass::Normal);
        assert_eq!(dev.read_line(a), data);
        assert_eq!(dev.materialized_lines(), 1);
    }

    #[test]
    fn reads_do_not_materialize() {
        let mut dev = store();
        let _ = dev.read_line(addr(0, 1, 2));
        let _ = dev.raw_line(addr(0, 1, 3));
        assert_eq!(dev.materialized_lines(), 0);
        dev.inject_disturb(addr(0, 1, 2), 5);
        assert_eq!(dev.materialized_lines(), 1);
    }

    #[test]
    fn disturb_flips_idle_zero_to_one() {
        let mut dev = store();
        let a = addr(0, 0, 0);
        dev.inject_disturb(a, 7);
        assert!(dev.raw_line(a).bit(7));
        // Not patched: no ECP entry recorded yet, so the read sees it too.
        assert!(dev.read_line(a).bit(7));
    }

    #[test]
    fn ecp_patch_hides_disturbance() {
        let mut dev = store();
        let a = addr(0, 0, 0);
        dev.inject_disturb(a, 7);
        dev.ecp_mut(a).try_record(7, false, EcpKind::Disturb);
        assert!(dev.raw_line(a).bit(7), "raw cell stays disturbed");
        assert!(!dev.read_line(a).bit(7), "architectural read is patched");
    }

    #[test]
    fn stuck_cell_ignores_writes_and_disturbs() {
        let mut dev = store();
        let a = addr(2, 4, 6);
        assert!(dev.plant_hard_error(a, 100, false));
        // Try to SET the stuck cell.
        let mut data = LineBuf::zeroed();
        data.set_bit(100, true);
        let diff = DiffMask::between(&dev.raw_line(a), &data);
        dev.apply_write(a, &diff, WriteClass::Normal);
        assert!(!dev.raw_line(a).bit(100), "stuck at 0");
        // But ECP patches the read once refreshed with the intended data.
        dev.refresh_hard_values(a, &data);
        assert!(dev.read_line(a).bit(100));
        // Disturbance cannot flip it either.
        dev.inject_disturb(a, 100);
        assert!(!dev.raw_line(a).bit(100));
    }

    #[test]
    fn wear_charged_by_class() {
        let mut dev = store();
        let a = addr(0, 1, 0);
        let mut data = LineBuf::zeroed();
        for b in 0..10 {
            data.set_bit(b, true);
        }
        let diff = DiffMask::between(&dev.raw_line(a), &data);
        dev.apply_write(a, &diff, WriteClass::Normal);
        dev.apply_write(a, &DiffMask::reset_only(&[0, 1]), WriteClass::Correction);
        assert_eq!(dev.wear().data_bits_normal(), 10);
        assert_eq!(dev.wear().data_bits_correction(), 2);
    }

    #[test]
    fn content_digest_tracks_device_state() {
        let build = || {
            let mut dev = store();
            let mut data = LineBuf::zeroed();
            data.set_bit(9, true);
            let a = addr(1, 2, 3);
            let diff = DiffMask::between(&dev.raw_line(a), &data);
            dev.apply_write(a, &diff, WriteClass::Normal);
            dev.plant_hard_error(addr(0, 0, 0), 17, true);
            dev
        };
        let mut dev = build();
        assert_eq!(dev.content_digest(), build().content_digest());
        let before = dev.content_digest();
        dev.inject_disturb(addr(1, 2, 3), 200);
        assert_ne!(dev.content_digest(), before, "digest sees new state");
    }

    #[test]
    fn hard_error_count_tracks_plants() {
        let mut dev = store();
        let a = addr(3, 3, 3);
        dev.plant_hard_error(a, 1, true);
        dev.plant_hard_error(a, 2, false);
        dev.plant_hard_error(a, 2, false); // duplicate ignored
        assert_eq!(dev.hard_error_count(a), 2);
        assert_eq!(dev.ecp(a).hard_count(), 2);
    }

    #[test]
    fn pseudorandom_init_is_deterministic_and_consistent() {
        let dev = DeviceStore::with_init(MemGeometry::small(64), 6, InitContent::Pseudorandom(7));
        let a = addr(1, 2, 3);
        let first = dev.read_line(a);
        assert_eq!(dev.read_line(a), first);
        assert_eq!(dev.raw_line(a), first);
        assert_ne!(first, LineBuf::zeroed());
        // Different addresses get different content.
        assert_ne!(dev.read_line(addr(1, 2, 4)), first);
        // Different seeds differ.
        let dev2 = DeviceStore::with_init(MemGeometry::small(64), 6, InitContent::Pseudorandom(8));
        assert_ne!(dev2.read_line(a), first);
    }

    #[test]
    fn writes_over_pseudorandom_content_diff_correctly() {
        let mut dev =
            DeviceStore::with_init(MemGeometry::small(64), 6, InitContent::Pseudorandom(7));
        let a = addr(0, 1, 1);
        let target = LineBuf::zeroed();
        let diff = DiffMask::between(&dev.raw_line(a), &target);
        assert!(diff.reset_count() > 100, "random content has many ones");
        dev.apply_write(a, &diff, WriteClass::Normal);
        assert_eq!(dev.read_line(a), target);
    }

    #[test]
    fn lines_of_same_row_are_independent() {
        let mut dev = store();
        let a = addr(1, 5, 0);
        let b = addr(1, 5, 1);
        let mut data = LineBuf::zeroed();
        data.set_bit(3, true);
        let diff = DiffMask::between(&dev.raw_line(a), &data);
        dev.apply_write(a, &diff, WriteClass::Normal);
        assert_eq!(dev.read_line(b), LineBuf::zeroed());
        assert_eq!(dev.materialized_lines(), 1);
    }
}
