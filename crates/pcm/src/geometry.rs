//! Memory geometry and address math.
//!
//! The baseline architecture (paper Figure 6, Table 2):
//!
//! * 8 GB main memory, one channel, two ranks, eight banks per rank
//!   (16 banks total).
//! * One bank row stores one 4 KB logical page, spread across eight data
//!   chips (each chip row holds 4096 SLC cells) plus one ECP chip.
//! * A *strip* is the set of rows with the same index across all banks:
//!   16 consecutive physical page frames. The OS interleaves pages across
//!   banks, so two physically adjacent rows of one bank hold pages that
//!   are 16 frames apart.
//! * A 64 B memory line has 512 SLC cells; 64 lines per row.
//!
//! Bit-line adjacency — the crux of the paper — is therefore: line
//! `(bank, row, slot)` neighbours lines `(bank, row±1, slot)`; in page
//! terms, frames `p ± 16`.

use std::fmt;

/// Bytes per memory line (64 B cache-line-sized PCM line).
pub const LINE_BYTES_GEO: usize = 64;
/// Bytes per device row / logical page (4 KB).
pub const ROW_BYTES: usize = 4096;
/// Lines per device row.
pub const LINES_PER_ROW: usize = ROW_BYTES / LINE_BYTES_GEO;
/// Pages per strip with the default 16-bank interleaving.
pub const PAGES_PER_STRIP: usize = 16;
/// Strips per 64 MB marking block: 64 MB / (16 pages × 4 KB).
pub const STRIPS_PER_64MB: u64 = (64 * 1024 * 1024) / (PAGES_PER_STRIP as u64 * ROW_BYTES as u64);

/// A bank index within the channel (`0..banks()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u16);

/// A row index within a bank. Row index equals strip index under the
/// baseline page-interleaved layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u32);

/// A physical page-frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

/// Fully resolved device address of one 64 B line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr {
    /// Bank holding the line.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Line slot within the row (`0..LINES_PER_ROW`).
    pub slot: u8,
}

impl LineAddr {
    /// A collision-free 64-bit encoding of the address, used to key
    /// order-free random substreams (bank ≪ 40 | row ≪ 8 | slot).
    #[must_use]
    pub fn stream_key(&self) -> u64 {
        (u64::from(self.bank.0) << 40) | (u64::from(self.row.0) << 8) | u64::from(self.slot)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}r{}s{}", self.bank.0, self.row.0, self.slot)
    }
}

/// Memory organization parameters.
///
/// The defaults reproduce Table 2; tests may shrink `rows_per_bank` to
/// keep working sets tiny.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::geometry::MemGeometry;
///
/// let g = MemGeometry::table2_8gb();
/// assert_eq!(g.banks(), 16);
/// assert_eq!(g.total_bytes(), 8 << 30);
/// let (addr, _) = g.decompose(0x40 * 17); // line 17 of the address space
/// assert_eq!(addr.slot, 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemGeometry {
    ranks: u16,
    banks_per_rank: u16,
    rows_per_bank: u32,
}

impl MemGeometry {
    /// The paper's Table 2 configuration: 8 GB, 2 ranks × 8 banks.
    #[must_use]
    pub fn table2_8gb() -> MemGeometry {
        // 8 GB / 4 KB = 2 Mi pages over 16 banks = 128 Ki rows per bank.
        MemGeometry {
            ranks: 2,
            banks_per_rank: 8,
            rows_per_bank: 128 * 1024,
        }
    }

    /// A reduced geometry for fast tests: same 16-bank structure, fewer
    /// rows per bank.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_bank` is zero.
    #[must_use]
    pub fn small(rows_per_bank: u32) -> MemGeometry {
        assert!(rows_per_bank > 0, "geometry needs at least one row");
        MemGeometry {
            ranks: 2,
            banks_per_rank: 8,
            rows_per_bank,
        }
    }

    /// Total number of banks in the channel.
    #[must_use]
    pub fn banks(&self) -> u16 {
        self.ranks * self.banks_per_rank
    }

    /// Number of ranks.
    #[must_use]
    pub fn ranks(&self) -> u16 {
        self.ranks
    }

    /// Rows per bank.
    #[must_use]
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Total physical page frames.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        u64::from(self.banks()) * u64::from(self.rows_per_bank)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * ROW_BYTES as u64
    }

    /// Number of strips (groups of 16 page frames sharing a row index).
    #[must_use]
    pub fn strips(&self) -> u64 {
        u64::from(self.rows_per_bank)
    }

    /// Maps a physical page frame to its bank and row (page interleaved).
    ///
    /// # Panics
    ///
    /// Panics if the page is out of range.
    #[must_use]
    pub fn page_to_bank_row(&self, page: PageId) -> (BankId, RowId) {
        assert!(page.0 < self.total_pages(), "page {page:?} out of range");
        let banks = u64::from(self.banks());
        (
            BankId((page.0 % banks) as u16),
            RowId((page.0 / banks) as u32),
        )
    }

    /// Maps (bank, row) back to the physical page frame.
    ///
    /// # Panics
    ///
    /// Panics if bank or row are out of range.
    #[must_use]
    pub fn bank_row_to_page(&self, bank: BankId, row: RowId) -> PageId {
        assert!(bank.0 < self.banks(), "bank {bank:?} out of range");
        assert!(row.0 < self.rows_per_bank, "row {row:?} out of range");
        PageId(u64::from(row.0) * u64::from(self.banks()) + u64::from(bank.0))
    }

    /// Decomposes a byte-granular physical address into a line address and
    /// the offset within the line.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the end of memory.
    #[must_use]
    pub fn decompose(&self, phys_addr: u64) -> (LineAddr, usize) {
        assert!(phys_addr < self.total_bytes(), "address out of range");
        let offset_in_line = (phys_addr % LINE_BYTES_GEO as u64) as usize;
        let page = PageId(phys_addr / ROW_BYTES as u64);
        let slot = ((phys_addr % ROW_BYTES as u64) / LINE_BYTES_GEO as u64) as u8;
        let (bank, row) = self.page_to_bank_row(page);
        (LineAddr { bank, row, slot }, offset_in_line)
    }

    /// The line address of the 64 B line holding `phys_addr`.
    #[must_use]
    pub fn line_of(&self, phys_addr: u64) -> LineAddr {
        self.decompose(phys_addr).0
    }

    /// The bit-line neighbours of a line: same bank and slot, rows `r-1`
    /// and `r+1`. `None` at the physical edges of the bank.
    #[must_use]
    pub fn bitline_neighbors(&self, addr: LineAddr) -> [Option<LineAddr>; 2] {
        let up = addr.row.0.checked_sub(1).map(|r| LineAddr {
            row: RowId(r),
            ..addr
        });
        let down = if addr.row.0 + 1 < self.rows_per_bank {
            Some(LineAddr {
                row: RowId(addr.row.0 + 1),
                ..addr
            })
        } else {
            None
        };
        [up, down]
    }

    /// Strip index of a line (equals the row index under interleaving).
    #[must_use]
    pub fn strip_of(&self, addr: LineAddr) -> u64 {
        u64::from(addr.row.0)
    }

    /// Strip index of a physical page frame.
    #[must_use]
    pub fn strip_of_page(&self, page: PageId) -> u64 {
        let (_, row) = self.page_to_bank_row(page);
        u64::from(row.0)
    }
}

impl Default for MemGeometry {
    fn default() -> Self {
        MemGeometry::table2_8gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals() {
        let g = MemGeometry::table2_8gb();
        assert_eq!(g.banks(), 16);
        assert_eq!(g.total_pages(), 2 * 1024 * 1024);
        assert_eq!(g.total_bytes(), 8 * 1024 * 1024 * 1024);
        assert_eq!(g.strips(), 128 * 1024);
    }

    #[test]
    fn strips_per_64mb_constant() {
        // 64 MB block = 1024 strips of 16 pages × 4 KB.
        assert_eq!(STRIPS_PER_64MB, 1024);
    }

    #[test]
    fn page_bank_row_roundtrip() {
        let g = MemGeometry::table2_8gb();
        for p in [0u64, 1, 15, 16, 17, 12345, g.total_pages() - 1] {
            let (b, r) = g.page_to_bank_row(PageId(p));
            assert_eq!(g.bank_row_to_page(b, r), PageId(p));
        }
    }

    #[test]
    fn adjacent_rows_are_16_pages_apart() {
        // The paper: "an adjacent line is 16 physical frames away".
        let g = MemGeometry::table2_8gb();
        let p = PageId(100);
        let (b, r) = g.page_to_bank_row(p);
        let below = g.bank_row_to_page(b, RowId(r.0 + 1));
        assert_eq!(below.0 - p.0, 16);
    }

    #[test]
    fn decompose_fields() {
        let g = MemGeometry::table2_8gb();
        // Page 16 → bank 0, row 1. Byte 4096*16 + 64*3 + 5.
        let a = 4096 * 16 + 64 * 3 + 5;
        let (line, off) = g.decompose(a);
        assert_eq!(line.bank, BankId(0));
        assert_eq!(line.row, RowId(1));
        assert_eq!(line.slot, 3);
        assert_eq!(off, 5);
    }

    #[test]
    fn bitline_neighbors_edges() {
        let g = MemGeometry::small(4);
        let top = LineAddr {
            bank: BankId(2),
            row: RowId(0),
            slot: 7,
        };
        let [up, down] = g.bitline_neighbors(top);
        assert!(up.is_none());
        assert_eq!(down.unwrap().row, RowId(1));

        let bottom = LineAddr {
            bank: BankId(2),
            row: RowId(3),
            slot: 7,
        };
        let [up, down] = g.bitline_neighbors(bottom);
        assert_eq!(up.unwrap().row, RowId(2));
        assert!(down.is_none());
    }

    #[test]
    fn neighbors_preserve_bank_and_slot() {
        let g = MemGeometry::table2_8gb();
        let a = LineAddr {
            bank: BankId(9),
            row: RowId(500),
            slot: 33,
        };
        for n in g.bitline_neighbors(a).into_iter().flatten() {
            assert_eq!(n.bank, a.bank);
            assert_eq!(n.slot, a.slot);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_out_of_range_panics() {
        let g = MemGeometry::small(2);
        let _ = g.page_to_bank_row(PageId(g.total_pages()));
    }

    #[test]
    fn strip_equals_row() {
        let g = MemGeometry::table2_8gb();
        let a = LineAddr {
            bank: BankId(3),
            row: RowId(77),
            slot: 0,
        };
        assert_eq!(g.strip_of(a), 77);
        assert_eq!(g.strip_of_page(PageId(77 * 16 + 3)), 77);
    }

    #[test]
    fn display_line_addr() {
        let a = LineAddr {
            bank: BankId(1),
            row: RowId(2),
            slot: 3,
        };
        assert_eq!(a.to_string(), "b1r2s3");
    }
}
