//! PCM operation latencies (paper Table 2).
//!
//! * array read: 100 ns = 400 cycles,
//! * SET pulse: 200 ns = 800 cycles,
//! * RESET pulse: 100 ns = 400 cycles,
//! * at most 128 SLC cells programmed in parallel (write-driver / power
//!   limit), so large differential writes proceed in waves.
//!
//! The 128 write drivers fire concurrently, so one wave of mixed pulses
//! costs the longest pulse in it: `ceil(changed/128) · t_SET` when any
//! cell needs a SET, `ceil(changed/128) · t_RESET` for RESET-only
//! updates (e.g. corrections). A write with no changed cell still pays
//! one RESET time (the array must be accessed to discover this at the
//! device level; with the controller-side diff this case is rare).

use crate::line::DiffMask;
use sdpcm_engine::Cycle;

/// Latency/parallelism parameters of the PCM array.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::timing::PcmTiming;
/// use sdpcm_pcm::line::{DiffMask, LineBuf};
///
/// let t = PcmTiming::table2();
/// let mut new = LineBuf::zeroed();
/// new.set_bit(0, true);
/// let d = DiffMask::between(&LineBuf::zeroed(), &new); // one SET
/// assert_eq!(t.write_latency(&d).0, 800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcmTiming {
    /// Array read latency.
    pub read: Cycle,
    /// One SET wave.
    pub set_pulse: Cycle,
    /// One RESET wave.
    pub reset_pulse: Cycle,
    /// Cells programmable in parallel.
    pub parallel_writes: u32,
}

impl PcmTiming {
    /// The paper's Table 2 values at a 4 GHz core clock.
    #[must_use]
    pub fn table2() -> PcmTiming {
        PcmTiming {
            read: Cycle(400),
            set_pulse: Cycle(800),
            reset_pulse: Cycle(400),
            parallel_writes: 128,
        }
    }

    /// Latency of a differential write described by `diff`.
    #[must_use]
    pub fn write_latency(&self, diff: &DiffMask) -> Cycle {
        let total = diff.changed_count();
        if total == 0 {
            return self.reset_pulse; // silent write still occupies the bank
        }
        let wave = if diff.set_count() > 0 {
            self.set_pulse
        } else {
            self.reset_pulse
        };
        Cycle(waves(total, self.parallel_writes) * wave.0)
    }

    /// Latency of a correction write: disturbed cells are all in the `1`
    /// state and need RESET pulses only (§3.2).
    #[must_use]
    pub fn correction_latency(&self, cells: u32) -> Cycle {
        let w = waves(cells, self.parallel_writes).max(1);
        Cycle(w * self.reset_pulse.0)
    }
}

impl Default for PcmTiming {
    fn default() -> Self {
        PcmTiming::table2()
    }
}

fn waves(cells: u32, parallel: u32) -> u64 {
    u64::from(cells.div_ceil(parallel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LineBuf;

    fn diff_with(sets: usize, resets: usize) -> DiffMask {
        let mut old = LineBuf::zeroed();
        let mut new = LineBuf::zeroed();
        for b in 0..sets {
            new.set_bit(b, true); // 0 -> 1
        }
        for b in sets..sets + resets {
            old.set_bit(b, true); // 1 -> 0
        }
        DiffMask::between(&old, &new)
    }

    #[test]
    fn single_wave_latencies() {
        let t = PcmTiming::table2();
        assert_eq!(t.write_latency(&diff_with(1, 0)), Cycle(800));
        assert_eq!(t.write_latency(&diff_with(0, 1)), Cycle(400));
        // Mixed wave: drivers fire concurrently, SET dominates.
        assert_eq!(t.write_latency(&diff_with(10, 10)), Cycle(800));
    }

    #[test]
    fn multi_wave_latency() {
        let t = PcmTiming::table2();
        // 329 changed cells = 3 waves of up to 128; SET present.
        assert_eq!(t.write_latency(&diff_with(200, 129)), Cycle(3 * 800));
        // RESET-only multi-wave.
        assert_eq!(t.write_latency(&diff_with(0, 150)), Cycle(2 * 400));
    }

    #[test]
    fn silent_write_still_costs() {
        let t = PcmTiming::table2();
        assert_eq!(t.write_latency(&DiffMask::empty()), Cycle(400));
    }

    #[test]
    fn correction_is_reset_only() {
        let t = PcmTiming::table2();
        assert_eq!(t.correction_latency(0), Cycle(400));
        assert_eq!(t.correction_latency(2), Cycle(400));
        assert_eq!(t.correction_latency(129), Cycle(800));
    }
}
