//! 64-byte line buffers and differential-write masks.
//!
//! SLC PCM convention (paper §2.1): bit `0` is the fully *amorphous*
//! (high-resistance, RESET) state; bit `1` is the fully *crystalline*
//! (low-resistance, SET) state. A differential write [Zhou et al., ISCA'09]
//! compares old and new data and programs only the cells whose value
//! changes:
//!
//! * `1 → 0` requires a **RESET** pulse (melt + quench) — the disturbing
//!   operation,
//! * `0 → 1` requires a **SET** pulse — four times cooler, ignored as a
//!   disturbance source (§2.2.1).

/// Bytes per line.
pub const LINE_BYTES: usize = 64;
/// SLC cells (bits) per line.
pub const LINE_BITS: usize = LINE_BYTES * 8;
/// 64-bit words per line.
pub const LINE_WORDS: usize = LINE_BYTES / 8;

/// A 64-byte memory line.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::line::LineBuf;
///
/// let mut l = LineBuf::zeroed();
/// l.set_bit(5, true);
/// assert!(l.bit(5));
/// assert_eq!(l.count_ones(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineBuf {
    words: [u64; LINE_WORDS],
}

impl LineBuf {
    /// All cells amorphous (`0`).
    #[must_use]
    pub fn zeroed() -> LineBuf {
        LineBuf {
            words: [0; LINE_WORDS],
        }
    }

    /// Builds a line from 64 bytes.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; LINE_BYTES]) -> LineBuf {
        let mut words = [0u64; LINE_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            *w = u64::from_le_bytes(b);
        }
        LineBuf { words }
    }

    /// Builds a line directly from eight 64-bit words (little-endian bit
    /// order within each word).
    #[must_use]
    pub fn from_words(words: [u64; LINE_WORDS]) -> LineBuf {
        LineBuf { words }
    }

    /// The line as 64 bytes.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; LINE_BYTES] {
        let mut out = [0u8; LINE_BYTES];
        for (i, w) in self.words.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// The underlying words.
    #[must_use]
    pub fn words(&self) -> &[u64; LINE_WORDS] {
        &self.words
    }

    /// Value of cell `bit` (`0..512`).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 512`.
    #[must_use]
    pub fn bit(&self, bit: usize) -> bool {
        assert!(bit < LINE_BITS, "bit index out of range");
        (self.words[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Sets cell `bit` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 512`.
    pub fn set_bit(&mut self, bit: usize, value: bool) {
        assert!(bit < LINE_BITS, "bit index out of range");
        let mask = 1u64 << (bit % 64);
        if value {
            self.words[bit / 64] |= mask;
        } else {
            self.words[bit / 64] &= !mask;
        }
    }

    /// Number of crystalline (`1`) cells.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// XOR of two lines — the changed-cell mask.
    #[must_use]
    pub fn xor(&self, other: &LineBuf) -> LineBuf {
        let mut words = [0u64; LINE_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words[i] ^ other.words[i];
        }
        LineBuf { words }
    }

    /// Bitwise NOT of the line (used by inversion-based encoders).
    #[must_use]
    pub fn not(&self) -> LineBuf {
        let mut words = [0u64; LINE_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = !self.words[i];
        }
        LineBuf { words }
    }

    /// Iterator over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &w)| BitIter { word: w }.map(move |b| wi * 64 + b))
    }
}

/// Owned iterator over the set-bit indices of a word array; lets mask
/// iterators be returned without borrowing (or allocating).
#[derive(Debug, Clone)]
struct WordsBitIter {
    words: [u64; LINE_WORDS],
    wi: usize,
}

impl Iterator for WordsBitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.wi < LINE_WORDS {
            let w = self.words[self.wi];
            if w != 0 {
                self.words[self.wi] = w & (w - 1);
                return Some(self.wi * 64 + w.trailing_zeros() as usize);
            }
            self.wi += 1;
        }
        None
    }
}

impl Default for LineBuf {
    fn default() -> Self {
        LineBuf::zeroed()
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

/// The differential-write mask for updating a line: which cells need a
/// SET pulse and which need a RESET pulse.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::line::{DiffMask, LineBuf};
///
/// let old = LineBuf::zeroed();
/// let mut new = LineBuf::zeroed();
/// new.set_bit(0, true);
/// let d = DiffMask::between(&old, &new);
/// assert_eq!(d.set_count(), 1);
/// assert_eq!(d.reset_count(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffMask {
    /// Cells transitioning `0 → 1` (SET pulses).
    sets: [u64; LINE_WORDS],
    /// Cells transitioning `1 → 0` (RESET pulses) — the disturbance source.
    resets: [u64; LINE_WORDS],
}

impl DiffMask {
    /// Computes the mask to turn `old` into `new`.
    #[must_use]
    pub fn between(old: &LineBuf, new: &LineBuf) -> DiffMask {
        let mut sets = [0u64; LINE_WORDS];
        let mut resets = [0u64; LINE_WORDS];
        for i in 0..LINE_WORDS {
            let o = old.words[i];
            let n = new.words[i];
            sets[i] = !o & n;
            resets[i] = o & !n;
        }
        DiffMask { sets, resets }
    }

    /// An empty mask (no cell programmed).
    #[must_use]
    pub fn empty() -> DiffMask {
        DiffMask {
            sets: [0; LINE_WORDS],
            resets: [0; LINE_WORDS],
        }
    }

    /// A mask that RESETs exactly the given cells (used by corrections:
    /// disturbed cells are in `1` state and must be RESET back to `0`,
    /// §3.2).
    #[must_use]
    pub fn reset_only(bits: &[usize]) -> DiffMask {
        let mut resets = [0u64; LINE_WORDS];
        for &b in bits {
            assert!(b < LINE_BITS, "bit index out of range");
            resets[b / 64] |= 1 << (b % 64);
        }
        DiffMask {
            sets: [0; LINE_WORDS],
            resets,
        }
    }

    /// [`DiffMask::reset_only`] for the `u16` cell indices the memory
    /// controller's ECP work lists carry, avoiding a widening collect.
    #[must_use]
    pub fn reset_only_cells(cells: &[u16]) -> DiffMask {
        let mut resets = [0u64; LINE_WORDS];
        for &b in cells {
            let b = b as usize;
            assert!(b < LINE_BITS, "bit index out of range");
            resets[b / 64] |= 1 << (b % 64);
        }
        DiffMask {
            sets: [0; LINE_WORDS],
            resets,
        }
    }

    /// Number of SET pulses.
    #[must_use]
    pub fn set_count(&self) -> u32 {
        self.sets.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of RESET pulses.
    #[must_use]
    pub fn reset_count(&self) -> u32 {
        self.resets.iter().map(|w| w.count_ones()).sum()
    }

    /// Total programmed cells.
    #[must_use]
    pub fn changed_count(&self) -> u32 {
        self.set_count() + self.reset_count()
    }

    /// `true` when nothing is programmed (silent write).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed_count() == 0
    }

    /// `true` if cell `bit` receives a RESET pulse.
    #[must_use]
    pub fn is_reset(&self, bit: usize) -> bool {
        assert!(bit < LINE_BITS, "bit index out of range");
        (self.resets[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// `true` if cell `bit` receives a SET pulse.
    #[must_use]
    pub fn is_set(&self, bit: usize) -> bool {
        assert!(bit < LINE_BITS, "bit index out of range");
        (self.sets[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// `true` if cell `bit` is programmed either way (not idle).
    #[must_use]
    pub fn is_programmed(&self, bit: usize) -> bool {
        self.is_reset(bit) || self.is_set(bit)
    }

    /// Iterator over cells receiving RESET pulses. The iterator owns a
    /// copy of the mask words, so it neither borrows `self` nor heap-
    /// allocates.
    pub fn iter_resets(&self) -> impl Iterator<Item = usize> {
        WordsBitIter {
            words: self.resets,
            wi: 0,
        }
    }

    /// The RESET mask as a [`LineBuf`] (1 = cell is RESET).
    #[must_use]
    pub fn reset_mask(&self) -> LineBuf {
        LineBuf { words: self.resets }
    }

    /// The SET mask as a [`LineBuf`] (1 = cell is SET).
    #[must_use]
    pub fn set_mask(&self) -> LineBuf {
        LineBuf { words: self.sets }
    }

    /// Applies the mask to a line, returning the post-write contents.
    #[must_use]
    pub fn apply(&self, line: &LineBuf) -> LineBuf {
        let mut words = [0u64; LINE_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = (line.words[i] | self.sets[i]) & !self.resets[i];
        }
        LineBuf { words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(seed: u64) -> LineBuf {
        let mut words = [0u64; LINE_WORDS];
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for w in &mut words {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *w = x;
        }
        LineBuf::from_words(words)
    }

    #[test]
    fn byte_roundtrip() {
        let l = patterned(3);
        let b = l.to_bytes();
        assert_eq!(LineBuf::from_bytes(&b), l);
    }

    #[test]
    fn bit_get_set() {
        let mut l = LineBuf::zeroed();
        for b in [0usize, 63, 64, 511] {
            l.set_bit(b, true);
            assert!(l.bit(b));
            l.set_bit(b, false);
            assert!(!l.bit(b));
        }
    }

    #[test]
    fn iter_ones_matches_bits() {
        let l = patterned(7);
        let from_iter: Vec<usize> = l.iter_ones().collect();
        let from_scan: Vec<usize> = (0..LINE_BITS).filter(|&b| l.bit(b)).collect();
        assert_eq!(from_iter, from_scan);
    }

    #[test]
    fn diff_partitions_changes() {
        let old = patterned(1);
        let new = patterned(2);
        let d = DiffMask::between(&old, &new);
        for b in 0..LINE_BITS {
            match (old.bit(b), new.bit(b)) {
                (false, true) => assert!(d.is_set(b) && !d.is_reset(b)),
                (true, false) => assert!(d.is_reset(b) && !d.is_set(b)),
                _ => assert!(!d.is_programmed(b)),
            }
        }
        assert_eq!(d.changed_count(), old.xor(&new).count_ones());
    }

    #[test]
    fn apply_realizes_new_data() {
        let old = patterned(10);
        let new = patterned(20);
        let d = DiffMask::between(&old, &new);
        assert_eq!(d.apply(&old), new);
    }

    #[test]
    fn same_data_is_silent() {
        let l = patterned(4);
        let d = DiffMask::between(&l, &l);
        assert!(d.is_empty());
        assert_eq!(d.apply(&l), l);
    }

    #[test]
    fn reset_only_mask() {
        let d = DiffMask::reset_only(&[3, 500]);
        assert_eq!(d.reset_count(), 2);
        assert_eq!(d.set_count(), 0);
        let resets: Vec<usize> = d.iter_resets().collect();
        assert_eq!(resets, vec![3, 500]);
        // Applying a RESET-only mask clears those cells.
        let mut l = LineBuf::zeroed();
        l.set_bit(3, true);
        l.set_bit(4, true);
        let after = d.apply(&l);
        assert!(!after.bit(3));
        assert!(after.bit(4));
    }

    #[test]
    fn iter_ones_empty_and_full() {
        assert_eq!(LineBuf::zeroed().iter_ones().count(), 0);
        let full = LineBuf::from_words([u64::MAX; LINE_WORDS]);
        let bits: Vec<usize> = full.iter_ones().collect();
        assert_eq!(bits.len(), LINE_BITS);
        assert_eq!(bits[0], 0);
        assert_eq!(bits[LINE_BITS - 1], LINE_BITS - 1);
        assert!(
            bits.windows(2).all(|w| w[0] + 1 == w[1]),
            "strictly ascending"
        );
    }

    #[test]
    fn iter_ones_word_boundaries() {
        // Bits straddling every 64-bit word seam must survive iteration.
        let seam_bits = [
            0usize, 63, 64, 127, 128, 191, 192, 255, 256, 319, 320, 383, 384, 447, 448, 511,
        ];
        let mut l = LineBuf::zeroed();
        for &b in &seam_bits {
            l.set_bit(b, true);
        }
        let got: Vec<usize> = l.iter_ones().collect();
        assert_eq!(got, seam_bits);
    }

    #[test]
    fn iter_resets_empty_and_full() {
        assert_eq!(DiffMask::empty().iter_resets().count(), 0);
        let all: Vec<usize> = (0..LINE_BITS).collect();
        let full = DiffMask::reset_only(&all);
        assert_eq!(full.reset_count(), LINE_BITS as u32);
        let got: Vec<usize> = full.iter_resets().collect();
        assert_eq!(got, all);
    }

    #[test]
    fn iter_resets_word_boundaries() {
        let d = DiffMask::reset_only(&[63, 64, 127, 128, 511]);
        let got: Vec<usize> = d.iter_resets().collect();
        assert_eq!(got, vec![63, 64, 127, 128, 511]);
        for b in [63usize, 64, 127, 128, 511] {
            assert!(d.is_reset(b));
        }
        assert!(!d.is_reset(65));
    }

    #[test]
    fn reset_only_cells_matches_reset_only() {
        let cells: [u16; 5] = [0, 63, 64, 127, 511];
        let wide: Vec<usize> = cells.iter().map(|&c| c as usize).collect();
        assert_eq!(
            DiffMask::reset_only_cells(&cells),
            DiffMask::reset_only(&wide)
        );
        assert_eq!(DiffMask::reset_only_cells(&[]), DiffMask::empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reset_only_cells_rejects_bad_index() {
        let _ = DiffMask::reset_only_cells(&[512]);
    }

    #[test]
    fn not_inverts_everything() {
        let l = patterned(6);
        let n = l.not();
        assert_eq!(n.count_ones() + l.count_ones(), LINE_BITS as u32);
        assert_eq!(n.not(), l);
    }
}
