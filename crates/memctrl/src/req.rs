//! Memory requests and completions.

use sdpcm_engine::Cycle;
use sdpcm_osalloc::NmRatio;
use sdpcm_pcm::geometry::LineAddr;
use sdpcm_pcm::line::LineBuf;

/// Unique request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

/// What a request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand read of one 64 B line.
    Read,
    /// Write of one 64 B line with the new (plain, un-encoded) data.
    Write(LineBuf),
}

impl AccessKind {
    /// `true` for writes.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self, AccessKind::Write(_))
    }
}

/// One request from the system to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Unique id, echoed in the completion.
    pub id: ReqId,
    /// Target line.
    pub addr: LineAddr,
    /// Read or write (+ data).
    pub kind: AccessKind,
    /// The (n:m) allocator tag delivered by the TLB (Figure 9).
    pub ratio: NmRatio,
    /// Issuing core (statistics only).
    pub core: u8,
    /// Arrival time at the controller.
    pub arrive: Cycle,
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request this answers.
    pub id: ReqId,
    /// Completion time.
    pub at: Cycle,
    /// `true` if the request was a write.
    pub was_write: bool,
    /// For reads: the architectural data returned.
    pub data: Option<LineBuf>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write(LineBuf::zeroed()).is_write());
    }
}
