//! Controller statistics — the raw material of Figures 4, 5 and 11–19.

use sdpcm_engine::{Counter, Cycle, Histogram, QuantileSketch};

/// Cycle totals per operation category, for the Figure 5 overhead split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Pre-write reads of adjacent lines (inline, not PreRead-hidden).
    pub pre_reads: Cycle,
    /// Array writes of demand data.
    pub array_writes: Cycle,
    /// Post-write reads of the written line (DIN word-line check).
    pub own_verifies: Cycle,
    /// Word-line fix-up rewrites.
    pub own_fixes: Cycle,
    /// Post-write reads of adjacent lines (verification proper).
    pub post_reads: Cycle,
    /// ECP-chip record writes (LazyCorrection buffering).
    pub ecp_writes: Cycle,
    /// Correction RESET writes to adjacent lines.
    pub corrections: Cycle,
    /// Reads performed by cascading verification.
    pub cascade_reads: Cycle,
}

impl PhaseCycles {
    /// Adds another phase tally into this one (bank-lane aggregation).
    pub fn merge(&mut self, other: &PhaseCycles) {
        self.pre_reads += other.pre_reads;
        self.array_writes += other.array_writes;
        self.own_verifies += other.own_verifies;
        self.own_fixes += other.own_fixes;
        self.post_reads += other.post_reads;
        self.ecp_writes += other.ecp_writes;
        self.corrections += other.corrections;
        self.cascade_reads += other.cascade_reads;
    }

    /// Verification-side cycles: the pre/post reads every VnC write pays
    /// regardless of whether errors appeared.
    #[must_use]
    pub fn verification_total(&self) -> Cycle {
        self.pre_reads + self.post_reads
    }

    /// Correction-side cycles: the work that exists only because errors
    /// appeared — correction writes, ECP records, and the cascading
    /// verification reads those corrections trigger (the paper counts
    /// cascades on the correction side: its Figure 5 correction share
    /// exceeds the verification share).
    #[must_use]
    pub fn correction_total(&self) -> Cycle {
        self.corrections + self.ecp_writes + self.cascade_reads
    }
}

/// All counters kept by the controller.
///
/// Compares with `==`: the reproducibility harness checks that two
/// same-seed runs produce identical statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlStats {
    /// Demand reads completed.
    pub reads: Counter,
    /// Demand reads satisfied by write-queue forwarding.
    pub read_forwards: Counter,
    /// Demand writes committed to the array.
    pub writes: Counter,
    /// Sum of read latencies (arrival → completion).
    pub read_latency_total: Cycle,
    /// Read-latency distribution (log₂-bucketed; p95/p99 reporting).
    pub read_latency_sketch: QuantileSketch,
    /// Per-category busy cycles.
    pub phases: PhaseCycles,
    /// Correction write operations (Figure 12 counts these per write).
    pub correction_ops: Counter,
    /// Cells fixed by correction writes.
    pub corrected_cells: Counter,
    /// WD errors buffered into ECP entries (LazyCorrection records).
    pub ecp_records: Counter,
    /// Verification reads of adjacent lines (post-reads + cascades).
    pub verification_ops: Counter,
    /// Cascade verification rounds entered.
    pub cascade_rounds: Counter,
    /// Cascade chains cut by the safety cap (should stay 0).
    pub cascade_overflows: Counter,
    /// Writes cancelled by reads (§6.8).
    pub write_cancellations: Counter,
    /// Write jobs paused between phases to serve reads.
    pub write_pauses: Counter,
    /// Start-Gap moves performed (each is one internal copy write).
    pub gap_moves: Counter,
    /// PreRead operations issued during idle bank time.
    pub prereads_issued: Counter,
    /// PreReads satisfied by forwarding from the write queue.
    pub preread_forwards: Counter,
    /// Bursty write-queue drains triggered.
    pub drains: Counter,
    /// Verification reads that found the line's ECP table unable to
    /// absorb the new errors (LazyCorrection exhaustion events).
    pub ecp_exhaustions: Counter,
    /// Exhaustion events answered by the bounded verify-and-correct
    /// retry path (first rung of the degradation ladder).
    pub correction_retries: Counter,
    /// Corrections issued for lines escalated past the retry cap —
    /// buffering is no longer attempted for them (second rung).
    pub immediate_corrections: Counter,
    /// Lines decommissioned from the array into the salvage pool
    /// (final rung).
    pub decommissions: Counter,
    /// Reads served from the salvage pool.
    pub salvaged_reads: Counter,
    /// Writes absorbed by the salvage pool.
    pub salvaged_writes: Counter,
    /// Decommissions denied because the salvage pool was full.
    pub salvage_rejections: Counter,
    /// ECP records that unexpectedly overflowed after the capacity
    /// check and were converted into direct cell fixes (should stay 0).
    pub ecp_overflow_fixes: Counter,
    /// Broken internal invariants detected (surfaced as
    /// [`crate::CtrlError::InternalAnomaly`]; should stay 0).
    pub internal_anomalies: Counter,
    /// Chaos-harness fault actions executed.
    pub fault_events: Counter,
    /// Word-line WD errors injected into written lines (Figure 4a).
    pub wl_errors: Histogram,
    /// Bit-line WD errors injected per adjacent line per write (Fig. 4b).
    pub bl_errors_per_neighbor: Histogram,
    /// New WD errors discovered per verification read.
    pub errors_per_verification: Histogram,
}

impl CtrlStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> CtrlStats {
        CtrlStats {
            reads: Counter::new(),
            read_forwards: Counter::new(),
            writes: Counter::new(),
            read_latency_total: Cycle::ZERO,
            read_latency_sketch: QuantileSketch::new(),
            phases: PhaseCycles::default(),
            correction_ops: Counter::new(),
            corrected_cells: Counter::new(),
            ecp_records: Counter::new(),
            verification_ops: Counter::new(),
            cascade_rounds: Counter::new(),
            cascade_overflows: Counter::new(),
            write_cancellations: Counter::new(),
            write_pauses: Counter::new(),
            gap_moves: Counter::new(),
            prereads_issued: Counter::new(),
            preread_forwards: Counter::new(),
            drains: Counter::new(),
            ecp_exhaustions: Counter::new(),
            correction_retries: Counter::new(),
            immediate_corrections: Counter::new(),
            decommissions: Counter::new(),
            salvaged_reads: Counter::new(),
            salvaged_writes: Counter::new(),
            salvage_rejections: Counter::new(),
            ecp_overflow_fixes: Counter::new(),
            internal_anomalies: Counter::new(),
            fault_events: Counter::new(),
            wl_errors: Histogram::with_cap(32),
            bl_errors_per_neighbor: Histogram::with_cap(32),
            errors_per_verification: Histogram::with_cap(32),
        }
    }

    /// Merges another bank lane's statistics into this one. Every field
    /// is a commutative aggregate (counters, cycle sums, bucketed
    /// histograms/sketches), so merging lane tallies in fixed bank order
    /// reproduces the totals a single global tally would have collected.
    pub fn merge(&mut self, other: &CtrlStats) {
        self.reads.merge(other.reads);
        self.read_forwards.merge(other.read_forwards);
        self.writes.merge(other.writes);
        self.read_latency_total += other.read_latency_total;
        self.read_latency_sketch.merge(&other.read_latency_sketch);
        self.phases.merge(&other.phases);
        self.correction_ops.merge(other.correction_ops);
        self.corrected_cells.merge(other.corrected_cells);
        self.ecp_records.merge(other.ecp_records);
        self.verification_ops.merge(other.verification_ops);
        self.cascade_rounds.merge(other.cascade_rounds);
        self.cascade_overflows.merge(other.cascade_overflows);
        self.write_cancellations.merge(other.write_cancellations);
        self.write_pauses.merge(other.write_pauses);
        self.gap_moves.merge(other.gap_moves);
        self.prereads_issued.merge(other.prereads_issued);
        self.preread_forwards.merge(other.preread_forwards);
        self.drains.merge(other.drains);
        self.ecp_exhaustions.merge(other.ecp_exhaustions);
        self.correction_retries.merge(other.correction_retries);
        self.immediate_corrections
            .merge(other.immediate_corrections);
        self.decommissions.merge(other.decommissions);
        self.salvaged_reads.merge(other.salvaged_reads);
        self.salvaged_writes.merge(other.salvaged_writes);
        self.salvage_rejections.merge(other.salvage_rejections);
        self.ecp_overflow_fixes.merge(other.ecp_overflow_fixes);
        self.internal_anomalies.merge(other.internal_anomalies);
        self.fault_events.merge(other.fault_events);
        self.wl_errors.merge(&other.wl_errors);
        self.bl_errors_per_neighbor
            .merge(&other.bl_errors_per_neighbor);
        self.errors_per_verification
            .merge(&other.errors_per_verification);
    }

    /// Average demand-read latency in cycles.
    #[must_use]
    pub fn avg_read_latency(&self) -> f64 {
        let n = self.reads.get();
        if n == 0 {
            0.0
        } else {
            self.read_latency_total.0 as f64 / n as f64
        }
    }

    /// Correction operations per demand write (Figure 12's metric).
    #[must_use]
    pub fn corrections_per_write(&self) -> f64 {
        self.correction_ops.per(self.writes.get())
    }

    /// ECP records per demand write.
    #[must_use]
    pub fn ecp_records_per_write(&self) -> f64 {
        self.ecp_records.per(self.writes.get())
    }

    /// Upper bound of the read-latency `q`-quantile, in cycles.
    #[must_use]
    pub fn read_latency_quantile(&self, q: f64) -> u64 {
        self.read_latency_sketch.quantile(q)
    }
}

impl Default for CtrlStats {
    fn default() -> Self {
        CtrlStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = CtrlStats::new();
        s.reads.add(4);
        s.read_latency_total = Cycle(1600);
        assert_eq!(s.avg_read_latency(), 400.0);
        s.writes.add(10);
        s.correction_ops.add(5);
        assert_eq!(s.corrections_per_write(), 0.5);
        s.ecp_records.add(20);
        assert_eq!(s.ecp_records_per_write(), 2.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CtrlStats::new();
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.corrections_per_write(), 0.0);
    }

    #[test]
    fn phase_totals() {
        let p = PhaseCycles {
            pre_reads: Cycle(100),
            post_reads: Cycle(200),
            cascade_reads: Cycle(50),
            corrections: Cycle(30),
            ecp_writes: Cycle(20),
            ..PhaseCycles::default()
        };
        assert_eq!(p.verification_total(), Cycle(300));
        assert_eq!(p.correction_total(), Cycle(100));
    }
}
