//! Mechanism switches of the controller.
//!
//! One [`CtrlScheme`] value captures which of the paper's mechanisms are
//! active. The named constructors correspond to the compared schemes of
//! §5.3; the general struct supports every ablation in between.

use sdpcm_wd::scaling::ArraySpacing;

/// Which mechanisms the controller runs with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrlScheme {
    /// Cell-array spacing — sets the disturbance probabilities (4F² super
    /// dense suffers bit-line WD; 8F² DIN does not).
    pub spacing: ArraySpacing,
    /// Verify-and-correct adjacent lines on writes (needed for super
    /// dense arrays; pointless for the DIN array).
    pub vnc: bool,
    /// Buffer WD errors in spare ECP entries instead of correcting
    /// eagerly (§4.2).
    pub lazy_correction: bool,
    /// Issue pre-write reads from the write queue during idle bank time
    /// (§4.3).
    pub preread: bool,
    /// Cancel uncommitted writes when a read arrives (§6.8).
    pub write_cancellation: bool,
    /// Pause an in-flight write between VnC phases to serve pending
    /// reads, then resume — the non-destructive alternative to
    /// cancellation from the same proposal [Qureshi et al., HPCA'10].
    pub write_pausing: bool,
    /// Encode lines with DIN against word-line disturbance (both the DIN
    /// baseline and SD-PCM use it).
    pub din_wordline: bool,
    /// Post-write read of the written line to catch residual word-line
    /// errors (the DIN "check and rewrite" step).
    pub own_line_verify: bool,
    /// Start-Gap wear levelling [MICRO'09]: move the per-bank gap every
    /// ψ demand writes. Requires the (1:1) allocator — the physical
    /// rotation breaks (n:m) strip marking (see `wearlevel`).
    pub start_gap_psi: Option<u32>,
    /// Ablation: make LazyCorrection's ECP record write occupy the bank
    /// like a data operation. By default the record is overlapped — it
    /// targets the separate (low-density, WD-free) ECP chip, so the data
    /// chips can proceed with the next operation (§4.2, Figure 7).
    pub ecp_write_inline: bool,
}

impl CtrlScheme {
    /// §5.3 `DIN`: 8F² array, WD-free along bit-lines, no VnC needed.
    #[must_use]
    pub fn din() -> CtrlScheme {
        CtrlScheme {
            spacing: ArraySpacing::din_enhanced(),
            vnc: false,
            lazy_correction: false,
            preread: false,
            write_cancellation: false,
            write_pausing: false,
            din_wordline: true,
            own_line_verify: true,
            start_gap_psi: None,
            ecp_write_inline: false,
        }
    }

    /// §5.3 `baseline`: super dense 4F² array with basic VnC.
    #[must_use]
    pub fn baseline_vnc() -> CtrlScheme {
        CtrlScheme {
            spacing: ArraySpacing::super_dense(),
            vnc: true,
            lazy_correction: false,
            preread: false,
            write_cancellation: false,
            write_pausing: false,
            din_wordline: true,
            own_line_verify: true,
            start_gap_psi: None,
            ecp_write_inline: false,
        }
    }

    /// §5.3 `LazyC`: LazyCorrection on top of the baseline.
    #[must_use]
    pub fn lazyc() -> CtrlScheme {
        CtrlScheme {
            lazy_correction: true,
            ..CtrlScheme::baseline_vnc()
        }
    }

    /// §5.3 `PreRead` on top of the baseline.
    #[must_use]
    pub fn preread() -> CtrlScheme {
        CtrlScheme {
            preread: true,
            ..CtrlScheme::baseline_vnc()
        }
    }

    /// `LazyC + PreRead` (the paper's best non-allocator combination).
    #[must_use]
    pub fn lazyc_preread() -> CtrlScheme {
        CtrlScheme {
            lazy_correction: true,
            preread: true,
            ..CtrlScheme::baseline_vnc()
        }
    }

    /// Adds write cancellation to any scheme.
    #[must_use]
    pub fn with_write_cancellation(self) -> CtrlScheme {
        CtrlScheme {
            write_cancellation: true,
            ..self
        }
    }

    /// Adds write pausing to any scheme.
    #[must_use]
    pub fn with_write_pausing(self) -> CtrlScheme {
        CtrlScheme {
            write_pausing: true,
            ..self
        }
    }

    /// An unprotected super dense array (no VnC at all) — not a paper
    /// scheme; used by tests to demonstrate that disturbance corrupts
    /// data without mitigation.
    #[must_use]
    pub fn unprotected_super_dense() -> CtrlScheme {
        CtrlScheme {
            spacing: ArraySpacing::super_dense(),
            vnc: false,
            lazy_correction: false,
            preread: false,
            write_cancellation: false,
            write_pausing: false,
            din_wordline: true,
            own_line_verify: false,
            start_gap_psi: None,
            ecp_write_inline: false,
        }
    }

    /// Adds Start-Gap wear levelling with the given ψ.
    #[must_use]
    pub fn with_start_gap(self, psi: u32) -> CtrlScheme {
        CtrlScheme {
            start_gap_psi: Some(psi),
            ..self
        }
    }

    /// Ablation: charge ECP record writes as bank-occupying operations.
    #[must_use]
    pub fn with_inline_ecp_writes(self) -> CtrlScheme {
        CtrlScheme {
            ecp_write_inline: true,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn din_needs_no_vnc() {
        let s = CtrlScheme::din();
        assert!(!s.vnc);
        assert_eq!(s.spacing, ArraySpacing::din_enhanced());
        assert!(s.din_wordline);
    }

    #[test]
    fn baseline_is_super_dense_with_vnc() {
        let s = CtrlScheme::baseline_vnc();
        assert!(s.vnc);
        assert!(!s.lazy_correction && !s.preread && !s.write_cancellation);
        assert_eq!(s.spacing, ArraySpacing::super_dense());
    }

    #[test]
    fn combinators_layer_correctly() {
        let s = CtrlScheme::lazyc_preread().with_write_cancellation();
        assert!(s.vnc && s.lazy_correction && s.preread && s.write_cancellation);
        let s = CtrlScheme::lazyc().with_write_pausing();
        assert!(s.write_pausing && !s.write_cancellation);
    }
}
