//! Typed controller errors and the diagnostic snapshot they carry.
//!
//! The controller's steady-state API ([`crate::MemoryController::submit`]
//! and [`crate::MemoryController::advance`]) never panics: invalid
//! requests and broken internal invariants surface as a [`CtrlError`]
//! carrying a [`CtrlSnapshot`] of the queues at detection time, so a
//! failed multi-hour run ends with an actionable diagnosis instead of a
//! backtrace.

use sdpcm_engine::Cycle;
use sdpcm_osalloc::NmRatio;
use sdpcm_pcm::geometry::LineAddr;

/// Queue state of one bank at snapshot time (idle banks are omitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankSnapshot {
    /// Bank index.
    pub bank: u16,
    /// Pending demand reads.
    pub read_q: usize,
    /// Buffered writes.
    pub write_q: usize,
    /// Whether an operation occupies the bank.
    pub busy: bool,
    /// Whether a write job is parked between phases.
    pub paused: bool,
    /// Whether the bank is in a bursty drain.
    pub draining: bool,
}

/// Controller state attached to errors (and to the system's livelock
/// report): enough to see where requests piled up.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CtrlSnapshot {
    /// Simulation cycle at capture.
    pub cycle: Cycle,
    /// Banks with an operation in flight.
    pub in_flight: usize,
    /// Demand reads queued across all banks.
    pub queued_reads: usize,
    /// Writes buffered across all banks.
    pub queued_writes: usize,
    /// Per-bank detail for every non-idle bank.
    pub banks: Vec<BankSnapshot>,
}

impl std::fmt::Display for CtrlSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {}: {} banks busy, {} reads / {} writes queued",
            self.cycle.0, self.in_flight, self.queued_reads, self.queued_writes
        )?;
        for b in &self.banks {
            write!(
                f,
                "; bank {} [r={} w={}{}{}{}]",
                b.bank,
                b.read_q,
                b.write_q,
                if b.busy { " busy" } else { "" },
                if b.paused { " paused" } else { "" },
                if b.draining { " draining" } else { "" },
            )?;
        }
        Ok(())
    }
}

/// Errors surfaced at the controller API boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlError {
    /// A rejected configuration field (see
    /// [`crate::CtrlConfig::validate`]).
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A request addressed a bank outside the geometry.
    BankOutOfRange {
        /// The requested bank.
        bank: u16,
        /// Banks the device actually has.
        banks: usize,
    },
    /// Start-Gap wear leveling composed with a non-(1:1) allocator (the
    /// rotation would break strip marking).
    StartGapRatio {
        /// The offending allocator ratio.
        ratio: NmRatio,
    },
    /// A request touched a bank's Start-Gap spare line.
    SpareLineAccess {
        /// The offending address.
        addr: LineAddr,
    },
    /// A deep scheduling invariant broke; the queues at detection time
    /// are attached. The controller stays safe to drop but its further
    /// behaviour is unspecified — the run should stop.
    InternalAnomaly {
        /// What was violated.
        what: &'static str,
        /// Queue state when the anomaly surfaced.
        snapshot: CtrlSnapshot,
    },
}

impl std::fmt::Display for CtrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlError::InvalidConfig { field, reason } => {
                write!(f, "invalid controller config: {field} {reason}")
            }
            CtrlError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (device has {banks})")
            }
            CtrlError::StartGapRatio { ratio } => write!(
                f,
                "Start-Gap composes only with the (1:1) allocator, got {ratio}"
            ),
            CtrlError::SpareLineAccess { addr } => {
                write!(f, "request touches Start-Gap's spare line ({addr})")
            }
            CtrlError::InternalAnomaly { what, snapshot } => {
                write!(f, "internal anomaly: {what} [{snapshot}]")
            }
        }
    }
}

impl std::error::Error for CtrlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_diagnostics() {
        let snap = CtrlSnapshot {
            cycle: Cycle(1234),
            in_flight: 1,
            queued_reads: 2,
            queued_writes: 3,
            banks: vec![BankSnapshot {
                bank: 7,
                read_q: 2,
                write_q: 3,
                busy: true,
                paused: false,
                draining: true,
            }],
        };
        let e = CtrlError::InternalAnomaly {
            what: "bank had no op",
            snapshot: snap,
        };
        let msg = e.to_string();
        assert!(msg.contains("cycle 1234"));
        assert!(msg.contains("bank 7"));
        assert!(msg.contains("draining"));
    }

    #[test]
    fn config_error_names_field() {
        let e = CtrlError::InvalidConfig {
            field: "write_queue_cap",
            reason: "must be > 0",
        };
        assert!(e.to_string().contains("write_queue_cap"));
    }
}
