//! Start-Gap wear levelling [Qureshi et al., MICRO'09] (paper §7).
//!
//! PCM lines wear out; hot lines die first unless writes are spread.
//! Start-Gap provisions one spare line per region and rotates a *gap*
//! through the physical slots: every ψ demand writes, the line adjacent
//! to the gap is copied into it and the gap moves one slot, so every
//! logical line slowly migrates through every physical slot.
//!
//! This module implements the address algebra; the controller performs
//! the actual copies through its normal write path (so gap-move writes
//! are subject to write disturbance and VnC like any other write — an
//! interaction the original proposals never had to consider).
//!
//! Composition caveat (documented in DESIGN.md): Start-Gap remaps lines
//! *physically*, which silently breaks (n:m)-Alloc's assumption that
//! marked strips stay where the OS put them. The controller therefore
//! accepts Start-Gap only with the (1:1) allocator.
//!
//! State per region of `n` logical lines over `n + 1` physical slots:
//!
//! ```text
//! map(la)  = (la + start) mod n;  if map >= gap { map += 1 }
//! move:      gap > 0:  copy slot[gap-1] -> slot[gap]; gap -= 1
//!            gap == 0: copy slot[n]     -> slot[0];   gap = n;
//!                      start = (start + 1) mod n
//! ```

/// The Start-Gap state of one region.
///
/// # Examples
///
/// ```
/// use sdpcm_memctrl::wearlevel::StartGap;
///
/// let mut sg = StartGap::new(8, 4); // 8 logical lines, move every 4 writes
/// assert_eq!(sg.map(3), 3); // identity before any move
/// assert!(sg.note_write().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartGap {
    n: u64,
    start: u64,
    gap: u64,
    psi: u32,
    writes: u32,
    moves: u64,
}

/// One pending gap move: copy the line at `from` into `to` (physical
/// slot indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapMove {
    /// Source physical slot.
    pub from: u64,
    /// Destination physical slot (the current gap).
    pub to: u64,
}

impl StartGap {
    /// Creates a region of `n` logical lines (physical slots `0..=n`),
    /// moving the gap every `psi` demand writes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `psi == 0`.
    #[must_use]
    pub fn new(n: u64, psi: u32) -> StartGap {
        assert!(n >= 2, "a region needs at least two lines");
        assert!(psi > 0, "gap must move eventually");
        StartGap {
            n,
            start: 0,
            gap: n,
            psi,
            writes: 0,
            moves: 0,
        }
    }

    /// Logical lines in the region.
    #[must_use]
    pub fn logical_lines(&self) -> u64 {
        self.n
    }

    /// Total gap moves performed.
    #[must_use]
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Maps a logical line to its current physical slot.
    ///
    /// # Panics
    ///
    /// Panics if `la >= n`.
    #[must_use]
    pub fn map(&self, la: u64) -> u64 {
        assert!(la < self.n, "logical line out of range");
        let pa = (la + self.start) % self.n;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }

    /// The data movement the *next* gap move will perform.
    #[must_use]
    pub fn peek_move(&self) -> GapMove {
        if self.gap == 0 {
            GapMove {
                from: self.n,
                to: 0,
            }
        } else {
            GapMove {
                from: self.gap - 1,
                to: self.gap,
            }
        }
    }

    /// Advances the gap by one slot, returning the copy to perform.
    /// The mapping returned by [`StartGap::map`] reflects the move
    /// immediately; the caller must enqueue the copy through a path with
    /// store-forwarding (so reads of the moving line stay consistent).
    pub fn advance_gap(&mut self) -> GapMove {
        let mv = self.peek_move();
        if self.gap == 0 {
            self.gap = self.n;
            self.start = (self.start + 1) % self.n;
        } else {
            self.gap -= 1;
        }
        self.moves += 1;
        mv
    }

    /// Notes one demand write; every ψ-th returns the gap move to
    /// perform.
    pub fn note_write(&mut self) -> Option<GapMove> {
        self.writes += 1;
        if self.writes >= self.psi {
            self.writes = 0;
            Some(self.advance_gap())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Simulates the physical array to confirm mapping and copies agree.
    struct Sim {
        sg: StartGap,
        slots: Vec<Option<u64>>, // physical slot -> logical line stored
    }

    impl Sim {
        fn new(n: u64, psi: u32) -> Sim {
            let sg = StartGap::new(n, psi);
            let mut slots = vec![None; (n + 1) as usize];
            for la in 0..n {
                slots[sg.map(la) as usize] = Some(la);
            }
            Sim { sg, slots }
        }

        fn step(&mut self) {
            let mv = self.sg.advance_gap();
            let moved = self.slots[mv.from as usize].take();
            assert!(moved.is_some(), "gap move from an empty slot");
            assert!(
                self.slots[mv.to as usize].is_none(),
                "gap move into an occupied slot"
            );
            self.slots[mv.to as usize] = moved;
        }

        fn verify(&self) {
            for la in 0..self.sg.logical_lines() {
                let pa = self.sg.map(la);
                assert_eq!(
                    self.slots[pa as usize],
                    Some(la),
                    "line {la} mapped to slot {pa} after {} moves",
                    self.sg.moves()
                );
            }
        }
    }

    #[test]
    fn identity_before_first_move() {
        let sg = StartGap::new(16, 4);
        for la in 0..16 {
            assert_eq!(sg.map(la), la);
        }
    }

    #[test]
    fn mapping_is_injective_forever() {
        let mut sg = StartGap::new(7, 1);
        for _ in 0..200 {
            let mapped: HashSet<u64> = (0..7).map(|la| sg.map(la)).collect();
            assert_eq!(mapped.len(), 7, "mapping collision");
            assert!(mapped.iter().all(|&p| p <= 7), "slot out of range");
            let _ = sg.advance_gap();
        }
    }

    #[test]
    fn copies_track_the_mapping_exactly() {
        // The load-bearing invariant: after every move, the data the
        // copies produced sits where the mapping points.
        for n in [2u64, 3, 5, 8, 64] {
            let mut sim = Sim::new(n, 1);
            sim.verify();
            for _ in 0..(3 * (n + 1) * n) {
                sim.step();
                sim.verify();
            }
        }
    }

    #[test]
    fn every_line_visits_every_slot() {
        // Full wear levelling: over enough moves, each logical line
        // occupies each physical slot at least once.
        let n = 6u64;
        let mut sim = Sim::new(n, 1);
        let mut visited: Vec<HashSet<u64>> = vec![HashSet::new(); n as usize];
        for _ in 0..((n + 1) * n * 2) {
            sim.step();
            for la in 0..n {
                visited[la as usize].insert(sim.sg.map(la));
            }
        }
        for (la, slots) in visited.iter().enumerate() {
            assert_eq!(
                slots.len(),
                (n + 1) as usize,
                "line {la} visited only {:?}",
                slots
            );
        }
    }

    #[test]
    fn note_write_fires_every_psi() {
        let mut sg = StartGap::new(8, 3);
        let mut moves = 0;
        for i in 1..=30 {
            if sg.note_write().is_some() {
                moves += 1;
                assert_eq!(i % 3, 0, "move off schedule at write {i}");
            }
        }
        assert_eq!(moves, 10);
        assert_eq!(sg.moves(), 10);
    }

    #[test]
    fn peek_matches_advance() {
        let mut sg = StartGap::new(5, 1);
        for _ in 0..40 {
            let peek = sg.peek_move();
            assert_eq!(sg.advance_gap(), peek);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_line_panics() {
        let _ = StartGap::new(4, 1).map(4);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_region_panics() {
        let _ = StartGap::new(1, 1);
    }
}
