#![warn(missing_docs)]

//! The SD-PCM memory controller.
//!
//! This crate is the heart of the reproduction: a cycle-accurate,
//! event-driven model of the PCM memory controller with every mechanism
//! the paper evaluates:
//!
//! * **basic VnC** (§3.2) — a write to a super dense line pre-reads both
//!   bit-line-adjacent lines, writes, post-reads and verifies them, and
//!   corrects disturbed cells with RESET pulses; corrections can disturb
//!   *their* neighbours, triggering cascading verification.
//! * **LazyCorrection** (§4.2) — buffered WD errors live in the line's
//!   spare ECP entries (on a low-density, WD-free ECP chip); the
//!   expensive correction fires only when `X + Y > N`, and a normal write
//!   to the line clears its buffered errors for free.
//! * **PreRead** (§4.3) — the two pre-write reads are issued while the
//!   write waits in the queue, using idle bank slots, with forwarding
//!   when the adjacent line itself sits in the write queue.
//! * **(n:m)-Alloc support** (§4.4) — the per-request allocator tag and
//!   the [`sdpcm_osalloc::VerifyPolicy`] decide which
//!   neighbours need VnC at all.
//! * **Write cancellation** (§6.8) — reads may cancel an in-flight write
//!   that has not yet committed to the array; cancelled RESET pulses
//!   still disturb neighbours, modelling the paper's warning that
//!   repeated writes amplify WD.
//!
//! Robustness: the steady-state API ([`MemoryController::submit`] /
//! [`MemoryController::advance`]) returns typed [`CtrlError`]s instead of
//! panicking, ECP exhaustion under LazyCorrection degrades through a
//! retry → escalate → decommission ladder, and a chaos scenario
//! ([`sdpcm_wd::chaos`]) can be installed to stress all of it
//! deterministically.
//!
//! Organization: [`req`] (requests/completions), [`scheme`] (mechanism
//! switches), [`stats`] (counters behind Figures 4, 5, 11–19),
//! [`writejob`] (the multi-phase write state machine), [`error`] (typed
//! errors + diagnostic snapshots), and [`ctrl`] (the controller: queues,
//! banks, scheduling).

pub mod ctrl;
pub mod error;
pub mod req;
pub mod scheme;
pub mod stats;
pub mod wearlevel;
pub mod writejob;

pub use ctrl::{CtrlConfig, MemoryController};
pub use error::{BankSnapshot, CtrlError, CtrlSnapshot};
pub use req::{Access, AccessKind, Completion, ReqId};
pub use scheme::CtrlScheme;
pub use stats::CtrlStats;
pub use wearlevel::StartGap;
