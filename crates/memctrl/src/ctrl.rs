//! The memory controller: queues, bank scheduling, and the VnC engine.
//!
//! Event-driven: the system calls [`MemoryController::submit`] to hand in
//! requests, [`MemoryController::next_event`] to learn when the earliest
//! in-flight bank operation finishes, and [`MemoryController::advance`]
//! to process everything up to a time and collect completions.
//!
//! Per bank (Table 2: 16 banks, 32-entry write queue per bank):
//!
//! * reads have priority and queue FIFO;
//! * writes buffer in the write queue; when it fills, the bank enters a
//!   bursty drain that blocks reads until the queue is empty (§5.1) —
//!   unless write cancellation is on, in which case reads preempt and
//!   may cancel the uncommitted write in flight;
//! * a write executes as a [`WriteJob`] — the multi-phase VnC sequence —
//!   whose steps occupy the bank back to back;
//! * with PreRead enabled, idle banks run pre-write reads for queued
//!   writes, and pre-reads whose target sits in the write queue are
//!   forwarded for free;
//! * reads that hit a queued write are forwarded from the queue.
//!
//! Modelling notes: the read-before-write of differential write is folded
//! into the write latency (Table 2 reports write latencies as-is); the
//! shared channel bus (≈8 cycles per 64 B burst) is not modelled — it is
//! two orders of magnitude below the array latencies that dominate.

use std::collections::VecDeque;

use sdpcm_engine::hash::{FxHashMap, FxHashSet};
use sdpcm_engine::prof::{self, Site};
use sdpcm_engine::{Cycle, RngStream, SimRng};
use sdpcm_osalloc::{NmRatio, VerifyPolicy};
use sdpcm_pcm::ecp::EcpKind;
use sdpcm_pcm::energy::{EnergyMeter, EnergyParams};
use sdpcm_pcm::geometry::{LineAddr, MemGeometry};
use sdpcm_pcm::line::{DiffMask, LineBuf};
use sdpcm_pcm::store::{DeviceStore, InitContent, StoreLane};
use sdpcm_pcm::timing::PcmTiming;
use sdpcm_pcm::wear::{HardErrorModel, WriteClass};
use sdpcm_wd::chaos::{ChaosAction, ChaosEngine, ChaosPlan, FaultEvent};
use sdpcm_wd::din::{DinCodec, DinFlags};
use sdpcm_wd::{DisturbanceModel, WdInjector};

use crate::error::{BankSnapshot, CtrlError, CtrlSnapshot};
use crate::req::{Access, AccessKind, Completion, ReqId};
use crate::scheme::CtrlScheme;
use crate::stats::CtrlStats;
use crate::wearlevel::StartGap;
use crate::writejob::{Side, Step, WqEntry, WriteJob, MAX_JOB_STEPS};

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrlConfig {
    /// PCM array timing.
    pub timing: PcmTiming,
    /// Write-queue entries per bank (Table 2: 32).
    pub write_queue_cap: usize,
    /// Writes serviced per bursty drain before the bank is released back
    /// to reads. A full queue re-triggers immediately, so sustained write
    /// pressure degenerates to back-to-back bursts; light pressure gets
    /// short, bounded read-blocking windows regardless of queue capacity.
    pub drain_burst: usize,
    /// Mechanism switches.
    pub scheme: CtrlScheme,
    /// Latency of a read forwarded from the write queue.
    pub forward_latency: Cycle,
    /// ECP entries per line (ECP-N; the paper's default is 6).
    pub ecp_entries: usize,
    /// Degradation ladder, rung 1: LazyCorrection exhaustion events a
    /// line may answer with plain verify-and-correct retries before it
    /// is escalated.
    pub ecp_retry_cap: u32,
    /// Degradation ladder, rung 3: total exhaustion events after which
    /// an escalated line is decommissioned into the salvage pool.
    /// Must exceed `ecp_retry_cap`.
    pub decommission_after: u32,
    /// Capacity of each bank's salvage pool (controller-held line
    /// buffers serving decommissioned lines at `forward_latency`).
    /// Per bank so decommission decisions stay bank-local — a
    /// requirement of the sharded advance path.
    pub salvage_pool_lines: usize,
}

impl CtrlConfig {
    /// Table 2 defaults with the given scheme.
    #[must_use]
    pub fn table2(scheme: CtrlScheme) -> CtrlConfig {
        CtrlConfig {
            timing: PcmTiming::table2(),
            write_queue_cap: 32,
            drain_burst: 8,
            scheme,
            forward_latency: Cycle(20),
            ecp_entries: 6,
            ecp_retry_cap: 2,
            decommission_after: 8,
            salvage_pool_lines: 64,
        }
    }

    /// Rejects configurations the controller cannot run with.
    pub fn validate(&self) -> Result<(), CtrlError> {
        if self.write_queue_cap == 0 {
            return Err(CtrlError::InvalidConfig {
                field: "write_queue_cap",
                reason: "must be > 0",
            });
        }
        if self.drain_burst == 0 {
            return Err(CtrlError::InvalidConfig {
                field: "drain_burst",
                reason: "must be > 0",
            });
        }
        if self.decommission_after <= self.ecp_retry_cap {
            return Err(CtrlError::InvalidConfig {
                field: "decommission_after",
                reason: "must exceed ecp_retry_cap so every ladder rung can fire",
            });
        }
        Ok(())
    }
}

/// Committed-write addresses remembered as chaos-burst victim
/// candidates.
const RECENT_WRITES_CAP: usize = 64;

#[derive(Debug)]
enum BankOp {
    Read(Access),
    IdlePreRead { write_line: LineAddr, side: Side },
    Write(Box<WriteJob>),
}

#[derive(Debug, Default)]
struct Bank {
    busy_until: Cycle,
    op: Option<BankOp>,
    /// A write job set aside between phases to serve reads (write
    /// pausing); resumed when the read queue empties.
    paused: Option<Box<WriteJob>>,
    read_q: VecDeque<Access>,
    write_q: VecDeque<WqEntry>,
    /// Per-address entry count for `write_q` — the membership index that
    /// answers the hot path's "is this line queued?" in O(1) instead of a
    /// linear scan. A *count* rather than a set: coalescing keeps demand
    /// writes unique, but a cancelled write is pushed back at the front
    /// while a later write to the same line may already have queued
    /// behind it, so an address can transiently hold two entries.
    wq_index: FxHashMap<LineAddr, u32>,
    draining: bool,
    /// Writes left in the current burst.
    drain_left: usize,
    /// End-of-run flush: drain to empty, ignoring the burst bound.
    flushing: bool,
}

impl Bank {
    /// Whether any queued write targets `addr` (O(1) index probe). The
    /// scans that need the entry itself still walk the queue, but only
    /// after this says there is something to find.
    #[inline]
    fn wq_contains(&self, addr: LineAddr) -> bool {
        !self.wq_index.is_empty() && self.wq_index.contains_key(&addr)
    }

    /// Index maintenance for a `write_q` push (front or back).
    #[inline]
    fn wq_note_push(&mut self, addr: LineAddr) {
        *self.wq_index.entry(addr).or_insert(0) += 1;
    }

    /// Index maintenance for a `write_q` removal (pop or mid-queue).
    #[inline]
    fn wq_note_remove(&mut self, addr: LineAddr) {
        match self.wq_index.get_mut(&addr) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.wq_index.remove(&addr);
            }
            None => debug_assert!(false, "write-queue index lost {addr}"),
        }
    }
}

/// Read-only context shared by every bank lane during processing.
///
/// Everything a lane needs that is not per-bank state: configuration,
/// geometry, the verification policy, the (pure) disturbance injector,
/// the DIN codec, and the counter-based key material for hard-error
/// planting. All of it is either a shared borrow of controller state or
/// `Copy` data, so one instance can be handed to many worker threads.
struct LaneShared<'a> {
    cfg: &'a CtrlConfig,
    geometry: &'a MemGeometry,
    policy: &'a VerifyPolicy,
    injector: &'a WdInjector,
    codec: &'a Option<DinCodec>,
    hard_plan: Option<(HardErrorModel, f64)>,
    /// Root stream for first-touch hard-error planting; each line draws
    /// from `plant_stream.keyed(line.stream_key())`, so planting is
    /// independent of the order lines are first touched in.
    plant_stream: RngStream,
    /// Whether lanes must remember committed write addresses for the
    /// chaos harness (only while a chaos plan is installed).
    track_commits: bool,
}

/// All mutable per-bank controller state.
///
/// Each bank owns its queues, its architectural metadata (DIN flags,
/// salvage pool, degradation ladder), and — crucially — its *own
/// permanent accumulators* (statistics, energy, completions). Per-bank
/// accumulation keeps every floating-point and histogram sum in a fixed
/// bank-local order regardless of how lanes are scheduled across worker
/// threads; [`MemoryController::stats`] folds the lanes together in
/// bank order at read time, so aggregate totals are path-independent.
struct LaneState {
    bank_id: u16,
    bank: Bank,
    /// DIN flags of lines in this bank.
    flags: FxHashMap<LineAddr, DinFlags>,
    /// Decommissioned lines and their architectural contents, served
    /// from controller buffers at `forward_latency`.
    salvaged: FxHashMap<LineAddr, LineBuf>,
    /// LazyCorrection exhaustion events per line (degradation ladder).
    distress: FxHashMap<LineAddr, u32>,
    /// Lines past the retry cap: ECP buffering is no longer attempted.
    escalated: FxHashSet<LineAddr>,
    /// Lines whose first-touch hard errors have been planted.
    planted: FxHashSet<LineAddr>,
    /// Injection epoch per line: how many programming operations have
    /// disturbed from this line so far. Keys the injector's event
    /// stream, making each injection's draws independent of every
    /// other line's activity.
    inject_epochs: FxHashMap<LineAddr, u64>,
    /// This lane's statistics slice (bank-local accumulation order).
    stats: CtrlStats,
    /// This lane's energy slice.
    energy: EnergyMeter,
    /// Completions queued by this lane, drained by `advance_into`.
    completions: Vec<Completion>,
    /// Earliest queued completion (exact: pushes can only lower it,
    /// drains recompute it).
    completion_min: Option<Cycle>,
    /// First broken deep invariant seen by this lane, surfaced as a
    /// `CtrlError` at the next `submit`/`advance`.
    pending_anomaly: Option<&'static str>,
    /// Next sequence number for internal (gap-move) request IDs.
    next_internal_seq: u64,
    /// Scratch: word-line victims of the most recent injection.
    wl_scratch: Vec<u16>,
    /// Scratch: per-side bit-line victims of the most recent
    /// [`Lane::inject_for`] call — valid until the next one.
    bl_hits: [Vec<u16>; 2],
    /// Committed write addresses not yet handed to the chaos harness
    /// (only populated while a chaos plan is installed).
    recent_commits: Vec<LineAddr>,
}

impl LaneState {
    fn new(bank_id: u16) -> LaneState {
        LaneState {
            bank_id,
            bank: Bank::default(),
            flags: FxHashMap::default(),
            salvaged: FxHashMap::default(),
            distress: FxHashMap::default(),
            escalated: FxHashSet::default(),
            planted: FxHashSet::default(),
            inject_epochs: FxHashMap::default(),
            stats: CtrlStats::new(),
            energy: EnergyMeter::new(EnergyParams::default()),
            completions: Vec::new(),
            completion_min: None,
            pending_anomaly: None,
            next_internal_seq: 0,
            wl_scratch: Vec::new(),
            bl_hits: [Vec::new(), Vec::new()],
            recent_commits: Vec::new(),
        }
    }

    /// Queues a completion, keeping the earliest-completion cache exact.
    fn push_completion(&mut self, c: Completion) {
        if self.completion_min.is_none_or(|m| c.at < m) {
            self.completion_min = Some(c.at);
        }
        self.completions.push(c);
    }

    /// Records a broken deep invariant; the first one is surfaced as a
    /// [`CtrlError::InternalAnomaly`] at the next API-boundary call.
    fn note_anomaly(&mut self, what: &'static str) {
        self.stats.internal_anomalies.inc();
        if self.pending_anomaly.is_none() {
            self.pending_anomaly = Some(what);
        }
    }

    /// Allocates a request ID for an internal (gap-move) write. IDs
    /// count down from the top of a per-bank window so they never
    /// collide with demand IDs or with another bank's internal IDs.
    fn alloc_internal_id(&mut self) -> ReqId {
        let id = u64::MAX - (u64::from(self.bank_id) << 40) - self.next_internal_seq;
        self.next_internal_seq += 1;
        ReqId(id)
    }
}

/// A bank lane: one bank's mutable state plus its disjoint slice of the
/// device store, processed against the shared read-only context. The
/// entire per-bank controller logic lives here; lanes touch nothing
/// outside their own bank (bit-line neighbours are same-bank adjacent
/// rows), so distinct lanes can run on distinct threads.
struct Lane<'a, 's> {
    sh: &'a LaneShared<'a>,
    ls: &'a mut LaneState,
    store: &'a mut StoreLane<'s>,
}

/// Runs one lane's due work on each `(LaneState, StoreLane)` pair of a
/// worker's chunk — the body of both the spawned threads and the main
/// thread's share of [`MemoryController::process_until_parallel`].
fn run_lane_chunk(sh: &LaneShared<'_>, chunk: &mut [(&mut LaneState, StoreLane<'_>)], now: Cycle) {
    for (ls, store) in chunk.iter_mut() {
        Lane { sh, ls, store }.process_lane_until(now);
    }
}

/// Clears from `patched` every cell of `line` that `job` still tracks
/// as disturbed-but-unfixed: cells of queued corrections and ECP
/// records, cascade victims awaiting verification, and injected
/// bit-line victims whose post-read has not resolved yet. Used by
/// decommissioning to reconstruct the true architectural content.
fn cleanse_job_disturbances(
    geometry: &MemGeometry,
    job: &WriteJob,
    line: LineAddr,
    patched: &mut LineBuf,
) {
    for s in &job.steps {
        match s {
            Step::Correction { line: l, cells } | Step::EcpWrite { line: l, cells }
                if *l == line =>
            {
                for &bit in cells {
                    patched.set_bit(bit as usize, false);
                }
            }
            _ => {}
        }
    }
    for (l, cells) in &job.cascade_pending {
        if *l == line {
            for &bit in cells {
                patched.set_bit(bit as usize, false);
            }
        }
    }
    let neighbors = geometry.bitline_neighbors(job.entry.access.addr);
    for side in Side::BOTH {
        if neighbors[side.idx()] == Some(line) {
            for &bit in &job.injected[side.idx()] {
                patched.set_bit(bit as usize, false);
            }
        }
    }
}

impl Lane<'_, '_> {
    /// Brings this lane current to `now`: completes every due bank
    /// operation in sequence and re-dispatches after each. Lanes are
    /// mutually independent, so processing one to completion before
    /// (or concurrently with) another yields the same per-lane states
    /// as the old global time-ordered interleave.
    fn process_lane_until(&mut self, now: Cycle) {
        while self.ls.bank.op.is_some() && self.ls.bank.busy_until <= now {
            let at = self.ls.bank.busy_until;
            self.complete_op(at);
            self.dispatch(at);
        }
    }

    /// The architectural (error-corrected, DIN-decoded) contents of a
    /// line in this bank — zero simulated time.
    fn architectural_line(&self, addr: LineAddr) -> LineBuf {
        if let Some(data) = self.ls.salvaged.get(&addr) {
            return *data;
        }
        let patched = self.store.read_line(addr);
        match self.sh.codec {
            Some(codec) => {
                let flags = self.ls.flags.get(&addr).copied().unwrap_or_default();
                codec.decode(&patched, flags)
            }
            None => patched,
        }
    }

    // ----- submission -----

    fn submit_read(&mut self, access: Access, now: Cycle) {
        // Decommissioned lines live in controller buffers: no bank
        // operation, no disturbance, `forward_latency` to answer.
        if let Some(data) = self.ls.salvaged.get(&access.addr).copied() {
            self.ls.stats.salvaged_reads.inc();
            self.ls.stats.reads.inc();
            let at = now + self.sh.cfg.forward_latency;
            self.ls.stats.read_latency_total += at - access.arrive;
            self.ls
                .stats
                .read_latency_sketch
                .record((at - access.arrive).0);
            self.ls.push_completion(Completion {
                id: access.id,
                at,
                was_write: false,
                data: Some(data),
            });
            return;
        }
        // Forward from the write queue (newest entry wins) or from the
        // write job in flight.
        let from_queue = if self.ls.bank.wq_contains(access.addr) {
            self.ls
                .bank
                .write_q
                .iter()
                .rev()
                .find(|e| e.access.addr == access.addr)
                .map(|e| e.access.kind)
        } else {
            None
        };
        let forwarded = from_queue
            .or_else(|| match &self.ls.bank.op {
                Some(BankOp::Write(job)) if job.entry.access.addr == access.addr => {
                    Some(job.entry.access.kind)
                }
                _ => None,
            })
            .or_else(|| {
                self.ls
                    .bank
                    .paused
                    .as_ref()
                    .filter(|job| job.entry.access.addr == access.addr)
                    .map(|job| job.entry.access.kind)
            });
        if let Some(AccessKind::Write(data)) = forwarded {
            self.ls.stats.read_forwards.inc();
            self.ls.stats.reads.inc();
            let at = now + self.sh.cfg.forward_latency;
            self.ls.stats.read_latency_total += at - access.arrive;
            self.ls
                .stats
                .read_latency_sketch
                .record((at - access.arrive).0);
            self.ls.push_completion(Completion {
                id: access.id,
                at,
                was_write: false,
                data: Some(data),
            });
            return;
        }
        self.ls.bank.read_q.push_back(access);
        // Write cancellation: a pending read cancels an uncommitted write.
        if self.sh.cfg.scheme.write_cancellation {
            self.try_cancel(now);
        }
    }

    fn submit_write(&mut self, access: Access, data: LineBuf, now: Cycle) {
        // Decommissioned lines absorb writes in their controller buffer.
        if let Some(buf) = self.ls.salvaged.get_mut(&access.addr) {
            *buf = data;
            self.ls.stats.salvaged_writes.inc();
            let at = now + self.sh.cfg.forward_latency;
            self.ls.push_completion(Completion {
                id: access.id,
                at,
                was_write: true,
                data: None,
            });
            return;
        }
        // Coalesce with a queued write to the same line.
        if self.ls.bank.wq_contains(access.addr) {
            if let Some(e) = self
                .ls
                .bank
                .write_q
                .iter_mut()
                .find(|e| e.access.addr == access.addr)
            {
                e.access.kind = AccessKind::Write(data);
                self.ls.push_completion(Completion {
                    id: access.id,
                    at: now,
                    was_write: true,
                    data: None,
                });
                return;
            }
        }
        let mut entry = WqEntry::new(access);
        if self.sh.cfg.scheme.preread {
            self.forward_prereads(&mut entry);
        }
        let addr = entry.access.addr;
        self.ls.bank.write_q.push_back(entry);
        self.ls.bank.wq_note_push(addr);
        if self.ls.bank.write_q.len() >= self.sh.cfg.write_queue_cap {
            self.arm_drain();
        }
    }

    fn arm_drain(&mut self) {
        if !self.ls.bank.draining {
            self.ls.stats.drains.inc();
            self.ls.bank.draining = true;
        }
        self.ls.bank.drain_left = self.ls.bank.drain_left.max(self.sh.cfg.drain_burst);
    }

    /// PreRead forwarding: if an adjacent line of `entry` has a pending
    /// write in the queue, its up-to-date data is forwarded — no bank
    /// operation needed (§4.3).
    fn forward_prereads(&mut self, entry: &mut WqEntry) {
        let neighbors = self.sh.geometry.bitline_neighbors(entry.access.addr);
        for side in Side::BOTH {
            if entry.pr_done[side.idx()] {
                continue;
            }
            let Some(n) = neighbors[side.idx()] else {
                continue;
            };
            if !self.ls.bank.wq_contains(n) {
                continue;
            }
            let queued = self
                .ls
                .bank
                .write_q
                .iter()
                .rev()
                .find(|e| e.access.addr == n);
            if let Some(e) = queued {
                if let AccessKind::Write(data) = e.access.kind {
                    entry.pr_done[side.idx()] = true;
                    entry.pr_buf[side.idx()] = Some(data);
                    self.ls.stats.preread_forwards.inc();
                }
            }
        }
    }

    // ----- scheduling -----

    fn dispatch(&mut self, now: Cycle) {
        if self.ls.bank.op.is_some() {
            return;
        }
        let wc = self.sh.cfg.scheme.write_cancellation;
        let wp = self.sh.cfg.scheme.write_pausing;
        loop {
            let b = &mut self.ls.bank;
            if b.draining {
                if wc || wp {
                    if let Some(access) = b.read_q.pop_front() {
                        self.start_read(access, now);
                        return;
                    }
                }
                if let Some(mut job) = b.paused.take() {
                    let dur = self.step_duration(&mut job);
                    self.ls.bank.busy_until = now + dur;
                    self.ls.bank.op = Some(BankOp::Write(job));
                    return;
                }
                // Service one burst's worth of writes, then release the
                // bank back to reads (end-of-run flushes go all the way).
                let b = &mut self.ls.bank;
                if b.drain_left > 0 || b.flushing {
                    if let Some(entry) = b.write_q.pop_front() {
                        b.wq_note_remove(entry.access.addr);
                        b.drain_left = b.drain_left.saturating_sub(1);
                        self.start_write(entry, now);
                        return;
                    }
                }
                b.draining = false;
                b.flushing = false;
                continue;
            }
            if let Some(access) = b.read_q.pop_front() {
                self.start_read(access, now);
                return;
            }
            if let Some(mut job) = b.paused.take() {
                let dur = self.step_duration(&mut job);
                self.ls.bank.busy_until = now + dur;
                self.ls.bank.op = Some(BankOp::Write(job));
                return;
            }
            if b.write_q.len() >= self.sh.cfg.write_queue_cap {
                self.arm_drain();
                continue;
            }
            if self.sh.cfg.scheme.preread && self.try_issue_preread(now) {
                return;
            }
            return; // idle
        }
    }

    fn start_read(&mut self, access: Access, now: Cycle) {
        self.ls.bank.busy_until = now + self.sh.cfg.timing.read;
        self.ls.bank.op = Some(BankOp::Read(access));
    }

    fn start_write(&mut self, entry: WqEntry, now: Cycle) {
        let need = self.verify_need(&entry.access);
        let mut job = WriteJob::new(entry, need.0, need.1, self.sh.cfg.scheme.own_line_verify);
        let dur = self.step_duration(&mut job);
        self.ls.bank.busy_until = now + dur;
        self.ls.bank.op = Some(BankOp::Write(Box::new(job)));
    }

    /// Which neighbours of this write need verification: scheme VnC off →
    /// none; otherwise the (n:m) policy decides, and physically absent
    /// neighbours (bank edges) or decommissioned ones (served from the
    /// salvage pool, nothing architectural to protect) never need it.
    fn verify_need(&self, access: &Access) -> (bool, bool) {
        if !self.sh.cfg.scheme.vnc {
            return (false, false);
        }
        let strip = self.sh.geometry.strip_of(access.addr);
        let need = self.sh.policy.need(access.ratio, strip);
        let nb = self.sh.geometry.bitline_neighbors(access.addr);
        let live = |n: Option<LineAddr>| n.is_some_and(|n| !self.ls.salvaged.contains_key(&n));
        (need.up && live(nb[0]), need.down && live(nb[1]))
    }

    fn try_issue_preread(&mut self, now: Cycle) -> bool {
        // Oldest queued write with an outstanding, needed pre-read. The
        // scan only needs shared borrows, so the queue is walked in place
        // rather than snapshotted.
        let mut target: Option<(LineAddr, Side)> = None;
        if self.sh.cfg.scheme.vnc {
            let cap = self.sh.cfg.write_queue_cap;
            'scan: for e in self.ls.bank.write_q.iter().take(cap) {
                let addr = e.access.addr;
                let strip = self.sh.geometry.strip_of(addr);
                let need = self.sh.policy.need(e.access.ratio, strip);
                let nb = self.sh.geometry.bitline_neighbors(addr);
                for side in Side::BOTH {
                    let needed = match side {
                        Side::Up => need.up,
                        Side::Down => need.down,
                    } && nb[side.idx()]
                        .is_some_and(|n| !self.ls.salvaged.contains_key(&n));
                    if needed && !e.pr_done[side.idx()] {
                        target = Some((addr, side));
                        break 'scan;
                    }
                }
            }
        }
        let Some((write_line, side)) = target else {
            return false;
        };
        self.ls.bank.busy_until = now + self.sh.cfg.timing.read;
        self.ls.bank.op = Some(BankOp::IdlePreRead { write_line, side });
        true
    }

    /// Cancels the uncommitted write in flight on this bank, if any
    /// (§6.8).
    ///
    /// A cancellation during the array-write phase leaves physically
    /// disturbed cells in the adjacent lines (the RESET pulses already
    /// fired). Serving a read from such a line before the retried write
    /// verifies it would return corrupt data, so the collateral must be
    /// absorbed into the victims' ECP entries at cancel time; when the
    /// entries do not fit (or LazyCorrection is off), the cancellation is
    /// *denied* and the write runs to completion — the paper's own
    /// warning that "canceling writes in super dense PCM is not
    /// desirable" (§6.8) made concrete.
    fn try_cancel(&mut self, now: Cycle) {
        let cancel = matches!(
            &self.ls.bank.op,
            Some(BankOp::Write(job)) if !job.committed
        );
        if !cancel {
            return;
        }
        // Peek: can the array-write collateral be absorbed?
        if let Some(BankOp::Write(job)) = &self.ls.bank.op {
            if matches!(job.steps.front(), Some(Step::ArrayWrite)) {
                let addr = job.entry.access.addr;
                let Some(diff) = job.diff else {
                    // The diff is computed when the phase is scheduled;
                    // its absence is a bookkeeping bug. Deny the cancel
                    // (the write runs to completion) and surface it.
                    self.ls
                        .note_anomaly("array-write phase in flight without its diff");
                    return;
                };
                if !self.absorb_cancel_collateral(addr, &diff) {
                    return; // denied: corruption could not be buffered
                }
            }
        }
        match self.ls.bank.op.take() {
            Some(BankOp::Write(job)) => {
                self.ls.stats.write_cancellations.inc();
                let addr = job.entry.access.addr;
                self.ls.bank.write_q.push_front(job.entry);
                self.ls.bank.wq_note_push(addr);
                self.ls.bank.busy_until = now;
                self.dispatch(now);
            }
            other => {
                self.ls.bank.op = other;
                self.ls
                    .note_anomaly("cancellation target changed type mid-check");
            }
        }
    }

    /// Rolls the disturbance of a half-finished (cancelled) array write
    /// and buffers every bit-line victim in its line's ECP table.
    /// Returns `false` — without injecting — when the victims cannot all
    /// be buffered. Own-line word-line flips need no buffering: reads of
    /// the line are forwarded from the queued write's data, and the
    /// retried differential write re-programs the flipped cells.
    fn absorb_cancel_collateral(&mut self, addr: LineAddr, diff: &DiffMask) -> bool {
        if !self.sh.cfg.scheme.lazy_correction {
            // Without LazyC there is no place to buffer the victims.
            // Only disturbance-free cancellations can proceed.
            let neighbors = self.sh.geometry.bitline_neighbors(addr);
            let would_disturb = neighbors.iter().flatten().any(|n| {
                let raw = self.store.raw_line(*n);
                sdpcm_wd::pattern::bitline_any_vulnerable(diff, &raw)
            });
            if would_disturb {
                return false;
            }
        }
        // Check capacity first (no side effects on denial).
        let neighbors = self.sh.geometry.bitline_neighbors(addr);
        for n in neighbors.iter().flatten() {
            let raw = self.store.raw_line(*n);
            let vulnerable = sdpcm_wd::pattern::bitline_vulnerable_count(diff, &raw);
            let free = self
                .store
                .ecp_ref(*n)
                .map_or(self.sh.cfg.ecp_entries, |t| t.free_slots());
            if vulnerable > free {
                return false;
            }
        }
        // Inject and buffer. The own-line word-line victims need no
        // handling here (reads forward from the queued entry, and the
        // retried write re-programs them). The retried write's injection
        // draws come from the line's next epoch, so the cancelled
        // epoch's draws stay consumed exactly once.
        let _ = self.inject_for(addr, diff, None);
        for side in Side::BOTH {
            if let Some(n) = neighbors[side.idx()] {
                let cells = std::mem::take(&mut self.ls.bl_hits[side.idx()]);
                if !cells.is_empty() {
                    self.record_ecp(n, &cells);
                }
                self.ls.bl_hits[side.idx()] = cells;
            }
        }
        true
    }

    // ----- execution -----

    fn complete_op(&mut self, at: Cycle) {
        let Some(op) = self.ls.bank.op.take() else {
            self.ls.note_anomaly("completion fired on an idle bank");
            return;
        };
        match op {
            BankOp::Read(access) => {
                self.ls.stats.reads.inc();
                self.ls.stats.read_latency_total += at - access.arrive;
                self.ls
                    .stats
                    .read_latency_sketch
                    .record((at - access.arrive).0);
                self.ls.energy.charge_read(512, false);
                let data = self.architectural_line(access.addr);
                self.ls.push_completion(Completion {
                    id: access.id,
                    at,
                    was_write: false,
                    data: Some(data),
                });
            }
            BankOp::IdlePreRead { write_line, side } => {
                self.ls.energy.charge_read(512, true);
                let data = self.sh.geometry.bitline_neighbors(write_line)[side.idx()]
                    .map(|n| self.architectural_line(n));
                if self.ls.bank.wq_contains(write_line) {
                    if let Some(e) = self
                        .ls
                        .bank
                        .write_q
                        .iter_mut()
                        .find(|e| e.access.addr == write_line)
                    {
                        e.pr_done[side.idx()] = true;
                        e.pr_buf[side.idx()] = data;
                    }
                }
                self.ls.stats.prereads_issued.inc();
            }
            BankOp::Write(mut job) => {
                self.finish_step(&mut job, at);
                job.steps_done += 1;
                if job.steps_done >= MAX_JOB_STEPS {
                    self.ls.stats.cascade_overflows.inc();
                    job.steps.clear();
                }
                if job.steps.is_empty() {
                    // Job done; completion was pushed at commit.
                } else if self.sh.cfg.scheme.write_pausing
                    && !self.ls.bank.read_q.is_empty()
                    && self.pause_is_safe(&job)
                {
                    // Set the job aside between phases so the pending
                    // reads go first; dispatch resumes it afterwards.
                    self.ls.stats.write_pauses.inc();
                    self.ls.bank.paused = Some(job);
                } else {
                    let dur = self.step_duration(&mut job);
                    self.ls.bank.busy_until = at + dur;
                    self.ls.bank.op = Some(BankOp::Write(job));
                }
            }
        }
    }

    /// Computes the duration of the job's front step, performing the
    /// pure pre-computation (DIN encode + diff) for array writes.
    fn step_duration(&mut self, job: &mut WriteJob) -> Cycle {
        let t = self.sh.cfg.timing;
        let Some(step) = job.steps.front() else {
            self.ls
                .note_anomaly("write job scheduled with no remaining step");
            return Cycle(1);
        };
        match step {
            Step::PreRead(_) | Step::OwnVerify | Step::PostRead(_) | Step::CascadeVerify(_) => {
                t.read
            }
            Step::ArrayWrite => {
                let addr = job.entry.access.addr;
                let AccessKind::Write(plain) = job.entry.access.kind else {
                    self.ls
                        .note_anomaly("array-write step on a non-write access");
                    return t.read;
                };
                self.plant_hard(addr);
                let raw_old = self.store.raw_line(addr);
                let (encoded, new_flags) = match self.sh.codec {
                    Some(codec) => {
                        let old_flags = self.ls.flags.get(&addr).copied().unwrap_or_default();
                        codec.encode(&plain, &raw_old, old_flags)
                    }
                    None => (plain, DinFlags::default()),
                };
                let diff = DiffMask::between(&raw_old, &encoded);
                let dur = t.write_latency(&diff);
                job.diff = Some(diff);
                job.encoded = Some(encoded);
                job.new_flags = new_flags;
                dur
            }
            Step::OwnFix => t.correction_latency(job.pending_wl.len() as u32),
            Step::EcpWrite { .. } => t.reset_pulse,
            Step::Correction { cells, .. } => t.correction_latency(cells.len() as u32),
        }
    }

    /// Applies the side effects of the completed front step and extends
    /// the program as VnC demands.
    fn finish_step(&mut self, job: &mut WriteJob, at: Cycle) {
        let Some(step) = job.steps.pop_front() else {
            self.ls
                .note_anomaly("write job completed with no step to finish");
            return;
        };
        let t = self.sh.cfg.timing;
        let addr = job.entry.access.addr;
        match step {
            Step::PreRead(side) => {
                self.ls.stats.phases.pre_reads += t.read;
                self.ls.energy.charge_read(512, true);
                let data = self.sh.geometry.bitline_neighbors(addr)[side.idx()]
                    .map(|n| self.architectural_line(n));
                job.entry.pr_done[side.idx()] = true;
                job.entry.pr_buf[side.idx()] = data;
            }
            Step::ArrayWrite => {
                let (Some(diff), Some(encoded)) = (job.diff.take(), job.encoded.take()) else {
                    self.ls
                        .note_anomaly("array write lost its precomputed encoding");
                    job.steps.clear();
                    return;
                };
                let dur = t.write_latency(&diff);
                self.ls.stats.phases.array_writes += dur;
                self.ls
                    .energy
                    .charge_write(diff.set_count(), diff.reset_count(), false);
                self.store.apply_write(addr, &diff, WriteClass::Normal);
                self.store.refresh_hard_values(addr, &encoded);
                if self.sh.codec.is_some() {
                    self.ls.flags.insert(addr, job.new_flags);
                }
                // A normal write clears the line's own buffered WD errors
                // (LazyCorrection consolidation, §4.2).
                self.store.ecp_mut(addr).clear_disturb();
                job.committed = true;
                self.ls.stats.writes.inc();
                self.ls.push_completion(Completion {
                    id: job.entry.access.id,
                    at,
                    was_write: true,
                    data: None,
                });
                // Disturbance injection.
                let wl = self.inject_for(addr, &diff, Some(&mut job.pending_wl));
                self.ls.stats.wl_errors.record(wl as u64);
                let neighbors = self.sh.geometry.bitline_neighbors(addr);
                for side in Side::BOTH {
                    if neighbors[side.idx()].is_some() {
                        self.ls
                            .stats
                            .bl_errors_per_neighbor
                            .record(self.ls.bl_hits[side.idx()].len() as u64);
                    }
                    job.injected[side.idx()].extend_from_slice(&self.ls.bl_hits[side.idx()]);
                }
                // Chaos bookkeeping: the controller drains these after
                // the lane call returns (serial chaos path only).
                if self.sh.track_commits {
                    self.ls.recent_commits.push(addr);
                }
            }
            Step::OwnVerify => {
                self.ls.stats.phases.own_verifies += t.read;
                self.ls.energy.charge_read(512, true);
                if !job.pending_wl.is_empty() {
                    job.steps.push_front(Step::OwnFix);
                }
            }
            Step::OwnFix => {
                let _t = prof::timer(Site::CtrlCorrect);
                let cells = std::mem::take(&mut job.pending_wl);
                let dur = t.correction_latency(cells.len() as u32);
                self.ls.stats.phases.own_fixes += dur;
                let fix = DiffMask::reset_only_cells(&cells);
                self.ls.energy.charge_write(0, fix.reset_count(), true);
                self.store.apply_write(addr, &fix, WriteClass::WordlineFix);
                // The fix's RESET pulses disturb again.
                let _ = self.inject_for(addr, &fix, Some(&mut job.pending_wl));
                for side in Side::BOTH {
                    job.injected[side.idx()].extend_from_slice(&self.ls.bl_hits[side.idx()]);
                }
                if !job.pending_wl.is_empty() {
                    job.steps.push_front(Step::OwnFix);
                }
            }
            Step::PostRead(side) => {
                self.ls.stats.phases.post_reads += t.read;
                self.ls.stats.verification_ops.inc();
                self.ls.energy.charge_read(512, true);
                let Some(neighbor) = self.sh.geometry.bitline_neighbors(addr)[side.idx()] else {
                    return;
                };
                let new_errors = std::mem::take(&mut job.injected[side.idx()]);
                self.resolve_verification(job, neighbor, new_errors, at);
            }
            Step::CascadeVerify(line) => {
                self.ls.stats.phases.cascade_reads += t.read;
                self.ls.stats.verification_ops.inc();
                self.ls.stats.cascade_rounds.inc();
                self.ls.energy.charge_read(512, true);
                let new_errors = job.take_cascade(line);
                self.resolve_verification(job, line, new_errors, at);
            }
            Step::EcpWrite { line, cells } => {
                self.ls.stats.phases.ecp_writes += t.reset_pulse;
                self.record_ecp(line, &cells);
            }
            Step::Correction { line, cells } => {
                let _t = prof::timer(Site::CtrlCorrect);
                let dur = t.correction_latency(cells.len() as u32);
                self.ls.stats.phases.corrections += dur;
                self.ls.stats.correction_ops.inc();
                self.ls.stats.corrected_cells.add(cells.len() as u64);
                let fix = DiffMask::reset_only_cells(&cells);
                self.ls.energy.charge_write(0, fix.reset_count(), true);
                self.store.apply_write(line, &fix, WriteClass::Correction);
                self.store.ecp_mut(line).clear_disturb();
                // The correction's RESET pulses disturb the corrected
                // line's own word-line cells and its bit-line neighbours:
                // cascading verification (§3.2).
                let mut own_wl = Vec::new();
                let _ = self.inject_for(line, &fix, Some(&mut own_wl));
                if !own_wl.is_empty() {
                    job.add_cascade(line, own_wl);
                    if !job.has_cascade_step(line) {
                        job.steps.push_front(Step::CascadeVerify(line));
                    }
                }
                let strip = self.sh.geometry.strip_of(line);
                let need = self.sh.policy.need(job.entry.access.ratio, strip);
                let neighbors = self.sh.geometry.bitline_neighbors(line);
                for side in Side::BOTH {
                    let victims = &self.ls.bl_hits[side.idx()];
                    if victims.is_empty() {
                        continue;
                    }
                    let needed = match side {
                        Side::Up => need.up,
                        Side::Down => need.down,
                    };
                    if !needed {
                        continue; // no-use strip: nothing to protect
                    }
                    let Some(n) = neighbors[side.idx()] else {
                        continue;
                    };
                    job.add_cascade(n, victims.clone());
                    if !job.has_cascade_step(n) {
                        job.steps.push_front(Step::CascadeVerify(n));
                    }
                }
            }
        }
    }

    /// Injects disturbances for a committed programming operation on
    /// `addr`: word-line victims inside the line (appended to `wl_out`
    /// when given) and bit-line victims in both physical neighbours,
    /// left in `self.ls.bl_hits` until the next call. Returns the
    /// word-line victim count.
    ///
    /// Every injection draws from the injector's *event stream* keyed
    /// by `(line, epoch)` — the line's stable address key plus a
    /// per-line count of programming operations — so the outcome
    /// depends only on the line's own history, never on what other
    /// lines (or banks, or worker threads) did in between. All buffers
    /// are lane-held scratch — the hot path allocates nothing once
    /// their capacities have grown.
    fn inject_for(
        &mut self,
        addr: LineAddr,
        diff: &DiffMask,
        wl_out: Option<&mut Vec<u16>>,
    ) -> usize {
        let epoch = {
            let e = self.ls.inject_epochs.entry(addr).or_insert(0);
            let epoch = *e;
            *e += 1;
            epoch
        };
        let ev = self.sh.injector.event(addr.stream_key(), epoch);
        let after = self.store.raw_line(addr);
        let mut wl = std::mem::take(&mut self.ls.wl_scratch);
        self.sh
            .injector
            .draw_wordline_into(&ev, &after, diff, &mut wl);
        // Only cells that physically flipped count: stuck cells cannot
        // crystallize, and the hardware's pre/post-read comparison would
        // show no change for them either.
        wl.retain(|&bit| self.store.inject_disturb(addr, bit));
        let wl_count = wl.len();
        if let Some(out) = wl_out {
            out.extend_from_slice(&wl);
        }
        self.ls.wl_scratch = wl;
        let neighbors = self.sh.geometry.bitline_neighbors(addr);
        for side in Side::BOTH {
            let mut victims = std::mem::take(&mut self.ls.bl_hits[side.idx()]);
            victims.clear();
            if let Some(n) = neighbors[side.idx()] {
                // Decommissioned lines are no longer programmed in the
                // array, so they can neither disturb nor be disturbed.
                if !self.ls.salvaged.contains_key(&n) {
                    let raw = self.store.raw_line(n);
                    self.sh
                        .injector
                        .draw_bitline_into(&ev, side.idx(), diff, &raw, &mut victims);
                    victims.retain(|&bit| self.store.inject_disturb(n, bit));
                }
            }
            self.ls.bl_hits[side.idx()] = victims;
        }
        wl_count
    }

    /// LazyCorrection-or-correct decision after a verification read found
    /// `new_errors` in `line` (§4.2), extended with the graceful
    /// degradation ladder for ECP exhaustion:
    ///
    /// 1. **Bounded retry** — the first `ecp_retry_cap` exhaustions on a
    ///    line fall back to an immediate verify-and-correct pass but keep
    ///    LazyCorrection armed (the next errors may again fit the table).
    /// 2. **Escalation** — past the cap the line stops attempting ECP
    ///    buffering entirely; every new error is corrected on the spot.
    /// 3. **Decommission** — a line that keeps accumulating distress even
    ///    under immediate correction is remapped into the salvage pool.
    fn resolve_verification(
        &mut self,
        job: &mut WriteJob,
        line: LineAddr,
        new_errors: Vec<u16>,
        at: Cycle,
    ) {
        let _t = prof::timer(Site::CtrlVerify);
        if self.ls.salvaged.contains_key(&line) {
            return;
        }
        self.plant_hard_excluding(line, &new_errors);
        self.ls
            .stats
            .errors_per_verification
            .record(new_errors.len() as u64);
        if new_errors.is_empty() {
            return;
        }
        let free_slots = self
            .store
            .ecp_ref(line)
            .map_or(self.sh.cfg.ecp_entries, |t| t.free_slots());
        if self.sh.cfg.scheme.lazy_correction {
            if self.ls.escalated.contains(&line) {
                // Rung 2: buffering is abandoned for this line; count
                // distress toward the decommission threshold.
                let d = self.ls.distress.entry(line).or_insert(0);
                *d += 1;
                let d = *d;
                if d >= self.sh.cfg.decommission_after
                    && self.try_decommission(line, job, &new_errors, at)
                {
                    return;
                }
                self.ls.stats.immediate_corrections.inc();
            } else if new_errors.len() <= free_slots {
                if self.sh.cfg.scheme.ecp_write_inline {
                    job.steps.push_front(Step::EcpWrite {
                        line,
                        cells: new_errors,
                    });
                } else {
                    // The record targets the separate ECP chip and overlaps
                    // with the bank's next data operation.
                    self.record_ecp(line, &new_errors);
                }
                return;
            } else {
                // The table cannot absorb this batch.
                self.ls.stats.ecp_exhaustions.inc();
                let d = self.ls.distress.entry(line).or_insert(0);
                *d += 1;
                if *d <= self.sh.cfg.ecp_retry_cap {
                    // Rung 1: correct now, retry buffering next time.
                    self.ls.stats.correction_retries.inc();
                } else {
                    self.ls.escalated.insert(line);
                    self.ls.stats.immediate_corrections.inc();
                }
            }
        }
        // Correct everything: the new errors plus any buffered ones.
        let mut cells: Vec<u16> = self
            .store
            .ecp_ref(line)
            .map(|t| {
                t.entries()
                    .iter()
                    .filter(|e| e.kind == EcpKind::Disturb)
                    .map(|e| e.bit)
                    .collect()
            })
            .unwrap_or_default();
        cells.extend(new_errors);
        cells.sort_unstable();
        cells.dedup();
        job.steps.push_front(Step::Correction { line, cells });
    }

    /// Attempts to retire `line` from the array into the bank's salvage
    /// pool. Refuses when the pool is full or when the in-flight job (or
    /// its paused sibling) still targets the line. Returns `true` when
    /// the line was decommissioned.
    fn try_decommission(
        &mut self,
        line: LineAddr,
        job: &mut WriteJob,
        new_errors: &[u16],
        at: Cycle,
    ) -> bool {
        if self.ls.salvaged.len() >= self.sh.cfg.salvage_pool_lines {
            self.ls.stats.salvage_rejections.inc();
            return false;
        }
        if job.entry.access.addr == line {
            return false;
        }
        if let Some(paused) = &self.ls.bank.paused {
            if paused.entry.access.addr == line {
                return false;
            }
        }
        // Reconstruct the architectural content: raw array bits, minus
        // every disturbance the controller knows about (WD only flips
        // 0 -> 1, so their correct value is 0), DIN-decoded when encoding
        // is in force. "Knows about" spans more than `new_errors`: the
        // in-flight job (and a paused sibling) may still hold unserved
        // fixes for this line — queued `Correction`/`EcpWrite` cells,
        // cascade victims awaiting their verify, and injected-but-not-
        // yet-post-read neighbour victims. Those steps are dropped below,
        // so their cells must be cleansed here or the crystallized bits
        // would be frozen into the salvage snapshot as data.
        let mut patched = self.store.read_line(line);
        for &bit in new_errors {
            patched.set_bit(bit as usize, false);
        }
        cleanse_job_disturbances(self.sh.geometry, job, line, &mut patched);
        if let Some(paused) = &self.ls.bank.paused {
            cleanse_job_disturbances(self.sh.geometry, paused, line, &mut patched);
        }
        let data = match self.sh.codec {
            Some(codec) => {
                let flags = self.ls.flags.get(&line).copied().unwrap_or_default();
                codec.decode(&patched, flags)
            }
            None => patched,
        };
        self.ls.salvaged.insert(line, data);
        self.ls.distress.remove(&line);
        self.ls.escalated.remove(&line);
        self.ls.stats.decommissions.inc();
        // The job owes the line no further maintenance.
        job.steps.retain(|s| {
            !matches!(s,
                Step::Correction { line: l, .. }
                | Step::EcpWrite { line: l, .. }
                | Step::CascadeVerify(l) if *l == line)
        });
        job.cascade_pending.retain(|(l, _)| *l != line);
        // Absorb any queued write to the line (coalescing keeps at most
        // one) so its requester still sees a completion.
        let removed = {
            let b = &mut self.ls.bank;
            if b.wq_contains(line) {
                let e = b
                    .write_q
                    .iter()
                    .position(|e| e.access.addr == line)
                    .and_then(|pos| b.write_q.remove(pos));
                if e.is_some() {
                    b.wq_note_remove(line);
                }
                e
            } else {
                None
            }
        };
        if let Some(e) = removed {
            if let AccessKind::Write(d) = e.access.kind {
                self.ls.salvaged.insert(line, d);
            }
            let at = at + self.sh.cfg.forward_latency;
            self.ls.push_completion(Completion {
                id: e.access.id,
                at,
                was_write: true,
                data: None,
            });
        }
        true
    }

    /// Records buffered-WD cells into a line's ECP table, charging the
    /// ECP chip's wear (10 bits per record). The correct value of a
    /// disturbed cell is always `0` — WD only crystallizes amorphous
    /// cells. A record that overflows despite the earlier capacity check
    /// (a racing hard error can steal the slot) degrades to a direct
    /// RESET fix of the cell.
    fn record_ecp(&mut self, line: LineAddr, cells: &[u16]) {
        for &bit in cells {
            match self
                .store
                .ecp_mut(line)
                .record(bit, false, EcpKind::Disturb)
            {
                Ok(()) => {
                    self.store.charge_ecp_record();
                    self.ls.stats.ecp_records.inc();
                }
                Err(_) => {
                    self.ls.stats.ecp_overflow_fixes.inc();
                    let fix = DiffMask::reset_only_cells(&[bit]);
                    self.store.apply_write(line, &fix, WriteClass::Correction);
                }
            }
        }
    }

    /// Whether pausing `job` now would let a pending read observe a
    /// physically disturbed, not-yet-verified line. Before the array
    /// write commits there is no collateral (and reads of the write's
    /// own line are forwarded from the queue entry); after commit, the
    /// job's unverified victims — neighbours with injected errors and
    /// cascade-pending lines — are off limits.
    fn pause_is_safe(&self, job: &WriteJob) -> bool {
        if !job.committed {
            return true;
        }
        let neighbors = self.sh.geometry.bitline_neighbors(job.entry.access.addr);
        // Hazard predicate evaluated per queued read — avoids
        // materializing the hazard list on every pause check.
        let is_hazard = |addr: LineAddr| -> bool {
            for side in Side::BOTH {
                if !job.injected[side.idx()].is_empty() && neighbors[side.idx()] == Some(addr) {
                    return true;
                }
            }
            if job.cascade_pending.iter().any(|(l, _)| *l == addr) {
                return true;
            }
            // Lines awaiting a queued correction / ECP record / cascade
            // verify are also physically dirty until their step runs.
            if job.steps.iter().any(|s| {
                matches!(s,
                    Step::Correction { line, .. }
                    | Step::EcpWrite { line, .. }
                    | Step::CascadeVerify(line) if *line == addr)
            }) {
                return true;
            }
            !job.pending_wl.is_empty() && job.entry.access.addr == addr
        };
        self.ls.bank.read_q.iter().all(|r| !is_hazard(r.addr))
    }

    /// First-touch hard-error planting for the DIMM-aging experiments.
    fn plant_hard(&mut self, line: LineAddr) {
        self.plant_hard_excluding(line, &[]);
    }

    /// First-touch hard-error planting; cells listed in `known_errors`
    /// are raw-disturbed but architecturally `0`, so a fault landing on
    /// one must record `0` as the correct value, not the corrupted raw
    /// bit.
    ///
    /// Draws come from the plant stream keyed by the line's address, so
    /// a line's planted faults are a pure function of `(seed, line,
    /// age)` — independent of which other lines were touched first.
    fn plant_hard_excluding(&mut self, line: LineAddr, known_errors: &[u16]) {
        let Some((model, age)) = self.sh.hard_plan else {
            return;
        };
        if !self.ls.planted.insert(line) {
            return;
        }
        let mut rng = self.sh.plant_stream.keyed(line.stream_key()).sequence();
        let k = model.sample_line_errors(age, &mut rng);
        for _ in 0..k {
            let bit = rng.below(512) as u16;
            let stuck = rng.chance(0.5);
            if known_errors.contains(&bit) {
                self.store
                    .plant_hard_error_with_value(line, bit, stuck, false);
            } else {
                self.store.plant_hard_error(line, bit, stuck);
            }
        }
    }
}

/// The memory controller.
pub struct MemoryController {
    cfg: CtrlConfig,
    geometry: MemGeometry,
    store: DeviceStore,
    policy: VerifyPolicy,
    injector: WdInjector,
    codec: Option<DinCodec>,
    /// Per-bank lanes: queues, architectural metadata, and accumulator
    /// slices. Aggregate views ([`MemoryController::stats`]) fold them
    /// in bank order.
    lanes: Vec<LaneState>,
    hard_plan: Option<(HardErrorModel, f64)>,
    /// Root stream for first-touch hard-error planting (keyed per line).
    plant_stream: RngStream,
    start_gap: Option<Vec<StartGap>>,
    chaos: Option<ChaosEngine>,
    /// Sequential RNG for chaos victim selection — chaos scenarios run
    /// on the serial path, where a shared draw order is well-defined.
    chaos_rng: SimRng,
    fault_log: Vec<FaultEvent>,
    /// Recently committed write targets — the victim pool for chaos
    /// stuck-at bursts (bounded, deterministic order).
    recent_writes: VecDeque<LineAddr>,
    /// Worker threads for [`MemoryController::advance`]; 1 = serial.
    workers: usize,
    /// Cached lane minima serving the `next_event` / `process_until` /
    /// `advance_into` fast paths — those run once per event-loop
    /// iteration (tens of millions of times per cell), almost always
    /// with nothing due, and must not rescan 16 lanes each time. Outer
    /// `None` = stale; every `&mut self` path that changes bank
    /// occupancy or queues a completion resets it.
    mins: std::cell::Cell<Option<EventMins>>,
    /// Whether lane work ran since the last anomaly sweep. Anomalies
    /// can only be noted while a lane processes, so `take_anomaly`
    /// skips its 16-lane scan on the (dominant) no-work polls.
    anomaly_scan: bool,
}

/// See [`MemoryController::event_mins`].
#[derive(Clone, Copy)]
struct EventMins {
    /// Earliest `busy_until` across occupied banks.
    op: Option<Cycle>,
    /// Earliest queued completion across lanes.
    completion: Option<Cycle>,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("banks", &self.lanes.len())
            .field("scheme", &self.cfg.scheme)
            .finish()
    }
}

impl MemoryController {
    /// Builds a controller owning the device store.
    ///
    /// `rng` seeds both the disturbance injector and hard-error
    /// placement; two controllers built with equal arguments behave
    /// identically.
    ///
    /// # Panics
    ///
    /// Panics on a configuration [`CtrlConfig::validate`] rejects; use
    /// [`MemoryController::try_new`] for configurations taken from
    /// user input.
    #[must_use]
    pub fn new(cfg: CtrlConfig, geometry: MemGeometry, rng: SimRng) -> MemoryController {
        MemoryController::try_new(cfg, geometry, rng).expect("valid controller configuration")
    }

    /// Fallible [`MemoryController::new`].
    pub fn try_new(
        cfg: CtrlConfig,
        geometry: MemGeometry,
        mut rng: SimRng,
    ) -> Result<MemoryController, CtrlError> {
        cfg.validate()?;
        // Lines hold (pseudorandom) program data before the first
        // simulated write reaches them — see `InitContent`.
        let init = InitContent::Pseudorandom(rng.derive("init-content").next_u64());
        let store = DeviceStore::with_init(geometry, cfg.ecp_entries, init);
        let injector = WdInjector::new(
            &DisturbanceModel::calibrated(),
            cfg.scheme.spacing,
            rng.derive("injector"),
        );
        let codec = cfg.scheme.din_wordline.then(DinCodec::paper_default);
        let plant_stream = rng.derive_stream("hard-plant");
        Ok(MemoryController {
            cfg,
            geometry,
            store,
            policy: VerifyPolicy::new(geometry.strips()),
            injector,
            codec,
            lanes: (0..geometry.banks()).map(LaneState::new).collect(),
            hard_plan: None,
            plant_stream,
            start_gap: cfg.scheme.start_gap_psi.map(|psi| {
                // One region per bank over all lines but the spare slot:
                // n logical lines, n + 1 physical slots.
                let n = u64::from(geometry.rows_per_bank())
                    * sdpcm_pcm::geometry::LINES_PER_ROW as u64
                    - 1;
                (0..geometry.banks())
                    .map(|_| StartGap::new(n, psi))
                    .collect()
            }),
            chaos: None,
            chaos_rng: rng,
            fault_log: Vec::new(),
            recent_writes: VecDeque::new(),
            workers: 1,
            mins: std::cell::Cell::new(None),
            anomaly_scan: false,
        })
    }

    /// Controller configuration.
    #[must_use]
    pub fn config(&self) -> &CtrlConfig {
        &self.cfg
    }

    /// Statistics collected so far — the per-bank lane slices folded in
    /// bank order, so the totals are identical no matter how lanes were
    /// scheduled across worker threads.
    #[must_use]
    pub fn stats(&self) -> CtrlStats {
        let mut total = CtrlStats::new();
        for lane in &self.lanes {
            total.merge(&lane.stats);
        }
        total
    }

    /// The device store (wear counters, ECP state, raw cells).
    #[must_use]
    pub fn store(&self) -> &DeviceStore {
        &self.store
    }

    /// Energy accounting (demand vs mitigation overhead), folded from
    /// the per-bank lane slices in bank order.
    #[must_use]
    pub fn energy(&self) -> EnergyMeter {
        let mut total = EnergyMeter::new(EnergyParams::default());
        for lane in &self.lanes {
            total.merge(&lane.energy);
        }
        total
    }

    /// Sets the worker-thread count used by
    /// [`MemoryController::advance`] to process independent bank lanes
    /// concurrently. `1` (the default) keeps processing on the calling
    /// thread. Results are bit-identical at every worker count: lanes
    /// share no mutable state, all draws are counter-keyed, and
    /// aggregates fold in fixed bank order.
    pub fn set_advance_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured advance worker count.
    #[must_use]
    pub fn advance_workers(&self) -> usize {
        self.workers
    }

    /// Ages the DIMM: lines touched from now on receive hard errors
    /// sampled from `model` at `lifetime_fraction` (Figure 14).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn set_dimm_age(&mut self, model: HardErrorModel, lifetime_fraction: f64) {
        assert!((0.0..=1.0).contains(&lifetime_fraction));
        self.hard_plan = Some((model, lifetime_fraction));
    }

    /// Installs a chaos scenario, replacing any previous one. Faults
    /// fire as the committed-write counter crosses their trigger points.
    /// While a scenario is installed the controller processes banks on
    /// the serial global-time path regardless of the worker count, so
    /// the scenario's shared draw order stays well-defined.
    pub fn install_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = Some(ChaosEngine::new(plan));
    }

    /// Every chaos action executed so far, in order. Two same-seed runs
    /// of the same scenario produce identical logs.
    #[must_use]
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.fault_log
    }

    /// Lines currently decommissioned into the per-bank salvage pools.
    #[must_use]
    pub fn salvaged_lines(&self) -> usize {
        self.lanes.iter().map(|l| l.salvaged.len()).sum()
    }

    /// Test-only probe: asserts every bank's write-queue address index
    /// equals an exact linear recount of its queue. The index is the
    /// fast-path replacement for the old full-queue scans, so any drift
    /// here silently changes forwarding/coalescing decisions; the
    /// randomized equivalence test in `tests/controller_stress.rs` calls
    /// this after every controller interaction.
    ///
    /// # Errors
    ///
    /// Returns which bank diverged and both multisets on mismatch.
    #[doc(hidden)]
    pub fn check_wq_index(&self) -> Result<(), String> {
        for (bi, l) in self.lanes.iter().enumerate() {
            let b = &l.bank;
            let mut recount: FxHashMap<LineAddr, u32> = FxHashMap::default();
            for e in &b.write_q {
                *recount.entry(e.access.addr).or_insert(0) += 1;
            }
            if recount != b.wq_index {
                return Err(format!(
                    "bank {bi}: wq_index {:?} != linear recount {:?}",
                    b.wq_index, recount
                ));
            }
        }
        Ok(())
    }

    /// Captures queue state for diagnostics (livelock reports, error
    /// payloads). Idle banks are omitted from the per-bank list.
    #[must_use]
    pub fn snapshot(&self, cycle: Cycle) -> CtrlSnapshot {
        let banks: Vec<BankSnapshot> = self
            .lanes
            .iter()
            .map(|l| &l.bank)
            .enumerate()
            .filter(|(_, b)| {
                b.op.is_some()
                    || b.paused.is_some()
                    || !b.read_q.is_empty()
                    || !b.write_q.is_empty()
            })
            .map(|(i, b)| BankSnapshot {
                bank: i as u16,
                read_q: b.read_q.len(),
                write_q: b.write_q.len(),
                busy: b.op.is_some(),
                paused: b.paused.is_some(),
                draining: b.draining,
            })
            .collect();
        CtrlSnapshot {
            cycle,
            in_flight: self.lanes.iter().filter(|l| l.bank.op.is_some()).count(),
            queued_reads: self.lanes.iter().map(|l| l.bank.read_q.len()).sum(),
            queued_writes: self.lanes.iter().map(|l| l.bank.write_q.len()).sum(),
            banks,
        }
    }

    /// Surfaces the first pending lane anomaly (in bank order),
    /// attaching the current queue state.
    fn take_anomaly(&mut self, now: Cycle) -> Result<(), CtrlError> {
        if !self.anomaly_scan {
            return Ok(());
        }
        self.anomaly_scan = false;
        let what = self.lanes.iter_mut().find_map(|l| l.pending_anomaly.take());
        match what {
            Some(what) => Err(CtrlError::InternalAnomaly {
                what,
                snapshot: self.snapshot(now),
            }),
            None => Ok(()),
        }
    }

    /// Runs `f` on one bank's lane view. The lane borrows the shared
    /// read-only context, its own `LaneState`, and its disjoint store
    /// slice — all split borrows of `self`, built here in one body so
    /// the borrow checker can see they never overlap.
    fn with_lane<R>(&mut self, bank: usize, f: impl FnOnce(&mut Lane<'_, '_>) -> R) -> R {
        let sh = LaneShared {
            cfg: &self.cfg,
            geometry: &self.geometry,
            policy: &self.policy,
            injector: &self.injector,
            codec: &self.codec,
            hard_plan: self.hard_plan,
            plant_stream: self.plant_stream,
            track_commits: self.chaos.is_some(),
        };
        let mut store = self.store.lane_mut(bank as u16);
        let mut lane = Lane {
            sh: &sh,
            ls: &mut self.lanes[bank],
            store: &mut store,
        };
        f(&mut lane)
    }

    /// Like [`MemoryController::architectural_line`], but `addr` is a
    /// *logical* address: the bank's Start-Gap mapping (if enabled) is
    /// applied first. Without Start-Gap the two are identical.
    #[must_use]
    pub fn architectural_logical(&self, addr: LineAddr) -> LineBuf {
        self.architectural_line(self.remap_addr(addr))
    }

    /// The architectural (error-corrected, DIN-decoded) contents of a
    /// line — zero simulated time; used by the system to synthesize
    /// write payloads and by tests to check consistency.
    #[must_use]
    pub fn architectural_line(&self, addr: LineAddr) -> LineBuf {
        let lane = &self.lanes[addr.bank.0 as usize];
        if let Some(data) = lane.salvaged.get(&addr) {
            return *data;
        }
        let patched = self.store.read_line(addr);
        match &self.codec {
            Some(codec) => {
                let flags = lane.flags.get(&addr).copied().unwrap_or_default();
                codec.decode(&patched, flags)
            }
            None => patched,
        }
    }

    /// Whether a write to `addr` can be accepted right now without
    /// exceeding the queue capacity (coalescing writes always fit).
    /// Cores stall their next write while this is `false` — the
    /// back-pressure that makes bursty drains visible to the pipeline.
    #[must_use]
    pub fn can_accept_write(&self, addr: LineAddr) -> bool {
        let Ok(addr) = self.try_remap_addr(addr) else {
            return false; // unmappable writes can never be accepted
        };
        let lane = &self.lanes[addr.bank.0 as usize];
        if lane.salvaged.contains_key(&addr) {
            return true; // served from the pool, no queue entry needed
        }
        let b = &lane.bank;
        b.write_q.len() < self.cfg.write_queue_cap || b.wq_contains(addr)
    }

    /// Entries currently queued in a bank's write queue (diagnostics).
    #[must_use]
    pub fn write_queue_len(&self, bank: u16) -> usize {
        self.lanes[bank as usize].bank.write_q.len()
    }

    /// The newest architectural value of a *logical* line as the program
    /// observes it: a queued or in-flight-but-uncommitted write's data
    /// wins over the array contents. Zero simulated time; used by the
    /// system to synthesize the next write's payload.
    #[must_use]
    pub fn latest_architectural(&self, addr: LineAddr) -> LineBuf {
        self.latest_architectural_physical(self.remap_addr(addr))
    }

    /// [`MemoryController::latest_architectural`] on an already-physical
    /// address (gap-move copies).
    fn latest_architectural_physical(&self, addr: LineAddr) -> LineBuf {
        let b = &self.lanes[addr.bank.0 as usize].bank;
        let from_queue = if b.wq_contains(addr) {
            b.write_q
                .iter()
                .rev()
                .find(|e| e.access.addr == addr)
                .map(|e| e.access.kind)
        } else {
            None
        };
        let queued = from_queue
            .or_else(|| match &b.op {
                Some(BankOp::Write(job)) if !job.committed && job.entry.access.addr == addr => {
                    Some(job.entry.access.kind)
                }
                _ => None,
            })
            .or_else(|| {
                b.paused
                    .as_ref()
                    .filter(|job| !job.committed && job.entry.access.addr == addr)
                    .map(|job| job.entry.access.kind)
            });
        if let Some(AccessKind::Write(data)) = queued {
            return data;
        }
        self.architectural_line(addr)
    }

    /// Earliest time anything observable happens: an in-flight bank
    /// operation completes or an already-scheduled completion (e.g. a
    /// forwarded read) becomes due. One pass over the (16) lanes, each
    /// serving both components from plain fields.
    #[must_use]
    pub fn next_event(&self) -> Option<Cycle> {
        let m = self.event_mins();
        match (m.op, m.completion) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The cached lane minima, rescanned (and re-cached) only after a
    /// mutation marked them stale.
    fn event_mins(&self) -> EventMins {
        if let Some(m) = self.mins.get() {
            return m;
        }
        let mut op: Option<Cycle> = None;
        let mut completion: Option<Cycle> = None;
        for l in &self.lanes {
            if l.bank.op.is_some() && op.is_none_or(|m| l.bank.busy_until < m) {
                op = Some(l.bank.busy_until);
            }
            if let Some(c) = l.completion_min {
                if completion.is_none_or(|m| c < m) {
                    completion = Some(c);
                }
            }
        }
        let m = EventMins { op, completion };
        self.mins.set(Some(m));
        m
    }

    /// Whether any queue or bank still holds work.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.lanes.iter().all(|l| {
            let b = &l.bank;
            b.op.is_none() && b.paused.is_none() && b.read_q.is_empty() && b.write_q.is_empty()
        })
    }

    /// Forces every bank to drain its write queue to empty (end-of-run
    /// flush; ignores the low watermark).
    pub fn drain_all(&mut self, now: Cycle) {
        for i in 0..self.lanes.len() {
            if !self.lanes[i].bank.write_q.is_empty() {
                self.lanes[i].bank.draining = true;
                self.lanes[i].bank.flushing = true;
            }
            self.with_lane(i, |lane| lane.dispatch(now));
        }
        self.mins.set(None);
        self.anomaly_scan = true;
    }

    /// Hands a request to the controller.
    ///
    /// Bank state is first brought current to `now`, so requests never
    /// interact with operations that should already have completed
    /// (completions stay buffered for the next [`MemoryController::advance`]).
    ///
    /// # Errors
    ///
    /// Rejects requests outside the geometry ([`CtrlError::BankOutOfRange`],
    /// [`CtrlError::SpareLineAccess`]) or combining Start-Gap with a
    /// non-(1:1) allocator ([`CtrlError::StartGapRatio`]); surfaces any
    /// broken deep invariant as [`CtrlError::InternalAnomaly`].
    pub fn submit(&mut self, access: Access, now: Cycle) -> Result<(), CtrlError> {
        let _t = prof::timer(Site::CtrlSubmit);
        let access = self.remap_start_gap(access)?;
        let is_demand_write = access.kind.is_write();
        let bank = access.addr.bank.0 as usize;
        self.submit_physical(access, now)?;
        if is_demand_write {
            self.maybe_move_gap(bank, now);
        }
        self.take_anomaly(now)
    }

    /// Submits a request whose address is already physical (post
    /// Start-Gap remapping) — also the entry point for internal gap-move
    /// copies.
    fn submit_physical(&mut self, access: Access, now: Cycle) -> Result<(), CtrlError> {
        let bank = access.addr.bank.0 as usize;
        if bank >= self.lanes.len() {
            return Err(CtrlError::BankOutOfRange {
                bank: access.addr.bank.0,
                banks: self.lanes.len(),
            });
        }
        self.process_until(now);
        self.with_lane(bank, |lane| {
            match access.kind {
                AccessKind::Read => lane.submit_read(access, now),
                AccessKind::Write(data) => lane.submit_write(access, data, now),
            }
            lane.dispatch(now);
        });
        self.mins.set(None);
        self.anomaly_scan = true;
        Ok(())
    }

    /// Applies the bank's Start-Gap mapping to a demand request,
    /// rejecting ratio/spare-line violations.
    fn remap_start_gap(&self, access: Access) -> Result<Access, CtrlError> {
        if self.start_gap.is_some() && access.ratio != NmRatio::one_one() {
            return Err(CtrlError::StartGapRatio {
                ratio: access.ratio,
            });
        }
        Ok(Access {
            addr: self.try_remap_addr(access.addr)?,
            ..access
        })
    }

    /// Logical → physical line address under the bank's Start-Gap
    /// mapping (identity without Start-Gap). Rejects out-of-range banks
    /// and the spare line.
    fn try_remap_addr(&self, addr: LineAddr) -> Result<LineAddr, CtrlError> {
        if addr.bank.0 as usize >= self.lanes.len() {
            return Err(CtrlError::BankOutOfRange {
                bank: addr.bank.0,
                banks: self.lanes.len(),
            });
        }
        let Some(regions) = &self.start_gap else {
            return Ok(addr);
        };
        let lines_per_row = sdpcm_pcm::geometry::LINES_PER_ROW as u64;
        let la = u64::from(addr.row.0) * lines_per_row + u64::from(addr.slot);
        let sg = &regions[addr.bank.0 as usize];
        if la >= sg.logical_lines() {
            // The last line of each bank is Start-Gap's spare slot.
            return Err(CtrlError::SpareLineAccess { addr });
        }
        let pa = sg.map(la);
        Ok(LineAddr {
            bank: addr.bank,
            row: sdpcm_pcm::geometry::RowId((pa / lines_per_row) as u32),
            slot: (pa % lines_per_row) as u8,
        })
    }

    /// [`MemoryController::try_remap_addr`] for the zero-time diagnostic
    /// helpers, which promise a valid address.
    ///
    /// # Panics
    ///
    /// Panics on an address [`MemoryController::try_remap_addr`] rejects.
    fn remap_addr(&self, addr: LineAddr) -> LineAddr {
        self.try_remap_addr(addr)
            .expect("diagnostic helpers are called with valid addresses")
    }

    /// Counts a demand write against the bank's gap schedule; every ψ-th
    /// performs the move: the mapping shifts immediately and the data
    /// copy is enqueued as an internal write (store-forwarding keeps
    /// concurrent reads of the moving line consistent).
    fn maybe_move_gap(&mut self, bank: usize, now: Cycle) {
        let Some(regions) = &mut self.start_gap else {
            return;
        };
        let Some(mv) = regions[bank].note_write() else {
            return;
        };
        self.lanes[bank].stats.gap_moves.inc();
        let lines_per_row = sdpcm_pcm::geometry::LINES_PER_ROW as u64;
        let to_addr = |p: u64| LineAddr {
            bank: sdpcm_pcm::geometry::BankId(bank as u16),
            row: sdpcm_pcm::geometry::RowId((p / lines_per_row) as u32),
            slot: (p % lines_per_row) as u8,
        };
        let from = to_addr(mv.from);
        let to = to_addr(mv.to);
        let data = self.latest_architectural_physical(from);
        let id = self.lanes[bank].alloc_internal_id();
        let copy = Access {
            id,
            addr: to,
            kind: AccessKind::Write(data),
            ratio: NmRatio::one_one(),
            core: u8::MAX,
            arrive: now,
        };
        if self.submit_physical(copy, now).is_err() {
            self.lanes[bank].note_anomaly("Start-Gap copy targeted an invalid address");
            self.anomaly_scan = true;
        }
    }

    /// Processes all bank activity up to `now`; returns completions due.
    ///
    /// # Errors
    ///
    /// Surfaces any broken deep invariant as
    /// [`CtrlError::InternalAnomaly`] with a queue snapshot attached.
    pub fn advance(&mut self, now: Cycle) -> Result<Vec<Completion>, CtrlError> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out)?;
        Ok(out)
    }

    /// [`MemoryController::advance`] draining into a caller-owned
    /// scratch buffer so the event loops reuse one allocation across
    /// iterations. `out` is cleared first; completions due by `now` are
    /// moved into it in `(at, id)` order.
    ///
    /// # Errors
    ///
    /// Surfaces any broken deep invariant as
    /// [`CtrlError::InternalAnomaly`] with a queue snapshot attached.
    pub fn advance_into(&mut self, now: Cycle, out: &mut Vec<Completion>) -> Result<(), CtrlError> {
        let _t = prof::timer(Site::CtrlAdvance);
        out.clear();
        self.process_until(now);
        self.take_anomaly(now)?;
        // Cached fast path: nothing due (the event loop polls far more
        // often than completions mature).
        if self.event_mins().completion.is_none_or(|m| m > now) {
            return Ok(());
        }
        let mut drained = false;
        for lane in &mut self.lanes {
            if lane.completion_min.is_some_and(|m| m <= now) {
                lane.completions.retain(|c| {
                    if c.at <= now {
                        out.push(*c);
                        false
                    } else {
                        true
                    }
                });
                lane.completion_min = lane.completions.iter().map(|c| c.at).min();
                drained = true;
            }
        }
        self.mins.set(None);
        if drained {
            // Index-ordered merge across lanes: the global (at, id)
            // order is independent of which lane drained first.
            out.sort_unstable_by_key(|c| (c.at, c.id));
        }
        Ok(())
    }

    /// Completes every bank operation due by `now` and re-dispatches.
    ///
    /// Bank lanes are mutually independent — every RNG draw is keyed by
    /// `(line, epoch)`, every accumulator is lane-local — so due lanes
    /// can be processed in any order, or concurrently on worker threads,
    /// and produce bit-identical state. The serial path walks lanes in
    /// bank order; the parallel path shards due lanes across
    /// `self.workers` threads and joins before returning. With a chaos
    /// scenario installed, processing falls back to the legacy global
    /// `(completion time, bank)` order so the scenario's shared
    /// victim-selection draws stay well-defined.
    fn process_until(&mut self, now: Cycle) {
        // Cached fast path: no bank operation due (every submit and
        // every event-loop poll lands here first).
        if self.event_mins().op.is_none_or(|m| m > now) {
            return;
        }
        self.mins.set(None);
        self.anomaly_scan = true;
        let due = self
            .lanes
            .iter()
            .filter(|l| l.bank.op.is_some() && l.bank.busy_until <= now)
            .count();
        if due == 0 {
            return;
        }
        if self.chaos.is_some() {
            self.process_until_chaos(now);
        } else if self.workers > 1 && due > 1 {
            self.process_until_parallel(now, due);
        } else {
            for i in 0..self.lanes.len() {
                if self.lanes[i].bank.op.is_some() && self.lanes[i].bank.busy_until <= now {
                    self.with_lane(i, |lane| lane.process_lane_until(now));
                }
            }
        }
    }

    /// Serial chaos-mode processing in global `(busy_until, bank)`
    /// order, polling the fault plan after every committed write.
    fn process_until_chaos(&mut self, now: Cycle) {
        loop {
            let mut best: Option<(Cycle, usize)> = None;
            for (i, l) in self.lanes.iter().enumerate() {
                if l.bank.op.is_some()
                    && l.bank.busy_until <= now
                    && best.is_none_or(|(t, _)| l.bank.busy_until < t)
                {
                    best = Some((l.bank.busy_until, i));
                }
            }
            let Some((at, i)) = best else { break };
            self.with_lane(i, |lane| lane.complete_op(at));
            self.drain_commits(i, at);
            self.with_lane(i, |lane| lane.dispatch(at));
        }
    }

    /// Shards due lanes across worker threads. Each worker processes a
    /// contiguous chunk of `(LaneState, StoreLane)` pairs to completion;
    /// the main thread takes the first chunk. Joining at the scope exit
    /// is the per-step barrier.
    fn process_until_parallel(&mut self, now: Cycle, due: usize) {
        let sh = LaneShared {
            cfg: &self.cfg,
            geometry: &self.geometry,
            policy: &self.policy,
            injector: &self.injector,
            codec: &self.codec,
            hard_plan: self.hard_plan,
            plant_stream: self.plant_stream,
            track_commits: false,
        };
        let store_lanes = self.store.lanes_mut();
        let mut jobs: Vec<(&mut LaneState, StoreLane<'_>)> = self
            .lanes
            .iter_mut()
            .zip(store_lanes)
            .filter(|(l, _)| l.bank.op.is_some() && l.bank.busy_until <= now)
            .collect();
        let workers = self.workers.min(due);
        let per = jobs.len().div_ceil(workers);
        let sh = &sh;
        std::thread::scope(|scope| {
            let mut chunks = jobs.chunks_mut(per);
            let first = chunks.next();
            for chunk in chunks {
                scope.spawn(move || run_lane_chunk(sh, chunk, now));
            }
            if let Some(chunk) = first {
                run_lane_chunk(sh, chunk, now);
            }
        });
    }

    /// Hands a lane's freshly committed write addresses to the chaos
    /// harness, polling the fault plan once per commit (the legacy
    /// per-write granularity).
    fn drain_commits(&mut self, bank: usize, at: Cycle) {
        if self.lanes[bank].recent_commits.is_empty() {
            return;
        }
        let commits = std::mem::take(&mut self.lanes[bank].recent_commits);
        for addr in commits {
            self.recent_writes.push_back(addr);
            while self.recent_writes.len() > RECENT_WRITES_CAP {
                self.recent_writes.pop_front();
            }
            self.apply_chaos(at);
        }
        // Hand the (drained) buffer's capacity back to the lane.
    }

    // ----- chaos harness -----

    /// Drains every fault action due at the current write count.
    fn apply_chaos(&mut self, at: Cycle) {
        let committed: u64 = self.lanes.iter().map(|l| l.stats.writes.get()).sum();
        let actions = match &mut self.chaos {
            Some(engine) => engine.poll(committed),
            None => return,
        };
        for action in actions {
            self.execute_chaos(action, committed, at);
        }
    }

    /// Applies one fault action to the device/injector and logs it.
    fn execute_chaos(&mut self, action: ChaosAction, committed: u64, at: Cycle) {
        match action {
            ChaosAction::BeginStorm { mult } => {
                if self.injector.set_storm(mult).is_err() {
                    // ChaosPlan::new validated the multiplier; reaching
                    // here means the plan was corrupted in flight.
                    self.lanes[0].note_anomaly("chaos storm multiplier went invalid");
                    return;
                }
            }
            ChaosAction::EndStorm => self.injector.clear_storm(),
            ChaosAction::PlantStuckBurst {
                lines,
                cells_per_line,
            } => {
                for _ in 0..lines {
                    let victim = if self.recent_writes.is_empty() {
                        LineAddr {
                            bank: sdpcm_pcm::geometry::BankId(
                                self.chaos_rng.below(self.lanes.len() as u64) as u16,
                            ),
                            row: sdpcm_pcm::geometry::RowId(
                                self.chaos_rng
                                    .below(u64::from(self.geometry.rows_per_bank()))
                                    as u32,
                            ),
                            slot: self
                                .chaos_rng
                                .below(sdpcm_pcm::geometry::LINES_PER_ROW as u64)
                                as u8,
                        }
                    } else {
                        let i = self.chaos_rng.index(self.recent_writes.len());
                        self.recent_writes[i]
                    };
                    if self.lanes[victim.bank.0 as usize]
                        .salvaged
                        .contains_key(&victim)
                    {
                        continue;
                    }
                    for _ in 0..cells_per_line {
                        let bit = self.chaos_rng.below(512) as u16;
                        let stuck = self.chaos_rng.chance(0.5);
                        self.store
                            .lane_mut(victim.bank.0)
                            .plant_hard_error(victim, bit, stuck);
                    }
                }
            }
            ChaosAction::SetAge { lifetime_fraction } => {
                let model = self
                    .hard_plan
                    .map_or_else(HardErrorModel::default, |(m, _)| m);
                self.hard_plan = Some((model, lifetime_fraction));
            }
        }
        let fault_lane = &mut self.lanes[0];
        fault_lane.stats.fault_events.inc();
        self.fault_log.push(FaultEvent {
            at_write: committed,
            at_cycle: at.0,
            action,
        });
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::ReqId;
    use sdpcm_pcm::geometry::{BankId, RowId};

    fn ctrl(scheme: CtrlScheme) -> MemoryController {
        MemoryController::new(
            CtrlConfig::table2(scheme),
            MemGeometry::small(256),
            SimRng::from_seed_label(77, "ctrl-test"),
        )
    }

    fn line(bank: u16, row: u32, slot: u8) -> LineAddr {
        LineAddr {
            bank: BankId(bank),
            row: RowId(row),
            slot,
        }
    }

    fn read(id: u64, addr: LineAddr, at: Cycle) -> Access {
        Access {
            id: ReqId(id),
            addr,
            kind: AccessKind::Read,
            ratio: NmRatio::one_one(),
            core: 0,
            arrive: at,
        }
    }

    fn write(id: u64, addr: LineAddr, data: LineBuf, at: Cycle) -> Access {
        Access {
            id: ReqId(id),
            addr,
            kind: AccessKind::Write(data),
            ratio: NmRatio::one_one(),
            core: 0,
            arrive: at,
        }
    }

    fn patterned(seed: u64) -> LineBuf {
        let mut words = [0u64; 8];
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for w in &mut words {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *w = x;
        }
        LineBuf::from_words(words)
    }

    fn run_until_idle(c: &mut MemoryController) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut guard = 0;
        loop {
            c.drain_all(c.next_event().unwrap_or(Cycle::ZERO));
            let Some(t) = c.next_event() else { break };
            out.extend(c.advance(t).unwrap());
            guard += 1;
            assert!(guard < 1_000_000, "controller livelock");
        }
        out.extend(c.advance(Cycle::MAX).unwrap());
        out
    }

    #[test]
    fn cold_read_takes_array_latency() {
        let mut c = ctrl(CtrlScheme::din());
        let a = line(0, 10, 0);
        let expect = c.architectural_line(a);
        c.submit(read(1, a, Cycle(0)), Cycle(0)).unwrap();
        let done = c.advance(Cycle(400)).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, Cycle(400));
        assert_eq!(done[0].data, Some(expect));
    }

    #[test]
    fn write_then_read_roundtrip() {
        for scheme in [
            CtrlScheme::din(),
            CtrlScheme::baseline_vnc(),
            CtrlScheme::lazyc(),
            CtrlScheme::lazyc_preread(),
        ] {
            let mut c = ctrl(scheme);
            let a = line(2, 20, 5);
            let data = patterned(9);
            c.submit(write(1, a, data, Cycle(0)), Cycle(0)).unwrap();
            let _ = run_until_idle(&mut c);
            assert_eq!(c.architectural_line(a), data, "scheme {scheme:?}");
            // A demand read returns the same.
            c.submit(read(2, a, Cycle(1_000_000)), Cycle(1_000_000))
                .unwrap();
            let done = run_until_idle(&mut c);
            assert_eq!(done.last().unwrap().data, Some(data));
        }
    }

    #[test]
    fn read_forwards_from_write_queue() {
        let mut c = ctrl(CtrlScheme::baseline_vnc());
        let a = line(1, 30, 0);
        let data = patterned(3);
        c.submit(write(1, a, data, Cycle(0)), Cycle(0)).unwrap();
        // While the write is queued/in flight, a read arrives.
        c.submit(read(2, a, Cycle(10)), Cycle(10)).unwrap();
        let done = run_until_idle(&mut c);
        let r = done.iter().find(|d| d.id == ReqId(2)).unwrap();
        assert_eq!(r.data, Some(data));
        assert!(c.stats().read_forwards.get() >= 1);
    }

    #[test]
    fn vnc_write_occupies_longer_than_din_write() {
        let data = patterned(4);
        let mut din = ctrl(CtrlScheme::din());
        din.submit(write(1, line(0, 50, 0), data, Cycle(0)), Cycle(0))
            .unwrap();
        let _ = run_until_idle(&mut din);
        let din_busy = din.stats().phases.pre_reads
            + din.stats().phases.post_reads
            + din.stats().phases.array_writes;

        let mut base = ctrl(CtrlScheme::baseline_vnc());
        base.submit(write(1, line(0, 50, 0), data, Cycle(0)), Cycle(0))
            .unwrap();
        let _ = run_until_idle(&mut base);
        let base_busy = base.stats().phases.pre_reads
            + base.stats().phases.post_reads
            + base.stats().phases.array_writes;
        // Baseline adds 2 pre-reads + 2 post-reads = 1600 extra cycles,
        // plus whatever corrections the injected disturbances demand.
        assert!(
            base_busy.0 - din_busy.0 >= 1600,
            "delta={}",
            base_busy.0 - din_busy.0
        );
        assert!(base.stats().verification_ops.get() >= 2);
        assert_eq!(din.stats().verification_ops.get(), 0);
    }

    #[test]
    fn disturbed_neighbors_stay_architecturally_correct_with_vnc() {
        let mut c = ctrl(CtrlScheme::baseline_vnc());
        let victim_up = line(3, 40, 7);
        let target = line(3, 41, 7);
        let victim_down = line(3, 42, 7);
        let up_data = patterned(10);
        let down_data = patterned(11);
        c.submit(write(1, victim_up, up_data, Cycle(0)), Cycle(0))
            .unwrap();
        c.submit(write(2, victim_down, down_data, Cycle(0)), Cycle(0))
            .unwrap();
        let _ = run_until_idle(&mut c);
        // Hammer the middle line with alternating data.
        for i in 0..50u64 {
            let t = Cycle(1_000_000 + i);
            c.submit(write(100 + i, target, patterned(100 + i), t), t)
                .unwrap();
            let _ = run_until_idle(&mut c);
        }
        assert_eq!(c.architectural_line(victim_up), up_data);
        assert_eq!(c.architectural_line(victim_down), down_data);
        assert!(c.stats().correction_ops.get() > 0, "VnC actually corrected");
    }

    #[test]
    fn unprotected_super_dense_corrupts_neighbors() {
        let mut c = ctrl(CtrlScheme::unprotected_super_dense());
        let victim = line(3, 40, 7);
        let target = line(3, 41, 7);
        let victim_data = patterned(10);
        c.submit(write(1, victim, victim_data, Cycle(0)), Cycle(0))
            .unwrap();
        let _ = run_until_idle(&mut c);
        for i in 0..50u64 {
            let t = Cycle(1_000_000 + i);
            c.submit(write(100 + i, target, patterned(100 + i), t), t)
                .unwrap();
            let _ = run_until_idle(&mut c);
        }
        assert_ne!(
            c.architectural_line(victim),
            victim_data,
            "50 disturbing writes at p=11.5% per vulnerable cell must corrupt"
        );
    }

    #[test]
    fn lazyc_buffers_instead_of_correcting() {
        let mut base = ctrl(CtrlScheme::baseline_vnc());
        let mut lazy = ctrl(CtrlScheme::lazyc());
        for c in [&mut base, &mut lazy] {
            let target = line(3, 41, 7);
            c.submit(write(1, line(3, 40, 7), patterned(1), Cycle(0)), Cycle(0))
                .unwrap();
            c.submit(write(2, line(3, 42, 7), patterned(2), Cycle(0)), Cycle(0))
                .unwrap();
            let _ = run_until_idle(c);
            for i in 0..30u64 {
                let t = Cycle(1_000_000 + i);
                c.submit(write(100 + i, target, patterned(100 + i), t), t)
                    .unwrap();
                let _ = run_until_idle(c);
            }
        }
        assert!(lazy.stats().ecp_records.get() > 0, "LazyC records errors");
        assert!(
            lazy.stats().correction_ops.get() < base.stats().correction_ops.get(),
            "LazyC: {} corrections, baseline: {}",
            lazy.stats().correction_ops.get(),
            base.stats().correction_ops.get()
        );
    }

    #[test]
    fn one_two_ratio_skips_all_verification() {
        let mut c = ctrl(CtrlScheme::baseline_vnc());
        let a = Access {
            ratio: NmRatio::one_two(),
            // Interior even strip: both neighbours marked no-use.
            ..write(1, line(0, 50, 0), patterned(5), Cycle(0))
        };
        c.submit(a, Cycle(0)).unwrap();
        let _ = run_until_idle(&mut c);
        assert_eq!(c.stats().verification_ops.get(), 0);
        assert_eq!(c.stats().phases.pre_reads, Cycle::ZERO);
    }

    #[test]
    fn preread_issues_during_idle_time() {
        let mut c = ctrl(CtrlScheme::lazyc_preread());
        let a = line(4, 60, 1);
        c.submit(write(1, a, patterned(6), Cycle(0)), Cycle(0))
            .unwrap();
        // Let the bank idle: the queued write's pre-reads are issued.
        for t in [400u64, 800, 1200, 1600] {
            let _ = c.advance(Cycle(t)).unwrap();
        }
        assert!(c.stats().prereads_issued.get() >= 2);
        // When the drain later fires, inline pre-reads are skipped.
        c.drain_all(Cycle(2000));
        let _ = run_until_idle(&mut c);
        assert_eq!(c.stats().phases.pre_reads, Cycle::ZERO);
    }

    #[test]
    fn write_cancellation_lets_read_preempt() {
        let mut c = ctrl(CtrlScheme::baseline_vnc().with_write_cancellation());
        let w = line(5, 70, 0);
        let r = line(5, 90, 0);
        c.submit(write(1, w, patterned(7), Cycle(0)), Cycle(0))
            .unwrap();
        c.drain_all(Cycle(0)); // start the write job now
                               // Mid-job read to a different line of the same bank.
        c.submit(read(2, r, Cycle(100)), Cycle(100)).unwrap();
        let done = run_until_idle(&mut c);
        assert!(c.stats().write_cancellations.get() >= 1);
        let read_done = done.iter().find(|d| d.id == ReqId(2)).unwrap();
        assert_eq!(read_done.at, Cycle(500), "read served right after cancel");
        // The cancelled write still commits eventually.
        assert_eq!(c.architectural_line(w), patterned(7));
    }

    #[test]
    fn without_cancellation_read_waits_for_whole_job() {
        let mut c = ctrl(CtrlScheme::baseline_vnc());
        let w = line(5, 70, 0);
        let r = line(5, 90, 0);
        c.submit(write(1, w, patterned(7), Cycle(0)), Cycle(0))
            .unwrap();
        c.drain_all(Cycle(0));
        c.submit(read(2, r, Cycle(100)), Cycle(100)).unwrap();
        let done = run_until_idle(&mut c);
        let read_done = done.iter().find(|d| d.id == ReqId(2)).unwrap();
        // Job = 2 pre-reads + write + own-verify + 2 post-reads ≥ 2800.
        assert!(read_done.at >= Cycle(2800), "read at {:?}", read_done.at);
        assert_eq!(c.stats().write_cancellations.get(), 0);
    }

    #[test]
    fn queue_fills_trigger_drain() {
        let mut c = ctrl(CtrlScheme::din());
        for i in 0..32u64 {
            // Distinct lines of one bank.
            let a = line(6, i as u32, 0);
            c.submit(write(i, a, patterned(i), Cycle(0)), Cycle(0))
                .unwrap();
        }
        assert!(c.stats().drains.get() >= 1);
        let done = run_until_idle(&mut c);
        assert_eq!(done.iter().filter(|d| d.was_write).count(), 32);
        assert_eq!(c.stats().writes.get(), 32);
    }

    #[test]
    fn drains_are_burst_bounded_for_reads() {
        // Without any read-priority mechanism, a read still waits only
        // for the current burst (8 writes), not the whole 32-entry queue.
        let mut c = ctrl(CtrlScheme::din());
        for i in 0..32u64 {
            c.submit(
                write(i, line(6, i as u32, 0), patterned(i), Cycle(0)),
                Cycle(0),
            )
            .unwrap();
        }
        assert!(c.stats().drains.get() >= 1, "queue filled");
        c.submit(read(99, line(6, 60, 0), Cycle(10)), Cycle(10))
            .unwrap();
        // Advance naturally (no forced flush) until the read completes.
        let mut rd = None;
        while rd.is_none() {
            let t = c.next_event().expect("work pending");
            rd = c
                .advance(t)
                .unwrap()
                .into_iter()
                .find(|d| d.id == ReqId(99));
        }
        let rd = rd.expect("loop exits with the completion");
        // One DIN write job on near-random data is ~2400-2800 cycles
        // (two write waves + own-verify + occasional fix); a burst of 8
        // bounds the wait far below the 32-write full-queue drain
        // (~80k cycles).
        assert!(
            rd.at < Cycle(8 * 3_000 + 800),
            "read blocked past one burst: {:?}",
            rd.at
        );
        // All 32 writes still commit eventually.
        let _ = run_until_idle(&mut c);
        assert_eq!(c.stats().writes.get(), 32);
    }

    #[test]
    fn full_queue_keeps_draining_in_bursts() {
        // Sustained pressure: refill the queue after the first burst;
        // the drain re-arms and everything commits.
        let mut c = ctrl(CtrlScheme::din());
        for i in 0..32u64 {
            c.submit(
                write(i, line(7, i as u32, 0), patterned(i), Cycle(0)),
                Cycle(0),
            )
            .unwrap();
        }
        // Let one burst finish, then add more writes.
        let _ = c.advance(Cycle(20_000)).unwrap();
        for i in 32..40u64 {
            let t = Cycle(20_000 + i);
            c.submit(write(i, line(7, i as u32, 0), patterned(i), t), t)
                .unwrap();
        }
        let _ = run_until_idle(&mut c);
        assert_eq!(c.stats().writes.get(), 40);
    }

    #[test]
    fn coalescing_merges_queued_writes() {
        let mut c = ctrl(CtrlScheme::din());
        let a = line(7, 5, 5);
        c.submit(write(1, a, patterned(1), Cycle(0)), Cycle(0))
            .unwrap();
        c.submit(write(2, a, patterned(2), Cycle(1)), Cycle(1))
            .unwrap();
        let _ = run_until_idle(&mut c);
        assert_eq!(c.stats().writes.get(), 1, "coalesced into one array write");
        assert_eq!(c.architectural_line(a), patterned(2), "newest data wins");
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut c = ctrl(CtrlScheme::lazyc_preread());
            for i in 0..40u64 {
                let a = line((i % 4) as u16, 40 + (i % 8) as u32, (i % 64) as u8);
                let t = Cycle(i * 50);
                if i % 3 == 0 {
                    c.submit(read(i, a, t), t).unwrap();
                } else {
                    c.submit(write(i, a, patterned(i), t), t).unwrap();
                }
                let _ = c.advance(t).unwrap();
            }
            let done = run_until_idle(&mut c);
            (
                done.len(),
                c.stats().writes.get(),
                c.stats().ecp_records.get(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn write_pausing_serves_read_between_phases() {
        let mut c = ctrl(CtrlScheme::baseline_vnc().with_write_pausing());
        let w = line(5, 70, 0);
        let r = line(5, 90, 0); // unrelated line, same bank
        c.submit(write(1, w, patterned(7), Cycle(0)), Cycle(0))
            .unwrap();
        c.drain_all(Cycle(0));
        c.submit(read(2, r, Cycle(100)), Cycle(100)).unwrap();
        let done = run_until_idle(&mut c);
        assert!(c.stats().write_pauses.get() >= 1, "job paused for the read");
        let read_done = done.iter().find(|d| d.id == ReqId(2)).unwrap();
        // The read waits at most for the current phase (ends at 400),
        // then 400 of its own — far less than the full VnC job.
        assert_eq!(read_done.at, Cycle(800), "read at {:?}", read_done.at);
        // The paused write still finishes with correct data.
        assert_eq!(c.architectural_line(w), patterned(7));
        assert_eq!(c.stats().write_cancellations.get(), 0);
    }

    #[test]
    fn pausing_refuses_reads_into_unverified_victims() {
        // A read targeting the write's disturbed neighbour must not be
        // served mid-job; it waits until verification finishes and then
        // returns clean data.
        let mut c = ctrl(CtrlScheme::baseline_vnc().with_write_pausing());
        let victim = line(3, 40, 7);
        let target = line(3, 41, 7);
        let victim_data = patterned(10);
        c.submit(write(1, victim, victim_data, Cycle(0)), Cycle(0))
            .unwrap();
        let _ = run_until_idle(&mut c);
        for i in 0..20u64 {
            let t = Cycle(1_000_000 + i * 10_000);
            c.submit(write(100 + i, target, patterned(100 + i), t), t)
                .unwrap();
            c.drain_all(t);
            // Read the victim while the write job is mid-flight.
            c.submit(read(1000 + i, victim, t + Cycle(900)), t + Cycle(900))
                .unwrap();
            let done = run_until_idle(&mut c);
            let rd = done.iter().find(|d| d.id == ReqId(1000 + i)).unwrap();
            assert_eq!(
                rd.data,
                Some(victim_data),
                "read {i} observed a disturbed, unverified line"
            );
        }
    }

    #[test]
    fn vnc_energy_overhead_exceeds_din() {
        let run = |scheme: CtrlScheme| {
            let mut c = ctrl(scheme);
            for i in 0..20u64 {
                let t = Cycle(i * 100_000);
                c.submit(
                    write(i, line(1, 30 + (i % 5) as u32, 0), patterned(i), t),
                    t,
                )
                .unwrap();
                let _ = run_until_idle(&mut c);
            }
            c.energy().overhead_fraction()
        };
        let din = run(CtrlScheme::din());
        let vnc = run(CtrlScheme::baseline_vnc());
        assert!(
            vnc > din,
            "VnC must cost extra energy: vnc={vnc:.3} din={din:.3}"
        );
        assert!(vnc > 0.2, "pre/post reads + corrections are significant");
    }

    #[test]
    fn start_gap_preserves_data_across_moves() {
        // psi=1: every write moves the gap; data must stay readable at
        // its logical address through many full rotations.
        let mut c = ctrl(CtrlScheme::din().with_start_gap(1));
        let mut expected = Vec::new();
        for i in 0..40u64 {
            let a = line(2, (i % 10) as u32, (i % 3) as u8);
            let data = patterned(1000 + i);
            let t = Cycle(i * 100_000);
            c.submit(write(i, a, data, t), t).unwrap();
            let _ = run_until_idle(&mut c);
            expected.retain(|(prev, _): &(LineAddr, LineBuf)| *prev != a);
            expected.push((a, data));
        }
        assert!(c.stats().gap_moves.get() >= 40);
        for (a, data) in expected {
            assert_eq!(c.architectural_logical(a), data, "line {a} lost");
            // Reads also return the right data.
            c.submit(
                read(10_000 + u64::from(a.row.0), a, Cycle(1 << 40)),
                Cycle(1 << 40),
            )
            .unwrap();
            let done = run_until_idle(&mut c);
            assert_eq!(done.last().unwrap().data, Some(data));
        }
    }

    #[test]
    fn start_gap_actually_remaps() {
        let mut c = ctrl(CtrlScheme::din().with_start_gap(1));
        let a = line(0, 5, 0);
        // After enough writes the physical location of `a` must differ
        // from its logical one.
        for i in 0..200u64 {
            let t = Cycle(i * 100_000);
            c.submit(write(i, a, patterned(i), t), t).unwrap();
            let _ = run_until_idle(&mut c);
        }
        // The logical view tracks the data regardless.
        assert_eq!(c.architectural_logical(a), patterned(199));
        assert!(c.stats().gap_moves.get() >= 200);
    }

    #[test]
    fn start_gap_rejects_nm_ratios() {
        let mut c = ctrl(CtrlScheme::baseline_vnc().with_start_gap(8));
        let a = Access {
            ratio: NmRatio::one_two(),
            ..write(1, line(0, 2, 0), patterned(1), Cycle(0))
        };
        assert!(matches!(
            c.submit(a, Cycle(0)),
            Err(CtrlError::StartGapRatio { .. })
        ));
    }

    #[test]
    fn reads_forward_from_paused_jobs() {
        // A write paused mid-VnC still forwards its data to reads of the
        // same line (program order must not observe the old contents).
        let mut c = ctrl(CtrlScheme::baseline_vnc().with_write_pausing());
        let w = line(5, 70, 0);
        let other = line(5, 90, 0);
        c.submit(write(1, w, patterned(7), Cycle(0)), Cycle(0))
            .unwrap();
        c.drain_all(Cycle(0));
        // A read to another line triggers a pause at the next phase edge.
        c.submit(read(2, other, Cycle(100)), Cycle(100)).unwrap();
        let _ = c.advance(Cycle(450)).unwrap(); // first phase done, job paused
                                                // Now read the paused write's own line: must forward new data.
        c.submit(read(3, w, Cycle(460)), Cycle(460)).unwrap();
        let done = run_until_idle(&mut c);
        let fwd = done.iter().find(|d| d.id == ReqId(3)).unwrap();
        assert_eq!(fwd.data, Some(patterned(7)));
        assert!(c.stats().read_forwards.get() >= 1);
    }

    #[test]
    fn newest_queued_write_wins_forwarding() {
        // Two buffered writes to the same line coalesce; a read sees the
        // second one's data.
        let mut c = ctrl(CtrlScheme::baseline_vnc());
        let a = line(4, 33, 2);
        c.submit(write(1, a, patterned(1), Cycle(0)), Cycle(0))
            .unwrap();
        c.submit(write(2, a, patterned(2), Cycle(5)), Cycle(5))
            .unwrap();
        c.submit(read(3, a, Cycle(10)), Cycle(10)).unwrap();
        let done = run_until_idle(&mut c);
        let fwd = done.iter().find(|d| d.id == ReqId(3)).unwrap();
        assert_eq!(fwd.data, Some(patterned(2)));
    }

    #[test]
    fn latest_architectural_sees_queued_then_committed_data() {
        let mut c = ctrl(CtrlScheme::din());
        let a = line(3, 21, 1);
        let before = c.latest_architectural(a);
        assert_eq!(before, c.architectural_line(a));
        c.submit(write(1, a, patterned(9), Cycle(0)), Cycle(0))
            .unwrap();
        // Still queued: latest view is the pending data, array unchanged.
        assert_eq!(c.latest_architectural(a), patterned(9));
        assert_eq!(c.architectural_line(a), before);
        let _ = run_until_idle(&mut c);
        assert_eq!(c.architectural_line(a), patterned(9));
    }

    #[test]
    fn hard_errors_consume_ecp_and_still_read_correctly() {
        let mut c = ctrl(CtrlScheme::lazyc());
        c.set_dimm_age(HardErrorModel::default(), 1.0);
        let a = line(0, 80, 0);
        let data = patterned(42);
        c.submit(write(1, a, data, Cycle(0)), Cycle(0)).unwrap();
        let _ = run_until_idle(&mut c);
        assert_eq!(c.architectural_line(a), data, "ECP patches stuck cells");
    }
}
