//! The multi-phase write state machine.
//!
//! A demand write on super dense PCM is a *sequence* of bank operations
//! (paper §3.2 / §6.8): up to two pre-write reads, the array write, the
//! DIN word-line check of the written line (plus fix-ups), up to two
//! post-write verification reads, ECP record writes or correction writes,
//! and — when corrections disturb further lines — cascading verification
//! reads. All of them occupy the same bank (the adjacent rows live
//! there), so the job executes its steps serially; reads to the bank wait
//! unless write cancellation is enabled and the job has not committed.
//!
//! This module holds the job's data; the transition logic lives in
//! [`crate::ctrl`] where the device state is accessible.

use std::collections::VecDeque;

use sdpcm_pcm::geometry::LineAddr;
use sdpcm_pcm::line::{DiffMask, LineBuf};
use sdpcm_wd::din::DinFlags;

use crate::req::Access;

/// Which bit-line neighbour of the written line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Row above (`row − 1`).
    Up,
    /// Row below (`row + 1`).
    Down,
}

impl Side {
    /// Both sides, fixed order.
    pub const BOTH: [Side; 2] = [Side::Up, Side::Down];

    /// Index into two-element side arrays.
    #[must_use]
    pub fn idx(self) -> usize {
        match self {
            Side::Up => 0,
            Side::Down => 1,
        }
    }
}

/// One bank occupancy of a write job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Pre-write read of an adjacent line (skipped when PreRead already
    /// buffered it).
    PreRead(Side),
    /// The differential array write of the demand data.
    ArrayWrite,
    /// Post-write read of the written line (word-line error check).
    OwnVerify,
    /// RESET rewrite of word-line-disturbed cells in the written line.
    OwnFix,
    /// Post-write verification read of an adjacent line.
    PostRead(Side),
    /// Verification read of a line reached by cascading verification.
    CascadeVerify(LineAddr),
    /// Write of buffered-WD records into the (low-density) ECP chip.
    EcpWrite {
        /// The line whose ECP table receives the records.
        line: LineAddr,
        /// Disturbed cells to record (their correct value is always `0`:
        /// WD only crystallizes amorphous cells).
        cells: Vec<u16>,
    },
    /// Correction write: RESET the listed cells of `line`.
    Correction {
        /// The line being corrected.
        line: LineAddr,
        /// Cells to RESET back to `0`.
        cells: Vec<u16>,
    },
}

impl Step {
    /// Whether this step occurs before the array write commits — the
    /// window in which write cancellation may abort the job.
    #[must_use]
    pub fn pre_commit(&self) -> bool {
        matches!(self, Step::PreRead(_) | Step::ArrayWrite)
    }
}

/// An entry of the write queue, with the PreRead enhancement bits
/// (Figure 8: two flag bits + two 64 B buffers per entry).
#[derive(Debug, Clone)]
pub struct WqEntry {
    /// The demand write.
    pub access: Access,
    /// PreRead flag bits: pre-write read done for up/down.
    pub pr_done: [bool; 2],
    /// The buffered old data of the adjacent lines.
    pub pr_buf: [Option<LineBuf>; 2],
}

impl WqEntry {
    /// Wraps a demand write with cleared PreRead state.
    #[must_use]
    pub fn new(access: Access) -> WqEntry {
        WqEntry {
            access,
            pr_done: [false; 2],
            pr_buf: [None; 2],
        }
    }
}

/// Safety cap on steps executed by one job. Cascades decay
/// geometrically, so reaching this indicates a modelling bug; the
/// controller counts it and presses on.
pub const MAX_JOB_STEPS: u32 = 1_000;

/// The in-flight write job.
#[derive(Debug, Clone)]
pub struct WriteJob {
    /// The originating queue entry (returned to the queue on cancel).
    pub entry: WqEntry,
    /// Remaining steps, front first.
    pub steps: VecDeque<Step>,
    /// Whether the array write has committed (cancellation forbidden
    /// after this).
    pub committed: bool,
    /// The diff computed for the array write (held between phase start
    /// and completion).
    pub diff: Option<DiffMask>,
    /// Encoded data to store at commit.
    pub encoded: Option<LineBuf>,
    /// DIN flags of the encoded data, installed at commit.
    pub new_flags: DinFlags,
    /// Pending word-line errors of the written line awaiting OwnFix.
    pub pending_wl: Vec<u16>,
    /// Bit-line errors injected into each neighbour, awaiting its
    /// verification read.
    pub injected: [Vec<u16>; 2],
    /// Errors injected into lines reached by cascading corrections,
    /// awaiting their CascadeVerify.
    pub cascade_pending: Vec<(LineAddr, Vec<u16>)>,
    /// Steps executed so far (safety cap).
    pub steps_done: u32,
}

impl WriteJob {
    /// Builds the initial step program for a write with the given
    /// verification needs.
    #[must_use]
    pub fn new(entry: WqEntry, need_up: bool, need_down: bool, own_verify: bool) -> WriteJob {
        let mut steps = VecDeque::new();
        if need_up && !entry.pr_done[Side::Up.idx()] {
            steps.push_back(Step::PreRead(Side::Up));
        }
        if need_down && !entry.pr_done[Side::Down.idx()] {
            steps.push_back(Step::PreRead(Side::Down));
        }
        steps.push_back(Step::ArrayWrite);
        if own_verify {
            steps.push_back(Step::OwnVerify);
        }
        if need_up {
            steps.push_back(Step::PostRead(Side::Up));
        }
        if need_down {
            steps.push_back(Step::PostRead(Side::Down));
        }
        WriteJob {
            entry,
            steps,
            committed: false,
            diff: None,
            encoded: None,
            new_flags: DinFlags::default(),
            pending_wl: Vec::new(),
            injected: [Vec::new(), Vec::new()],
            cascade_pending: Vec::new(),
            steps_done: 0,
        }
    }

    /// Adds injected errors for a cascade-verified line, merging with an
    /// existing pending entry for the same line.
    pub fn add_cascade(&mut self, line: LineAddr, mut bits: Vec<u16>) {
        if let Some((_, existing)) = self.cascade_pending.iter_mut().find(|(l, _)| *l == line) {
            existing.append(&mut bits);
        } else {
            self.cascade_pending.push((line, bits));
        }
    }

    /// Removes and returns the injected errors pending for `line`.
    #[must_use]
    pub fn take_cascade(&mut self, line: LineAddr) -> Vec<u16> {
        if let Some(pos) = self.cascade_pending.iter().position(|(l, _)| *l == line) {
            self.cascade_pending.remove(pos).1
        } else {
            Vec::new()
        }
    }

    /// Whether a CascadeVerify step for `line` is already queued.
    #[must_use]
    pub fn has_cascade_step(&self, line: LineAddr) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, Step::CascadeVerify(l) if *l == line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpcm_engine::Cycle;
    use sdpcm_osalloc::NmRatio;
    use sdpcm_pcm::geometry::{BankId, RowId};
    use sdpcm_pcm::line::LineBuf;

    use crate::req::{AccessKind, ReqId};

    fn entry() -> WqEntry {
        WqEntry::new(Access {
            id: ReqId(1),
            addr: LineAddr {
                bank: BankId(0),
                row: RowId(5),
                slot: 3,
            },
            kind: AccessKind::Write(LineBuf::zeroed()),
            ratio: NmRatio::one_one(),
            core: 0,
            arrive: Cycle(0),
        })
    }

    fn line(row: u32) -> LineAddr {
        LineAddr {
            bank: BankId(0),
            row: RowId(row),
            slot: 3,
        }
    }

    #[test]
    fn full_program_when_both_needed() {
        let job = WriteJob::new(entry(), true, true, true);
        let steps: Vec<Step> = job.steps.iter().cloned().collect();
        assert_eq!(
            steps,
            vec![
                Step::PreRead(Side::Up),
                Step::PreRead(Side::Down),
                Step::ArrayWrite,
                Step::OwnVerify,
                Step::PostRead(Side::Up),
                Step::PostRead(Side::Down),
            ]
        );
    }

    #[test]
    fn prereads_skipped_when_buffered() {
        let mut e = entry();
        e.pr_done = [true, false];
        let job = WriteJob::new(e, true, true, false);
        let steps: Vec<Step> = job.steps.iter().cloned().collect();
        assert_eq!(
            steps,
            vec![
                Step::PreRead(Side::Down),
                Step::ArrayWrite,
                Step::PostRead(Side::Up),
                Step::PostRead(Side::Down),
            ]
        );
    }

    #[test]
    fn no_vnc_program_is_write_only() {
        let job = WriteJob::new(entry(), false, false, false);
        let steps: Vec<Step> = job.steps.iter().cloned().collect();
        assert_eq!(steps, vec![Step::ArrayWrite]);
    }

    #[test]
    fn pre_commit_classification() {
        assert!(Step::PreRead(Side::Up).pre_commit());
        assert!(Step::ArrayWrite.pre_commit());
        assert!(!Step::OwnVerify.pre_commit());
        assert!(!Step::PostRead(Side::Down).pre_commit());
        assert!(!Step::Correction {
            line: line(4),
            cells: vec![]
        }
        .pre_commit());
    }

    #[test]
    fn cascade_merge_and_take() {
        let mut job = WriteJob::new(entry(), true, true, true);
        job.add_cascade(line(4), vec![1, 2]);
        job.add_cascade(line(4), vec![3]);
        job.add_cascade(line(6), vec![9]);
        assert_eq!(job.take_cascade(line(4)), vec![1, 2, 3]);
        assert_eq!(job.take_cascade(line(4)), Vec::<u16>::new());
        assert_eq!(job.take_cascade(line(6)), vec![9]);
    }

    #[test]
    fn cascade_step_detection() {
        let mut job = WriteJob::new(entry(), false, false, false);
        assert!(!job.has_cascade_step(line(7)));
        job.steps.push_back(Step::CascadeVerify(line(7)));
        assert!(job.has_cascade_step(line(7)));
    }
}
