//! The simulated clock.
//!
//! All latencies in the paper are given either in CPU cycles or in
//! nanoseconds at a 4 GHz core clock (Table 2: PCM read 100 ns = 400
//! cycles). [`Cycle`] is a transparent `u64` newtype so that cycle counts
//! cannot be accidentally mixed with other integers (reference counts, bit
//! counts, ...).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// CPU clock frequency assumed by the paper's latency table (Table 2).
pub const CLOCK_GHZ: u64 = 4;

/// A point in simulated time, measured in CPU cycles at 4 GHz.
///
/// `Cycle` is ordered, hashable and cheap to copy. Arithmetic is provided
/// for the common "advance by a latency" pattern; subtraction panics on
/// underflow in debug builds, like plain `u64`.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::Cycle;
///
/// let start = Cycle(1_000);
/// let done = start + Cycle::from_ns(100); // PCM array read
/// assert_eq!(done, Cycle(1_400));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Largest representable time; useful as an "idle forever" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Converts a duration in nanoseconds to cycles at the 4 GHz clock.
    ///
    /// ```
    /// use sdpcm_engine::Cycle;
    /// assert_eq!(Cycle::from_ns(100), Cycle(400));
    /// ```
    #[must_use]
    pub const fn from_ns(ns: u64) -> Cycle {
        Cycle(ns * CLOCK_GHZ)
    }

    /// Converts this cycle count to nanoseconds (rounds down).
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0 / CLOCK_GHZ
    }

    /// Returns the later of two times.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;

    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;

    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_matches_table2() {
        // Table 2: read 100ns = 400 cycles, SET 200ns = 800 cycles.
        assert_eq!(Cycle::from_ns(100), Cycle(400));
        assert_eq!(Cycle::from_ns(200), Cycle(800));
        assert_eq!(Cycle(400).as_ns(), 100);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
        assert_eq!(Cycle(7) - Cycle(4), Cycle(3));
        let mut c = Cycle(1);
        c += Cycle(2);
        assert_eq!(c, Cycle(3));
        assert_eq!(Cycle(5).saturating_sub(Cycle(9)), Cycle::ZERO);
    }

    #[test]
    fn min_max_and_sum() {
        assert_eq!(Cycle(3).max(Cycle(9)), Cycle(9));
        assert_eq!(Cycle(3).min(Cycle(9)), Cycle(3));
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle(12).to_string(), "12cyc");
    }
}
