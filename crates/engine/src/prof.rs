//! Zero-cost-when-disabled internal profiler.
//!
//! The simulator's hot path spans five crates (front end → caches →
//! controller → device → injector), so "where do the cycles go" cannot
//! be answered by eyeballing one module. This profiler answers it with
//! scoped wall-clock timers and monotonic counters compiled into every
//! build but gated behind the `SDPCM_PROF=1` environment variable:
//!
//! * **disabled** (the default): every probe is a single relaxed atomic
//!   load and a predictable branch — no clock reads, no allocation, no
//!   thread-local traffic. The bench harness measures the same numbers
//!   with the probes in place as before they existed.
//! * **enabled**: probes accumulate `(calls, nanoseconds)` per site in
//!   a plain thread-local array (no locks on the hot path); each thread
//!   flushes its array into a global aggregate when it exits, and
//!   [`report`] merges the aggregate with the calling thread's live
//!   counts.
//!
//! The profiler never draws randomness and never changes simulated
//! time, so enabling it cannot perturb results — the determinism
//! contract holds with `SDPCM_PROF` unset or `=1` (pinned by
//! `tests/replay_golden.rs`).
//!
//! # Examples
//!
//! ```
//! use sdpcm_engine::prof::{self, Site};
//!
//! {
//!     let _t = prof::timer(Site::CtrlAdvance);
//!     // ... timed region ...
//! }
//! prof::count(Site::RngDraws, 3);
//! for site in prof::report() {
//!     println!("{}: {} calls, {} ns", site.name, site.calls, site.total_ns);
//! }
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Probe sites, one per hot-path region. The fixed enumeration keeps
/// the per-probe cost at an array index instead of a map lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// `SystemSim::run` event-loop body (post-cache front end).
    SystemStep,
    /// `HierarchySim::run` event-loop body (full-hierarchy front end).
    HierStep,
    /// `MemoryController::submit`.
    CtrlSubmit,
    /// `MemoryController::advance`/`advance_into`.
    CtrlAdvance,
    /// VnC verification reads resolved against the device.
    CtrlVerify,
    /// Correction/OwnFix writes (RESET of disturbed cells).
    CtrlCorrect,
    /// `DeviceStore` architectural/raw line reads.
    StoreRead,
    /// `DeviceStore::apply_write` differential writes.
    StoreWrite,
    /// `WdInjector` word-line/bit-line draw batches.
    WdDraw,
    /// Cache-hierarchy lookups (`CoreCaches::access`).
    CacheAccess,
    /// Raw RNG draws consumed by injector gates (counter only).
    RngDraws,
}

impl Site {
    /// Number of sites (array sizing).
    pub const COUNT: usize = 11;

    /// Stable snake_case name used in reports and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Site::SystemStep => "system_step",
            Site::HierStep => "hier_step",
            Site::CtrlSubmit => "ctrl_submit",
            Site::CtrlAdvance => "ctrl_advance",
            Site::CtrlVerify => "ctrl_verify",
            Site::CtrlCorrect => "ctrl_correct",
            Site::StoreRead => "store_read",
            Site::StoreWrite => "store_write",
            Site::WdDraw => "wd_draw",
            Site::CacheAccess => "cache_access",
            Site::RngDraws => "rng_draws",
        }
    }

    /// Every site, in declaration order.
    pub const ALL: [Site; Site::COUNT] = [
        Site::SystemStep,
        Site::HierStep,
        Site::CtrlSubmit,
        Site::CtrlAdvance,
        Site::CtrlVerify,
        Site::CtrlCorrect,
        Site::StoreRead,
        Site::StoreWrite,
        Site::WdDraw,
        Site::CacheAccess,
        Site::RngDraws,
    ];
}

/// One site's merged totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// Site name (see [`Site::name`]).
    pub name: &'static str,
    /// Times the probe fired (or units counted for counter probes).
    pub calls: u64,
    /// Wall-clock nanoseconds inside scoped timers (0 for counters).
    pub total_ns: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INIT: Once = Once::new();

fn global() -> &'static Mutex<[(u64, u64); Site::COUNT]> {
    static GLOBAL: OnceLock<Mutex<[(u64, u64); Site::COUNT]>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new([(0, 0); Site::COUNT]))
}

/// Thread-local accumulator that flushes into the global aggregate on
/// thread exit, so sweep workers' counts survive them.
struct LocalCells([(u64, u64); Site::COUNT]);

impl Drop for LocalCells {
    fn drop(&mut self) {
        flush_into_global(&mut self.0);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalCells> = const { RefCell::new(LocalCells([(0, 0); Site::COUNT])) };
}

fn flush_into_global(cells: &mut [(u64, u64); Site::COUNT]) {
    if cells.iter().all(|&(c, n)| c == 0 && n == 0) {
        return;
    }
    if let Ok(mut g) = global().lock() {
        for (agg, cell) in g.iter_mut().zip(cells.iter_mut()) {
            agg.0 += cell.0;
            agg.1 += cell.1;
            *cell = (0, 0);
        }
    }
}

/// Whether profiling is active. Reads `SDPCM_PROF` once (first call)
/// and caches the answer; flip it earlier in-process with [`set_enabled`].
#[inline]
pub fn enabled() -> bool {
    INIT.call_once(|| {
        let on = std::env::var("SDPCM_PROF").is_ok_and(|v| v == "1" || v == "true");
        ENABLED.store(on, Ordering::Relaxed);
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Forces the gate (used by `figures bench --profile` and tests). Takes
/// effect for probes fired after the call; does not clear counts.
pub fn set_enabled(on: bool) {
    INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

/// Scoped timer: measures from construction to drop when profiling is
/// enabled, does nothing otherwise.
#[must_use = "the timer measures until it is dropped"]
pub struct ScopedTimer {
    site: Site,
    start: Option<Instant>,
}

/// Starts a scoped timer for `site`.
#[inline]
pub fn timer(site: Site) -> ScopedTimer {
    ScopedTimer {
        site,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Drop for ScopedTimer {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            let idx = self.site as usize;
            LOCAL.with(|l| {
                let cell = &mut l.borrow_mut().0[idx];
                cell.0 += 1;
                cell.1 += ns;
            });
        }
    }
}

/// Adds `n` to a site's call counter without timing (for events too
/// cheap or frequent to clock individually, e.g. RNG draws).
#[inline]
pub fn count(site: Site, n: u64) {
    if enabled() {
        LOCAL.with(|l| l.borrow_mut().0[site as usize].0 += n);
    }
}

/// Merged per-site totals: the global aggregate (exited threads) plus
/// the calling thread's live counts, sites with activity only, sorted
/// by total time descending (counters last, by calls).
#[must_use]
pub fn report() -> Vec<SiteReport> {
    let mut merged = *global().lock().expect("profiler aggregate poisoned");
    LOCAL.with(|l| {
        for (m, &(c, n)) in merged.iter_mut().zip(l.borrow().0.iter()) {
            m.0 += c;
            m.1 += n;
        }
    });
    let mut out: Vec<SiteReport> = Site::ALL
        .iter()
        .map(|&s| SiteReport {
            name: s.name(),
            calls: merged[s as usize].0,
            total_ns: merged[s as usize].1,
        })
        .filter(|r| r.calls > 0 || r.total_ns > 0)
        .collect();
    out.sort_by_key(|r| std::cmp::Reverse((r.total_ns, r.calls)));
    out
}

/// Clears the global aggregate and the calling thread's counts.
pub fn reset() {
    *global().lock().expect("profiler aggregate poisoned") = [(0, 0); Site::COUNT];
    LOCAL.with(|l| l.borrow_mut().0 = [(0, 0); Site::COUNT]);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The gate is process-global, so every test drives it explicitly
    // and restores the disabled default before returning.

    #[test]
    fn disabled_probes_record_nothing() {
        set_enabled(false);
        reset();
        {
            let _t = timer(Site::CtrlAdvance);
        }
        count(Site::RngDraws, 100);
        assert!(report().is_empty());
    }

    #[test]
    fn enabled_probes_accumulate_and_merge() {
        set_enabled(true);
        reset();
        {
            let _t = timer(Site::StoreRead);
        }
        {
            let _t = timer(Site::StoreRead);
        }
        count(Site::RngDraws, 7);
        // A worker thread's counts must survive its exit.
        std::thread::spawn(|| {
            let _t = timer(Site::CtrlSubmit);
        })
        .join()
        .unwrap();
        let r = report();
        set_enabled(false);
        let get = |name: &str| r.iter().find(|s| s.name == name).cloned();
        let reads = get("store_read").expect("store_read recorded");
        assert_eq!(reads.calls, 2);
        assert_eq!(get("rng_draws").expect("counter recorded").calls, 7);
        assert_eq!(get("ctrl_submit").expect("thread flushed").calls, 1);
        reset();
    }

    #[test]
    fn report_sorts_by_time() {
        set_enabled(true);
        reset();
        LOCAL.with(|l| {
            l.borrow_mut().0[Site::CtrlAdvance as usize] = (1, 500);
            l.borrow_mut().0[Site::StoreWrite as usize] = (9, 100);
        });
        let r = report();
        set_enabled(false);
        assert_eq!(r[0].name, "ctrl_advance");
        assert_eq!(r[1].name, "store_write");
        reset();
    }

    #[test]
    fn site_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = Site::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Site::COUNT);
        for (i, s) in Site::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "discriminants must be dense");
        }
    }
}
