//! Plain-text table formatting for the figure/table harness.
//!
//! The benchmark harness regenerates every table and figure of the paper
//! as aligned plain text; this module is the shared formatter. No external
//! dependency is needed — rows are strings, columns are padded to the
//! widest cell.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::TextTable;
///
/// let mut t = TextTable::new(&["scheme", "speedup"]);
/// t.row(&["baseline", "1.00"]);
/// t.row(&["LazyC", "1.21"]);
/// let s = t.to_string();
/// assert!(s.contains("LazyC"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Shorter rows are padded with empty cells; longer
    /// rows are truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) -> &mut TextTable {
        let mut r: Vec<String> = cells.iter().map(|s| (*s).to_owned()).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut TextTable {
        let mut r = cells;
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders labelled values as a horizontal ASCII bar chart, scaled to the
/// largest value.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::table::bar_chart;
///
/// let s = bar_chart(&[("a".into(), 2.0), ("b".into(), 1.0)], 10);
/// assert!(s.lines().count() == 2);
/// assert!(s.contains("##########"));
/// ```
#[must_use]
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let n = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$}  {:<width$}  {v:.3}
",
            "#".repeat(n)
        ));
    }
    out
}

/// Formats a float with 3 decimal places (the harness's default precision).
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage with one decimal place.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
        t.row(&["x", "y", "ignored"]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(!s.contains("ignored"));
    }

    #[test]
    fn helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.115), "11.5%");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(
            &[
                ("long-label".into(), 4.0),
                ("x".into(), 2.0),
                ("z".into(), 0.0),
            ],
            8,
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(&"#".repeat(8)));
        assert!(lines[1].contains(&"#".repeat(4)));
        assert!(!lines[2].contains('#'));
        assert!(lines[0].starts_with("long-label"));
    }

    #[test]
    fn bar_chart_empty_is_empty() {
        assert_eq!(bar_chart(&[], 10), "");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(&["h"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains('h'));
    }
}
