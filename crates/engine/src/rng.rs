//! Seeded random-number streams.
//!
//! Every stochastic element of the reproduction — trace generation,
//! disturbance draws, wear sampling — derives its stream from a single
//! experiment seed plus a component label. Labels isolate the streams:
//! adding a new consumer of randomness (say, another injected fault site)
//! does not shift the draws observed by existing components, which keeps
//! experiments comparable across code revisions.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna)
//! seeded through SplitMix64 — no external crates, fully deterministic
//! across platforms, and fast enough that the RNG never shows up in
//! profiles.

/// A deterministic random stream tied to `(seed, label)`.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::SimRng;
///
/// let mut a = SimRng::from_seed_label(42, "disturb");
/// let mut b = SimRng::from_seed_label(42, "disturb");
/// assert_eq!(a.next_u64(), b.next_u64()); // same stream
///
/// let mut c = SimRng::from_seed_label(42, "trace");
/// assert_ne!(SimRng::from_seed_label(42, "disturb").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a raw 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> SimRng {
        // SplitMix64 expansion of the seed into the xoshiro state; the
        // expanded words are never all zero.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Creates a stream from an experiment seed and a component label.
    ///
    /// The label is folded into the seed with FNV-1a so distinct labels
    /// yield statistically independent streams.
    #[must_use]
    pub fn from_seed_label(seed: u64, label: &str) -> SimRng {
        SimRng::from_seed(fold_label(seed, label))
    }

    /// Derives a child stream; children with distinct labels are
    /// independent of each other and of the parent's future output.
    #[must_use]
    pub fn derive(&mut self, label: &str) -> SimRng {
        let base = self.next_u64();
        SimRng::from_seed(fold_label(base, label))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-shift reduction with rejection: unbiased.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index() requires a non-empty range");
        self.below(len as u64) as usize
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    ///
    /// Decision-identical to the historical `unit() < p` form (see
    /// [`ChanceGate`] for why), but per-call it builds the integer
    /// threshold from scratch; hot loops with a fixed `p` should build
    /// the gate once and use [`SimRng::chance_gate`].
    pub fn chance(&mut self, p: f64) -> bool {
        self.chance_gate(ChanceGate::new(p))
    }

    /// Bernoulli trial against a precomputed [`ChanceGate`]. Consumes
    /// exactly the draws [`SimRng::chance`] would for the same `p`: one
    /// `next_u64` for `p` in `(0, 1)`, none at the clamped extremes.
    #[inline]
    pub fn chance_gate(&mut self, gate: ChanceGate) -> bool {
        match gate.threshold {
            ChanceGate::NEVER => false,
            ChanceGate::ALWAYS => true,
            t => (self.next_u64() >> 11) < t,
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the canonical [0, 1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A draw from the geometric distribution: number of failures before
    /// the first success with success probability `p`.
    ///
    /// Used for sparse event processes (e.g. skipping ahead to the next
    /// disturbed cell instead of rolling every cell).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric() requires p in (0,1]");
        if p >= 1.0 {
            return 0;
        }
        let u = self.unit().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// A Poisson draw with mean `lambda`, via inversion (adequate for the
    /// small means used by the wear model).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson() requires a finite non-negative mean"
        );
        if lambda == 0.0 {
            return 0;
        }
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut prod = self.unit();
        while prod > limit {
            k += 1;
            prod *= self.unit();
            if k > 10_000 {
                break; // numeric safety valve; unreachable for sane lambda
            }
        }
        k
    }
}

/// A precomputed Bernoulli threshold for a fixed probability.
///
/// The historical draw is `unit() < p` with `unit() = (x >> 11) as f64 ·
/// 2⁻⁵³` — a u64→f64 convert, multiply, and compare per draw. Both sides
/// of that comparison are exact: `k = x >> 11 < 2⁵³` is exactly
/// representable, scaling by the power of two 2⁻⁵³ is exact, and so is
/// `p · 2⁵³` (an exponent shift, even from subnormal `p`). Therefore
///
/// ```text
/// k·2⁻⁵³ < p  ⟺  k < p·2⁵³  ⟺  k < ceil(p·2⁵³)
/// ```
///
/// (the last step because `k` is an integer), which turns every draw
/// into a shift and an integer compare — decision-identical to the f64
/// reference by construction, bit for bit. Pinned by the property test
/// in `tests/properties.rs` and the sweep below.
///
/// `p ≤ 0` and `p ≥ 1` are resolved without consuming a draw, exactly
/// like [`SimRng::chance`] always has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanceGate {
    threshold: u64,
}

impl ChanceGate {
    /// Sentinel: `false` without drawing (p ≤ 0).
    const NEVER: u64 = 0;
    /// Sentinel: `true` without drawing (p ≥ 1). Distinct from every
    /// real threshold, which is at most 2⁵³.
    const ALWAYS: u64 = u64::MAX;

    /// Builds the gate for probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn new(p: f64) -> ChanceGate {
        let threshold = if p <= 0.0 {
            ChanceGate::NEVER
        } else if p >= 1.0 {
            ChanceGate::ALWAYS
        } else {
            // Exact product (power-of-two scale), then an exact ceil and
            // cast: the result is in [1, 2^53].
            (p * 9_007_199_254_740_992.0).ceil() as u64
        };
        ChanceGate { threshold }
    }

    /// Whether the gate can never fire (p ≤ 0) — callers skip whole
    /// draw loops on this.
    #[must_use]
    pub fn is_never(self) -> bool {
        self.threshold == ChanceGate::NEVER
    }
}

fn fold_label(seed: u64, label: &str) -> u64 {
    // FNV-1a over the seed bytes then the label bytes.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in seed.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = SimRng::from_seed_label(7, "x");
        let mut b = SimRng::from_seed_label(7, "x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_separate_streams() {
        let mut a = SimRng::from_seed_label(7, "x");
        let mut b = SimRng::from_seed_label(7, "y");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn gate_matches_f64_reference_across_sweep() {
        // Probability sweep from the issue: 0, subnormal-adjacent,
        // calibrated WD rates, 0.5, 1−ε, 1, plus out-of-range clamps.
        let ps = [
            0.0,
            -1.0,
            f64::MIN_POSITIVE, // smallest normal
            5e-324,            // smallest subnormal
            1e-300,
            1e-12,
            0.099,
            0.115,
            0.3,
            0.5,
            0.9,
            1.0 - f64::EPSILON,
            1.0,
            1.5,
        ];
        for &p in &ps {
            let mut reference = SimRng::from_seed_label(11, "gate-sweep");
            let mut gated = SimRng::from_seed_label(11, "gate-sweep");
            let gate = ChanceGate::new(p);
            for i in 0..4096 {
                // The historical decision procedure, verbatim.
                let expect = if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    reference.unit() < p
                };
                assert_eq!(gated.chance_gate(gate), expect, "p={p} draw={i}");
            }
            // Draw consumption must match too, or streams desynchronize.
            assert_eq!(reference.next_u64(), gated.next_u64(), "p={p}");
        }
    }

    #[test]
    fn gate_extremes_consume_no_draws() {
        let mut r = SimRng::from_seed(17);
        let before = r.clone().next_u64();
        assert!(!r.chance_gate(ChanceGate::new(0.0)));
        assert!(r.chance_gate(ChanceGate::new(1.0)));
        assert!(ChanceGate::new(0.0).is_never());
        assert!(!ChanceGate::new(0.5).is_never());
        assert_eq!(r.next_u64(), before, "extremes must not advance the stream");
    }

    #[test]
    fn chance_rate_is_close() {
        let mut r = SimRng::from_seed(2);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.chance(0.115)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.115).abs() < 0.005, "rate={rate}");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = SimRng::from_seed(3);
        let p = 0.2;
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p; // failures before success
        assert!((mean - expect).abs() < 0.1, "mean={mean} expect={expect}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = SimRng::from_seed(4);
        let lambda = 2.5;
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean={mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn below_and_index_bounds() {
        let mut r = SimRng::from_seed(5);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn below_covers_the_range() {
        let mut r = SimRng::from_seed(8);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn unit_is_half_open() {
        let mut r = SimRng::from_seed(9);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn derive_produces_independent_children() {
        let mut parent = SimRng::from_seed(6);
        let mut c1 = parent.derive("a");
        let mut c2 = parent.derive("a"); // different parent position
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
