//! Seeded random-number streams.
//!
//! Every stochastic element of the reproduction — trace generation,
//! disturbance draws, wear sampling — derives its stream from a single
//! experiment seed plus a component label. Labels isolate the streams:
//! adding a new consumer of randomness (say, another injected fault site)
//! does not shift the draws observed by existing components, which keeps
//! experiments comparable across code revisions.
//!
//! The generator is a self-contained Philox4x32-10 (Salmon et al.,
//! SC'11 "Parallel random numbers: as easy as 1, 2, 3") — a
//! counter-based PRF: `draw = philox(key, counter)`. Unlike the
//! sequential xoshiro generator this replaced, a draw is a pure
//! function of `(stream identity, draw index)`, so draws are
//! *order-free*: any thread can compute draw `i` of any stream without
//! having observed draws `0..i`. That is what lets WD sampling and the
//! bank-sharded controller advance run in parallel while staying
//! bit-identical at any worker count.
//!
//! Two access patterns share one generator:
//!
//! * [`SimRng`] — the historical sequential facade (a stream plus a
//!   cursor). All distribution helpers live here.
//! * [`RngStream`] — an immutable stream identity with random access:
//!   [`RngStream::at`] returns draw `i`, [`RngStream::keyed`] /
//!   [`RngStream::labeled`] derive independent substreams without
//!   consuming draws, in any order, from shared references.
//!
//! No external crates, fully deterministic across platforms.

/// Philox4x32 round multipliers and Weyl key increments (Random123).
const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;

/// One Philox4x32-10 block: encrypt a 128-bit counter under a 64-bit key.
#[inline]
#[must_use]
pub fn philox4x32_10(mut ctr: [u32; 4], mut key: [u32; 2]) -> [u32; 4] {
    for _ in 0..10 {
        let p0 = u64::from(ctr[0]) * u64::from(PHILOX_M0);
        let p1 = u64::from(ctr[2]) * u64::from(PHILOX_M1);
        ctr = [
            ((p1 >> 32) as u32) ^ ctr[1] ^ key[0],
            p1 as u32,
            ((p0 >> 32) as u32) ^ ctr[3] ^ key[1],
            p0 as u32,
        ];
        key[0] = key[0].wrapping_add(PHILOX_W0);
        key[1] = key[1].wrapping_add(PHILOX_W1);
    }
    ctr
}

/// SplitMix64 finalizer — used to spread seeds/sub-keys over the full
/// 64-bit space before they become Philox key/counter material.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An immutable random-stream identity with order-free access.
///
/// A stream is `(key, space)`: the 64-bit Philox key plus a 64-bit
/// subspace id that occupies the high half of the 128-bit counter.
/// Draw `i` is `philox(key, [space, i])` — a pure function, so any
/// draw of any stream can be computed at any time, in any order, from
/// a shared reference.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::RngStream;
///
/// let s = RngStream::from_seed_label(42, "disturb");
/// let forward: Vec<u64> = (0..4).map(|i| s.at(i)).collect();
/// let backward: Vec<u64> = (0..4).rev().map(|i| s.at(i)).collect();
/// assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
///
/// // Substreams derive without consuming draws:
/// let line_a = s.keyed(0xA);
/// let line_b = s.keyed(0xB);
/// assert_ne!(line_a.at(0), line_b.at(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngStream {
    key: [u32; 2],
    space: u64,
}

impl RngStream {
    /// Creates a stream from a raw 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> RngStream {
        let k = splitmix64(seed);
        RngStream {
            key: [k as u32, (k >> 32) as u32],
            space: splitmix64(k),
        }
    }

    /// Creates a stream from an experiment seed and a component label.
    #[must_use]
    pub fn from_seed_label(seed: u64, label: &str) -> RngStream {
        RngStream::from_seed(fold_label(seed, label))
    }

    /// Derives an independent substream for numeric key `k` (e.g. a line
    /// address or an injection epoch). Chains freely:
    /// `s.keyed(line).keyed(epoch)`. Consumes no draws and needs no
    /// mutable access, so derivation is itself order-free.
    #[must_use]
    #[inline]
    pub fn keyed(&self, k: u64) -> RngStream {
        RngStream {
            key: self.key,
            space: splitmix64(self.space ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Derives an independent substream for a string label.
    #[must_use]
    pub fn labeled(&self, label: &str) -> RngStream {
        RngStream {
            key: self.key,
            space: splitmix64(fold_label(self.space, label)),
        }
    }

    /// Draw `i` of this stream — a pure function of `(self, i)`.
    #[must_use]
    #[inline]
    pub fn at(&self, i: u64) -> u64 {
        let ctr = [
            self.space as u32,
            (self.space >> 32) as u32,
            i as u32,
            (i >> 32) as u32,
        ];
        let x = philox4x32_10(ctr, self.key);
        u64::from(x[0]) | (u64::from(x[1]) << 32)
    }

    /// A sequential cursor over this stream, starting at draw 0.
    #[must_use]
    pub fn sequence(&self) -> SimRng {
        SimRng {
            stream: *self,
            ctr: 0,
        }
    }
}

/// A deterministic random stream tied to `(seed, label)` — the
/// sequential facade over [`RngStream`] (a stream plus a draw cursor).
///
/// # Examples
///
/// ```
/// use sdpcm_engine::SimRng;
///
/// let mut a = SimRng::from_seed_label(42, "disturb");
/// let mut b = SimRng::from_seed_label(42, "disturb");
/// assert_eq!(a.next_u64(), b.next_u64()); // same stream
///
/// let mut c = SimRng::from_seed_label(42, "trace");
/// assert_ne!(SimRng::from_seed_label(42, "disturb").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    stream: RngStream,
    ctr: u64,
}

impl SimRng {
    /// Creates a stream from a raw 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> SimRng {
        RngStream::from_seed(seed).sequence()
    }

    /// Creates a stream from an experiment seed and a component label.
    ///
    /// The label is folded into the seed with FNV-1a so distinct labels
    /// yield statistically independent streams.
    #[must_use]
    pub fn from_seed_label(seed: u64, label: &str) -> SimRng {
        RngStream::from_seed_label(seed, label).sequence()
    }

    /// Derives a child stream; children with distinct labels are
    /// independent of each other and of the parent's future output.
    /// Consumes one draw, so successive derivations with the same label
    /// also differ.
    #[must_use]
    pub fn derive(&mut self, label: &str) -> SimRng {
        let base = self.next_u64();
        SimRng::from_seed(fold_label(base, label))
    }

    /// Derives an order-free [`RngStream`] the same way [`SimRng::derive`]
    /// derives a child cursor (consumes one draw).
    #[must_use]
    pub fn derive_stream(&mut self, label: &str) -> RngStream {
        let base = self.next_u64();
        RngStream::from_seed(fold_label(base, label))
    }

    /// The underlying order-free stream at the current cursor position's
    /// identity (ignores the cursor).
    #[must_use]
    pub fn stream(&self) -> RngStream {
        self.stream
    }

    /// Next raw 64-bit value: draw `ctr` of the stream, then advance.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let v = self.stream.at(self.ctr);
        self.ctr += 1;
        v
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-shift reduction with rejection: unbiased.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index() requires a non-empty range");
        self.below(len as u64) as usize
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    ///
    /// Decision-identical to the historical `unit() < p` form (see
    /// [`ChanceGate`] for why), but per-call it builds the integer
    /// threshold from scratch; hot loops with a fixed `p` should build
    /// the gate once and use [`SimRng::chance_gate`].
    pub fn chance(&mut self, p: f64) -> bool {
        self.chance_gate(ChanceGate::new(p))
    }

    /// Bernoulli trial against a precomputed [`ChanceGate`]. Consumes
    /// exactly the draws [`SimRng::chance`] would for the same `p`: one
    /// `next_u64` for `p` in `(0, 1)`, none at the clamped extremes.
    #[inline]
    pub fn chance_gate(&mut self, gate: ChanceGate) -> bool {
        match gate.threshold {
            ChanceGate::NEVER => false,
            ChanceGate::ALWAYS => true,
            t => (self.next_u64() >> 11) < t,
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the canonical [0, 1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A draw from the geometric distribution: number of failures before
    /// the first success with success probability `p`.
    ///
    /// Used for sparse event processes (e.g. skipping ahead to the next
    /// disturbed cell instead of rolling every cell).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric() requires p in (0,1]");
        if p >= 1.0 {
            return 0;
        }
        let u = self.unit().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// A Poisson draw with mean `lambda`, via inversion (adequate for the
    /// small means used by the wear model).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson() requires a finite non-negative mean"
        );
        if lambda == 0.0 {
            return 0;
        }
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut prod = self.unit();
        while prod > limit {
            k += 1;
            prod *= self.unit();
            if k > 10_000 {
                break; // numeric safety valve; unreachable for sane lambda
            }
        }
        k
    }
}

/// A precomputed Bernoulli threshold for a fixed probability.
///
/// The historical draw is `unit() < p` with `unit() = (x >> 11) as f64 ·
/// 2⁻⁵³` — a u64→f64 convert, multiply, and compare per draw. Both sides
/// of that comparison are exact: `k = x >> 11 < 2⁵³` is exactly
/// representable, scaling by the power of two 2⁻⁵³ is exact, and so is
/// `p · 2⁵³` (an exponent shift, even from subnormal `p`). Therefore
///
/// ```text
/// k·2⁻⁵³ < p  ⟺  k < p·2⁵³  ⟺  k < ceil(p·2⁵³)
/// ```
///
/// (the last step because `k` is an integer), which turns every draw
/// into a shift and an integer compare — decision-identical to the f64
/// reference by construction, bit for bit. Pinned by the property test
/// in `tests/properties.rs` and the sweep below.
///
/// `p ≤ 0` and `p ≥ 1` are resolved without consuming a draw, exactly
/// like [`SimRng::chance`] always has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanceGate {
    threshold: u64,
}

impl ChanceGate {
    /// Sentinel: `false` without drawing (p ≤ 0).
    const NEVER: u64 = 0;
    /// Sentinel: `true` without drawing (p ≥ 1). Distinct from every
    /// real threshold, which is at most 2⁵³.
    const ALWAYS: u64 = u64::MAX;

    /// Builds the gate for probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn new(p: f64) -> ChanceGate {
        let threshold = if p <= 0.0 {
            ChanceGate::NEVER
        } else if p >= 1.0 {
            ChanceGate::ALWAYS
        } else {
            // Exact product (power-of-two scale), then an exact ceil and
            // cast: the result is in [1, 2^53].
            (p * 9_007_199_254_740_992.0).ceil() as u64
        };
        ChanceGate { threshold }
    }

    /// Whether the gate can never fire (p ≤ 0) — callers skip whole
    /// draw loops on this.
    #[must_use]
    pub fn is_never(self) -> bool {
        self.threshold == ChanceGate::NEVER
    }

    /// Decides the trial against raw draw `x` (as produced by
    /// [`RngStream::at`]) without a cursor. `None` means the gate needs
    /// no draw (sentinel probabilities).
    #[must_use]
    #[inline]
    pub fn decide(self, x: u64) -> bool {
        match self.threshold {
            ChanceGate::NEVER => false,
            ChanceGate::ALWAYS => true,
            t => (x >> 11) < t,
        }
    }
}

fn fold_label(seed: u64, label: &str) -> u64 {
    // FNV-1a over the seed bytes then the label bytes.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in seed.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published Random123 known-answer vectors for philox4x32-10
    /// (from the Random123 distribution's `kat_vectors` file).
    #[test]
    fn philox4x32_10_known_answers() {
        assert_eq!(
            philox4x32_10([0, 0, 0, 0], [0, 0]),
            [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]
        );
        assert_eq!(
            philox4x32_10([0xffff_ffff; 4], [0xffff_ffff, 0xffff_ffff]),
            [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]
        );
        assert_eq!(
            philox4x32_10(
                [0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344],
                [0xa409_3822, 0x299f_31d0]
            ),
            [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]
        );
    }

    #[test]
    fn reproducible_streams() {
        let mut a = SimRng::from_seed_label(7, "x");
        let mut b = SimRng::from_seed_label(7, "x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_separate_streams() {
        let mut a = SimRng::from_seed_label(7, "x");
        let mut b = SimRng::from_seed_label(7, "y");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_access_is_order_free() {
        let s = RngStream::from_seed_label(123, "order");
        let forward: Vec<u64> = (0..64).map(|i| s.at(i)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|i| s.at(i)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "draw i must not depend on draw order"
        );
        // And the sequential facade sees exactly the same values.
        let mut seq = s.sequence();
        for (i, &v) in forward.iter().enumerate() {
            assert_eq!(seq.next_u64(), v, "cursor draw {i}");
        }
    }

    #[test]
    fn stream_access_is_thread_interleaving_free() {
        // Eight threads draw overlapping windows of the same shared
        // stream in different orders; all must agree with the serial
        // reference. This is the property the bank-sharded advance
        // relies on.
        let s = RngStream::from_seed_label(7, "threads");
        let reference: Vec<u64> = (0..256).map(|i| s.at(i)).collect();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let reference = &reference;
                let s = &s;
                scope.spawn(move || {
                    // Each thread walks the window in a different stride
                    // order.
                    for k in 0..256u64 {
                        let i = (k.wrapping_mul(2 * t + 1) + t * 37) % 256;
                        assert_eq!(s.at(i), reference[i as usize]);
                    }
                });
            }
        });
    }

    #[test]
    fn keyed_substreams_are_independent_and_stable() {
        let s = RngStream::from_seed(99);
        let a = s.keyed(1);
        let b = s.keyed(2);
        assert_ne!(a, b);
        assert_ne!(a.at(0), b.at(0));
        // Derivation is pure: same key, same substream, regardless of
        // what else was derived in between.
        let _ = s.keyed(77).keyed(3).at(5);
        assert_eq!(s.keyed(1), a);
        // Chained keys differ from single keys.
        assert_ne!(s.keyed(1).keyed(2), s.keyed(2).keyed(1));
        // Labeled substreams too.
        assert_ne!(s.labeled("wl"), s.labeled("bl"));
        assert_eq!(s.labeled("wl"), s.labeled("wl"));
    }

    #[test]
    fn gate_decide_matches_cursor_gate() {
        let s = RngStream::from_seed(4242);
        for &p in &[0.0, 0.099, 0.115, 0.5, 0.999, 1.0] {
            let gate = ChanceGate::new(p);
            let mut seq = s.sequence();
            for i in 0..512 {
                // decide(at(i)) must agree with the cursor walking the
                // same stream — gates never consume draws at extremes.
                let raw = s.at(i);
                let want = if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    seq.chance_gate(gate)
                };
                assert_eq!(gate.decide(raw), want, "p={p} i={i}");
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn gate_matches_f64_reference_across_sweep() {
        // Probability sweep from the issue: 0, subnormal-adjacent,
        // calibrated WD rates, 0.5, 1−ε, 1, plus out-of-range clamps.
        let ps = [
            0.0,
            -1.0,
            f64::MIN_POSITIVE, // smallest normal
            5e-324,            // smallest subnormal
            1e-300,
            1e-12,
            0.099,
            0.115,
            0.3,
            0.5,
            0.9,
            1.0 - f64::EPSILON,
            1.0,
            1.5,
        ];
        for &p in &ps {
            let mut reference = SimRng::from_seed_label(11, "gate-sweep");
            let mut gated = SimRng::from_seed_label(11, "gate-sweep");
            let gate = ChanceGate::new(p);
            for i in 0..4096 {
                // The historical decision procedure, verbatim.
                let expect = if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    reference.unit() < p
                };
                assert_eq!(gated.chance_gate(gate), expect, "p={p} draw={i}");
            }
            // Draw consumption must match too, or streams desynchronize.
            assert_eq!(reference.next_u64(), gated.next_u64(), "p={p}");
        }
    }

    #[test]
    fn gate_extremes_consume_no_draws() {
        let mut r = SimRng::from_seed(17);
        let before = r.clone().next_u64();
        assert!(!r.chance_gate(ChanceGate::new(0.0)));
        assert!(r.chance_gate(ChanceGate::new(1.0)));
        assert!(ChanceGate::new(0.0).is_never());
        assert!(!ChanceGate::new(0.5).is_never());
        assert_eq!(r.next_u64(), before, "extremes must not advance the stream");
    }

    #[test]
    fn chance_rate_is_close() {
        let mut r = SimRng::from_seed(2);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.chance(0.115)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.115).abs() < 0.005, "rate={rate}");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = SimRng::from_seed(3);
        let p = 0.2;
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p; // failures before success
        assert!((mean - expect).abs() < 0.1, "mean={mean} expect={expect}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = SimRng::from_seed(4);
        let lambda = 2.5;
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean={mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn below_and_index_bounds() {
        let mut r = SimRng::from_seed(5);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn below_covers_the_range() {
        let mut r = SimRng::from_seed(8);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn unit_is_half_open() {
        let mut r = SimRng::from_seed(9);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn derive_produces_independent_children() {
        let mut parent = SimRng::from_seed(6);
        let mut c1 = parent.derive("a");
        let mut c2 = parent.derive("a"); // different parent position
        assert_ne!(c1.next_u64(), c2.next_u64());
        let s1 = parent.derive_stream("b");
        let s2 = parent.derive_stream("b");
        assert_ne!(s1.at(0), s2.at(0));
    }
}
