//! Deterministic time-ordered event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders events
//! by time and breaks ties by insertion sequence number. Deterministic tie
//! breaking matters: the SD-PCM experiments are all seeded, and two events
//! scheduled for the same cycle (e.g. two banks completing simultaneously)
//! must always pop in the same order for runs to be reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::Cycle;

struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-heap of `(Cycle, E)` pairs with deterministic FIFO tie breaking.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(10), 'b');
/// q.push(Cycle(10), 'c'); // same time: FIFO order preserved
/// q.push(Cycle(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Returns the time of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle(5), ());
        q.push(Cycle(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 'a');
        q.push(Cycle(1), 'z');
        assert_eq!(q.pop(), Some((Cycle(1), 'z')));
        q.push(Cycle(4), 'm');
        assert_eq!(q.pop(), Some((Cycle(4), 'm')));
        assert_eq!(q.pop(), Some((Cycle(10), 'a')));
    }
}
