//! Counters, running statistics and histograms.
//!
//! Every row of every reproduced table/figure is assembled from these
//! primitives. They are intentionally simple: plain accumulation, no
//! interior mutability, `Default`-constructible, and mergeable so that
//! per-bank statistics can be folded into system totals.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::Counter;
///
/// let mut writes = Counter::default();
/// writes.add(3);
/// writes.inc();
/// assert_eq!(writes.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another counter into this one.
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }

    /// This counter as a fraction of `denom` (0 when `denom` is 0).
    #[must_use]
    pub fn per(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean / min / max / variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use sdpcm_engine::RunningStat;
///
/// let mut s = RunningStat::default();
/// for v in [1.0, 2.0, 3.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty statistic.
    #[must_use]
    pub fn new() -> RunningStat {
        RunningStat::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, v: f64) {
        if self.n == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Folds `other` into this statistic (Chan et al. parallel merge).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// A histogram over `u64` observations with unit-width integer buckets up
/// to a cap; larger values land in an overflow bucket.
///
/// Used for e.g. "WD errors per line write" (Figure 4), where the paper
/// reports both the average and the maximum.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::Histogram;
///
/// let mut h = Histogram::with_cap(16);
/// h.record(0);
/// h.record(2);
/// h.record(2);
/// assert_eq!(h.count_at(2), 2);
/// assert_eq!(h.max_observed(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
    max_seen: Option<u64>,
}

impl Histogram {
    /// Creates a histogram with unit buckets `0..cap` plus overflow.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_cap(cap: usize) -> Histogram {
        assert!(cap > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; cap],
            overflow: 0,
            total: 0,
            sum: 0,
            max_seen: None,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, v: u64) {
        if (v as usize) < self.buckets.len() {
            self.buckets[v as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += v;
        self.max_seen = Some(self.max_seen.map_or(v, |m| m.max(v)));
    }

    /// Number of observations equal to `v` (0 if `v` is in overflow).
    #[must_use]
    pub fn count_at(&self, v: u64) -> u64 {
        self.buckets.get(v as usize).copied().unwrap_or(0)
    }

    /// Observations beyond the bucket cap.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest observation so far.
    #[must_use]
    pub fn max_observed(&self) -> Option<u64> {
        self.max_seen
    }

    /// Folds another histogram (same cap) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket caps differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "cannot merge histograms with different caps"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = match (self.max_seen, other.max_seen) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A log₂-bucketed quantile sketch for latency-like values.
///
/// Values land in bucket `⌊log₂(v)⌋` (64 buckets cover all of `u64`), so
/// quantiles are exact to within a factor of 2 at any scale with O(1)
/// memory — plenty for tail-latency reporting (p95/p99 of read
/// latencies), where the interesting differences are multiples.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::stats::QuantileSketch;
///
/// let mut q = QuantileSketch::new();
/// for v in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 8000] {
///     q.record(v);
/// }
/// assert!(q.quantile(0.5) < 256);
/// assert!(q.quantile(0.99) >= 4096.0 as u64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: [u64; 64],
    total: u64,
}

impl QuantileSketch {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            buckets: [0; 64],
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let idx = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// An upper bound of the `q`-quantile (`0 < q ≤ 1`): the top of the
    /// bucket containing it. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
        if self.total == 0 {
            return 0;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        u64::MAX
    }

    /// Folds another sketch into this one.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.total += other.total;
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

/// Geometric mean of a slice of positive values; 0 for an empty slice.
///
/// The paper's speedup bars are summarized with a geometric mean
/// ("gmean" in Figure 11).
///
/// # Panics
///
/// Panics if any value is not strictly positive.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.per(20) - 0.5).abs() < 1e-12);
        assert_eq!(c.per(0), 0.0);
        let mut d = Counter::new();
        d.add(5);
        c.merge(d);
        assert_eq!(c.get(), 15);
    }

    #[test]
    fn running_stat_mean_var() {
        let mut s = RunningStat::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stat_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStat::new();
        for &v in &data {
            whole.push(v);
        }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &v in &data[..37] {
            a.push(v);
        }
        for &v in &data[37..] {
            b.push(v);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn empty_stat_is_zeroed() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_counts() {
        let mut h = Histogram::with_cap(4);
        for v in [0, 1, 1, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count_at(1), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_observed(), Some(9));
        assert!((h.mean() - 14.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::with_cap(4);
        let mut b = Histogram::with_cap(4);
        a.record(1);
        b.record(2);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_at(2), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.max_observed(), Some(7));
    }

    #[test]
    #[should_panic(expected = "different caps")]
    fn histogram_merge_cap_mismatch_panics() {
        let mut a = Histogram::with_cap(4);
        let b = Histogram::with_cap(8);
        a.merge(&b);
    }

    #[test]
    fn quantile_sketch_orders_scales() {
        let mut q = QuantileSketch::new();
        for _ in 0..90 {
            q.record(400);
        }
        for _ in 0..10 {
            q.record(70_000);
        }
        assert_eq!(q.total(), 100);
        let p50 = q.quantile(0.5);
        let p99 = q.quantile(0.99);
        assert!((400..1024).contains(&p50), "p50={p50}");
        assert!(p99 >= 65_536, "p99={p99}");
        assert!(q.quantile(1.0) >= p99);
    }

    #[test]
    fn quantile_sketch_empty_and_merge() {
        let mut a = QuantileSketch::new();
        assert_eq!(a.quantile(0.5), 0);
        a.record(8);
        let mut b = QuantileSketch::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert!(a.quantile(1.0) >= 1_000_000);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_zero_panics() {
        let _ = QuantileSketch::new().quantile(0.0);
    }

    #[test]
    fn gmean() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
