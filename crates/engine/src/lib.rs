#![warn(missing_docs)]

//! Discrete-event simulation kernel for the SD-PCM reproduction.
//!
//! This crate provides the timing, randomness, and bookkeeping substrate
//! shared by every other crate in the workspace:
//!
//! * [`Cycle`] — the global simulated clock (CPU cycles at 4 GHz, per the
//!   paper's Table 2), with nanosecond conversions.
//! * [`EventQueue`] — a deterministic time-ordered event queue. Ties are
//!   broken by insertion order so simulations are bit-for-bit reproducible.
//! * [`SimRng`] — seeded random-number streams with stable per-component
//!   derivation, so adding a new consumer of randomness does not perturb
//!   the draws seen by existing components.
//! * [`stats`] — counters, running statistics and histograms used to build
//!   every table and figure of the evaluation.
//! * [`hash`] — a deterministic FxHash-style hasher for the simulator's
//!   hot-path maps (the DoS-resistant std default is wasted cost here).
//! * [`prof`] — the always-compiled, zero-cost-when-disabled profiler
//!   behind `SDPCM_PROF=1` and `figures bench --profile`.
//!
//! # Examples
//!
//! ```
//! use sdpcm_engine::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle(400), "read done");
//! q.push(Cycle(100), "write issued");
//! assert_eq!(q.pop(), Some((Cycle(100), "write issued")));
//! assert_eq!(q.pop(), Some((Cycle(400), "read done")));
//! ```

pub mod clock;
pub mod events;
pub mod hash;
pub mod prof;
pub mod rng;
pub mod stats;
pub mod table;

pub use clock::Cycle;
pub use events::EventQueue;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use rng::{ChanceGate, RngStream, SimRng};
pub use stats::{Counter, Histogram, QuantileSketch, RunningStat};
pub use table::TextTable;
