//! A fast, non-cryptographic hasher for simulator-internal maps.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant,
//! which the simulator does not need: every map in the hot path is keyed
//! by small fixed-size values (`LineAddr`, request ids) that the
//! simulation itself generates. This module provides an FxHash-style
//! multiply-rotate hasher (the algorithm rustc uses for its interner
//! tables) that is 3-5x cheaper per lookup on such keys.
//!
//! Determinism note: unlike `RandomState`, [`FxBuildHasher`] is
//! stateless, so two maps built from the same insertion sequence iterate
//! in the same order within one binary. Simulation results must still
//! never depend on map iteration order — the reproducibility tests catch
//! violations — but stable ordering makes debugging divergences far
//! easier.
//!
//! # Examples
//!
//! ```
//! use sdpcm_engine::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// `HashMap` keyed with [`FxBuildHasher`]. Construct with
/// `FxHashMap::default()` (`new()` is only available for the std
/// hasher).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxBuildHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// The multiplier from Firefox/rustc's FxHash: a 64-bit constant close
/// to 2^64 / phi, spreading consecutive keys across the table.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            self.add(u64::from_le_bytes(b));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut b = [0u8; 8];
            b[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// Stateless [`BuildHasher`] producing [`FxHasher`]s.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher.hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&(3u32, 5u8)), hash_of(&(3u32, 5u8)));
        assert_ne!(hash_of(&(3u32, 5u8)), hash_of(&(3u32, 6u8)));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Streams differing only in a sub-8-byte tail must differ.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10])
        );
    }

    #[test]
    fn map_roundtrip_and_overwrite() {
        let mut m: FxHashMap<(u32, u8), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i % 7) as u8), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(999, (999 % 7) as u8)), Some(&999));
        m.insert((5, 5), 42);
        assert_eq!(m[&(5, 5)], 42);
    }

    #[test]
    fn set_membership() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(11));
        assert!(!s.insert(11));
        assert!(s.contains(&11));
    }

    #[test]
    fn consecutive_keys_spread() {
        // The multiply must spread dense keys: the low 16 bits of the
        // hashes of 0..256 should not collapse to a handful of values.
        let distinct: std::collections::HashSet<u64> =
            (0u64..256).map(|i| hash_of(&i) & 0xffff).collect();
        assert!(distinct.len() > 200, "got {} distinct", distinct.len());
    }
}
