//! The write-disturbance fault injector.
//!
//! Bridges the analytic models to the simulated device: given a write's
//! differential mask and the contents of the neighbourhood, the injector
//! rolls the calibrated per-RESET disturbance probabilities and returns
//! the cells that actually flip.
//!
//! Draws are *order-free*: every injection event carries an explicit
//! [`RngStream`] derived from the event's identity (line address and
//! per-line injection epoch via [`WdInjector::event`]), so the victims
//! of one committed write are a pure function of the experiment seed and
//! the event — not of how many other draws happened first. That is what
//! lets per-bank controller lanes inject concurrently while the full run
//! stays bit-identical at any worker count.

use sdpcm_engine::prof::{self, Site};
use sdpcm_engine::{ChanceGate, RngStream, SimRng};
use sdpcm_pcm::line::{DiffMask, LineBuf};

use crate::disturb::DisturbanceModel;
use crate::pattern::wordline_vulnerable_mask;
use crate::scaling::ArraySpacing;
use crate::thermal::Direction;

/// Substream tag for word-line draws within one injection event.
const WL_LANE: u64 = 1;
/// Substream tag base for bit-line draws (`+ side`, side in `{0, 1}`).
const BL_LANE: u64 = 2;

/// A rejected injector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WdError {
    /// A disturbance probability outside `[0, 1]`.
    InvalidProbability {
        /// Which probability was rejected (`"word-line"`/`"bit-line"`).
        which: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A storm multiplier that is negative or non-finite.
    InvalidStorm {
        /// The rejected multiplier.
        value: f64,
    },
}

impl std::fmt::Display for WdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WdError::InvalidProbability { which, value } => {
                write!(f, "{which} disturbance probability {value} outside [0, 1]")
            }
            WdError::InvalidStorm { value } => {
                write!(f, "storm multiplier {value} must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for WdError {}

/// Seeded disturbance injector for one simulated memory system.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::SimRng;
/// use sdpcm_pcm::line::{DiffMask, LineBuf};
/// use sdpcm_wd::{DisturbanceModel, WdInjector};
/// use sdpcm_wd::scaling::ArraySpacing;
///
/// let rng = SimRng::from_seed_label(1, "inject");
/// let inj = WdInjector::new(
///     &DisturbanceModel::calibrated(),
///     ArraySpacing::super_dense(),
///     rng,
/// );
/// assert!((inj.p_bitline() - 0.115).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct WdInjector {
    p_wl: f64,
    p_bl: f64,
    /// Chaos-harness multiplier on both probabilities (1.0 = calm).
    storm: f64,
    /// Integer draw thresholds for the effective `(p, storm)` pair,
    /// rebuilt only when the storm changes — the per-cell draw is a
    /// shift and an integer compare (see [`ChanceGate`]).
    gate_wl: ChanceGate,
    gate_bl: ChanceGate,
    /// Root of every injection substream; draws never mutate it.
    stream: RngStream,
}

impl WdInjector {
    /// Builds an injector for a given array spacing using the calibrated
    /// disturbance model.
    #[must_use]
    pub fn new(model: &DisturbanceModel, spacing: ArraySpacing, rng: SimRng) -> WdInjector {
        let mut inj = WdInjector {
            p_wl: model.probability(Direction::WordLine, spacing),
            p_bl: model.probability(Direction::BitLine, spacing),
            storm: 1.0,
            gate_wl: ChanceGate::new(0.0),
            gate_bl: ChanceGate::new(0.0),
            stream: rng.stream(),
        };
        inj.refresh_gates();
        inj
    }

    /// Builds an injector with explicit probabilities (ablations, chaos
    /// scenarios); rejects probabilities outside `[0, 1]`.
    pub fn with_probs(p_wl: f64, p_bl: f64, rng: SimRng) -> Result<WdInjector, WdError> {
        for (which, value) in [("word-line", p_wl), ("bit-line", p_bl)] {
            if !(0.0..=1.0).contains(&value) {
                return Err(WdError::InvalidProbability { which, value });
            }
        }
        let mut inj = WdInjector {
            p_wl,
            p_bl,
            storm: 1.0,
            gate_wl: ChanceGate::new(0.0),
            gate_bl: ChanceGate::new(0.0),
            stream: rng.stream(),
        };
        inj.refresh_gates();
        Ok(inj)
    }

    /// Rebuilds the cached draw thresholds from the effective
    /// probabilities (called whenever the storm multiplier changes).
    fn refresh_gates(&mut self) {
        self.gate_wl = ChanceGate::new(self.p_wordline());
        self.gate_bl = ChanceGate::new(self.p_bitline());
    }

    /// Per-RESET word-line disturbance probability in effect (including
    /// any active storm).
    #[must_use]
    pub fn p_wordline(&self) -> f64 {
        (self.p_wl * self.storm).clamp(0.0, 1.0)
    }

    /// Per-RESET bit-line disturbance probability in effect (including
    /// any active storm).
    #[must_use]
    pub fn p_bitline(&self) -> f64 {
        (self.p_bl * self.storm).clamp(0.0, 1.0)
    }

    /// Enters an elevated-disturbance window: both calibrated
    /// probabilities are scaled by `mult` (clamped to 1.0) until
    /// [`WdInjector::clear_storm`]. Rejects negative or non-finite
    /// multipliers.
    pub fn set_storm(&mut self, mult: f64) -> Result<(), WdError> {
        if !mult.is_finite() || mult < 0.0 {
            return Err(WdError::InvalidStorm { value: mult });
        }
        self.storm = mult;
        self.refresh_gates();
        Ok(())
    }

    /// Returns to the calibrated probabilities.
    pub fn clear_storm(&mut self) {
        self.storm = 1.0;
        self.refresh_gates();
    }

    /// The active storm multiplier (1.0 when calm).
    #[must_use]
    pub fn storm(&self) -> f64 {
        self.storm
    }

    /// The draw stream for one injection event, keyed on the event's
    /// identity — typically `(LineAddr::stream_key, per-line epoch)`.
    /// Pure: callers on different threads may derive events concurrently.
    #[must_use]
    #[inline]
    pub fn event(&self, key: u64, epoch: u64) -> RngStream {
        self.stream.keyed(key).keyed(epoch)
    }

    /// Rolls word-line disturbances for a write: which idle `0` cells of
    /// the written line flip to `1`. `after` is the line's post-write
    /// content, `diff` the write's mask, `ev` the event stream from
    /// [`WdInjector::event`].
    #[must_use]
    pub fn draw_wordline(&self, ev: &RngStream, after: &LineBuf, diff: &DiffMask) -> Vec<u16> {
        let mut out = Vec::new();
        self.draw_wordline_into(ev, after, diff, &mut out);
        out
    }

    /// Allocation-free form of [`WdInjector::draw_wordline`]: victims are
    /// appended to `out` (which is cleared first), iterating the
    /// vulnerable-cell mask directly instead of materializing the victim
    /// list. Draws walk the event's word-line substream in ascending
    /// victim order — one roll per RESET exposure with early exit on the
    /// first hit, and no draws at all when the effective probability is
    /// zero.
    pub fn draw_wordline_into(
        &self,
        ev: &RngStream,
        after: &LineBuf,
        diff: &DiffMask,
        out: &mut Vec<u16>,
    ) {
        out.clear();
        let gate = self.gate_wl;
        if gate.is_never() {
            return;
        }
        let _t = prof::timer(Site::WdDraw);
        let mut seq = ev.keyed(WL_LANE).sequence();
        let mut draws = 0u64;
        for b in wordline_vulnerable_mask(after, diff).iter_ones() {
            // A victim flanked by two RESET cells faces two independent
            // disturbance chances.
            let left = b > 0 && diff.is_reset(b - 1);
            let right = b + 1 < sdpcm_pcm::line::LINE_BITS && diff.is_reset(b + 1);
            let exposures = usize::from(left) + usize::from(right);
            for _ in 0..exposures {
                draws += 1;
                if seq.chance_gate(gate) {
                    out.push(b as u16);
                    break;
                }
            }
        }
        prof::count(Site::RngDraws, draws);
    }

    /// Rolls bit-line disturbances in one adjacent line: which of its `0`
    /// cells under RESET positions of the written line flip to `1`.
    /// `side` distinguishes the two neighbours of a write (0 = row above,
    /// 1 = row below) so their draws come from independent substreams.
    #[must_use]
    pub fn draw_bitline(
        &self,
        ev: &RngStream,
        side: usize,
        diff: &DiffMask,
        neighbor: &LineBuf,
    ) -> Vec<u16> {
        let mut out = Vec::new();
        self.draw_bitline_into(ev, side, diff, neighbor, &mut out);
        out
    }

    /// Allocation-free form of [`WdInjector::draw_bitline`]: victims are
    /// appended to `out` (cleared first), iterating the `resets & !stored`
    /// mask word by word along the event's per-side substream.
    pub fn draw_bitline_into(
        &self,
        ev: &RngStream,
        side: usize,
        diff: &DiffMask,
        neighbor: &LineBuf,
        out: &mut Vec<u16>,
    ) {
        debug_assert!(side < 2, "a write has two bit-line sides");
        out.clear();
        let gate = self.gate_bl;
        if gate.is_never() {
            return;
        }
        let _t = prof::timer(Site::WdDraw);
        let mut seq = ev.keyed(BL_LANE + side as u64).sequence();
        let mut draws = 0u64;
        let reset_mask = diff.reset_mask();
        for (wi, (&r, &n)) in reset_mask
            .words()
            .iter()
            .zip(neighbor.words().iter())
            .enumerate()
        {
            let mut vulnerable = r & !n;
            while vulnerable != 0 {
                let b = vulnerable.trailing_zeros() as usize;
                vulnerable &= vulnerable - 1;
                draws += 1;
                if seq.chance_gate(gate) {
                    out.push((wi * 64 + b) as u16);
                }
            }
        }
        prof::count(Site::RngDraws, draws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(p_wl: f64, p_bl: f64) -> WdInjector {
        WdInjector::with_probs(p_wl, p_bl, SimRng::from_seed_label(99, "inj-test"))
            .expect("test probabilities are valid")
    }

    fn reset_heavy_diff(n: usize) -> (LineBuf, DiffMask) {
        // n cells go 1 -> 0, spaced two apart so each has idle-0 victims.
        let mut old = LineBuf::zeroed();
        for i in 0..n {
            old.set_bit(i * 3, true);
        }
        let new = LineBuf::zeroed();
        (new, DiffMask::between(&old, &new))
    }

    #[test]
    fn zero_probability_injects_nothing() {
        let inj = injector(0.0, 0.0);
        let ev = inj.event(1, 0);
        let (after, diff) = reset_heavy_diff(100);
        assert!(inj.draw_wordline(&ev, &after, &diff).is_empty());
        assert!(inj
            .draw_bitline(&ev, 0, &diff, &LineBuf::zeroed())
            .is_empty());
    }

    #[test]
    fn certain_probability_disturbs_all_vulnerable() {
        let inj = injector(1.0, 1.0);
        let ev = inj.event(1, 0);
        let (after, diff) = reset_heavy_diff(10);
        let wl = inj.draw_wordline(&ev, &after, &diff);
        assert_eq!(
            wl.len(),
            crate::pattern::wordline_vulnerable(&after, &diff).len()
        );
        let bl = inj.draw_bitline(&ev, 1, &diff, &LineBuf::zeroed());
        assert_eq!(bl.len(), 10);
    }

    #[test]
    fn bitline_rate_matches_probability() {
        let inj = injector(0.0, 0.115);
        let (_, diff) = reset_heavy_diff(100);
        let neighbor = LineBuf::zeroed();
        let trials = 2000;
        let mut hits = 0usize;
        for t in 0..trials {
            // A fresh event per trial: distinct epochs are independent.
            let ev = inj.event(7, t as u64);
            hits += inj.draw_bitline(&ev, 0, &diff, &neighbor).len();
        }
        let rate = hits as f64 / (trials * 100) as f64;
        assert!((rate - 0.115).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn crystalline_neighbors_never_disturbed() {
        let inj = injector(1.0, 1.0);
        let (_, diff) = reset_heavy_diff(20);
        let ones = LineBuf::zeroed().not();
        assert!(inj
            .draw_bitline(&inj.event(3, 0), 0, &diff, &ones)
            .is_empty());
    }

    #[test]
    fn draws_depend_only_on_event_identity() {
        // The heart of the order-free contract: the victims of event
        // (key, epoch) are the same no matter what was drawn before, in
        // what order, or on which injector clone.
        let (after, diff) = reset_heavy_diff(50);
        let a = injector(0.099, 0.115);
        let b = injector(0.099, 0.115);
        let ev = a.event(42, 7);
        // `b` first draws a pile of unrelated events...
        for e in 0..32 {
            let _ = b.draw_wordline(&b.event(e, 0), &after, &diff);
        }
        // ...and still agrees with `a` about event (42, 7).
        assert_eq!(
            a.draw_wordline(&ev, &after, &diff),
            b.draw_wordline(&b.event(42, 7), &after, &diff)
        );
        assert_eq!(
            a.draw_bitline(&ev, 0, &diff, &LineBuf::zeroed()),
            b.draw_bitline(&b.event(42, 7), 0, &diff, &LineBuf::zeroed())
        );
        // The two sides of one event draw from independent substreams.
        let up = a.draw_bitline(&ev, 0, &diff, &LineBuf::zeroed());
        let down = a.draw_bitline(&ev, 1, &diff, &LineBuf::zeroed());
        // (With 50 vulnerable cells at p=0.115 the odds of identical
        // victim sets by chance are negligible; equality would mean the
        // substreams collapsed.)
        assert_ne!(up, down, "per-side substreams must be independent");
    }

    #[test]
    fn distinct_epochs_draw_independently() {
        let inj = injector(0.099, 0.115);
        let (after, diff) = reset_heavy_diff(50);
        let first = inj.draw_wordline(&inj.event(9, 0), &after, &diff);
        let second = inj.draw_wordline(&inj.event(9, 1), &after, &diff);
        assert_ne!(first, second, "epochs must not repeat draws");
    }

    #[test]
    fn into_forms_clear_and_match_collecting_forms() {
        let (after, diff) = reset_heavy_diff(50);
        let a = injector(0.099, 0.115);
        let b = injector(0.099, 0.115);
        let ev = a.event(5, 3);
        let wl_a = a.draw_wordline(&ev, &after, &diff);
        let mut wl_b = vec![999]; // stale content must be cleared
        b.draw_wordline_into(&ev, &after, &diff, &mut wl_b);
        assert_eq!(wl_a, wl_b);
        let bl_a = a.draw_bitline(&ev, 1, &diff, &LineBuf::zeroed());
        let mut bl_b = vec![999];
        b.draw_bitline_into(&ev, 1, &diff, &LineBuf::zeroed(), &mut bl_b);
        assert_eq!(bl_a, bl_b);
        // Zero probability clears the buffer without consuming draws.
        let z = injector(0.0, 0.0);
        let mut buf = vec![1, 2, 3];
        z.draw_wordline_into(&ev, &after, &diff, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn with_probs_rejects_out_of_range() {
        let rng = || SimRng::from_seed(7);
        assert_eq!(
            WdInjector::with_probs(1.5, 0.1, rng()).unwrap_err(),
            WdError::InvalidProbability {
                which: "word-line",
                value: 1.5
            }
        );
        assert_eq!(
            WdInjector::with_probs(0.1, -0.2, rng()).unwrap_err(),
            WdError::InvalidProbability {
                which: "bit-line",
                value: -0.2
            }
        );
        assert!(WdInjector::with_probs(0.0, 1.0, rng()).is_ok());
    }

    #[test]
    fn storm_scales_probabilities_and_clamps() {
        let mut inj = injector(0.099, 0.115);
        inj.set_storm(4.0).unwrap();
        assert!((inj.p_wordline() - 0.396).abs() < 1e-12);
        assert!((inj.p_bitline() - 0.46).abs() < 1e-12);
        inj.set_storm(100.0).unwrap();
        assert_eq!(inj.p_wordline(), 1.0, "clamped to a probability");
        inj.clear_storm();
        assert!((inj.p_wordline() - 0.099).abs() < 1e-12);
        assert_eq!(
            inj.set_storm(-1.0),
            Err(WdError::InvalidStorm { value: -1.0 })
        );
        assert!(inj.set_storm(f64::NAN).is_err());
    }

    #[test]
    fn storm_zero_silences_injection() {
        let mut inj = injector(1.0, 1.0);
        inj.set_storm(0.0).unwrap();
        let ev = inj.event(1, 0);
        let (after, diff) = reset_heavy_diff(20);
        assert!(inj.draw_wordline(&ev, &after, &diff).is_empty());
        assert!(inj
            .draw_bitline(&ev, 0, &diff, &LineBuf::zeroed())
            .is_empty());
    }

    #[test]
    fn built_from_model_matches_table1() {
        let inj = WdInjector::new(
            &DisturbanceModel::calibrated(),
            ArraySpacing::super_dense(),
            SimRng::from_seed(1),
        );
        assert!((inj.p_wordline() - 0.099).abs() < 1e-9);
        assert!((inj.p_bitline() - 0.115).abs() < 1e-9);
        // DIN spacing: bit-line WD-free.
        let inj = WdInjector::new(
            &DisturbanceModel::calibrated(),
            ArraySpacing::din_enhanced(),
            SimRng::from_seed(1),
        );
        assert_eq!(inj.p_bitline(), 0.0);
        assert!(inj.p_wordline() > 0.0);
    }
}
