#![warn(missing_docs)]

//! Write-disturbance (WD) models for the SD-PCM reproduction.
//!
//! Scaled PCM suffers inter-cell thermal interference during RESET: the
//! heat melted into the programmed cell leaks into its neighbours, and an
//! *idle amorphous* (bit `0`) neighbour can partially crystallize, losing
//! its stored value (paper §2.2). This crate models that phenomenon end
//! to end:
//!
//! * [`thermal`] — the cell thermal model: neighbour temperature as a
//!   function of inter-cell distance and the insulating material (GST
//!   along bit-lines in the µTrench structure, oxide along word-lines).
//! * [`scaling`] — the technology scaling model (feature size, spacing
//!   options 2F/3F/4F).
//! * [`disturb`] — the disturbance-probability model calibrated to the
//!   paper's Table 1 (310 °C → 9.9 %, 320 °C → 11.5 % per RESET).
//! * [`pattern`] — vulnerable-pattern analysis (Figure 3): which cells of
//!   a write's neighbourhood can be disturbed.
//! * [`din`] — the DIN word-line encoder [Jiang et al., DSN'14]:
//!   group-inversion coding that minimizes WL-vulnerable patterns.
//! * [`inject`] — the seeded fault injector used by the memory controller
//!   during simulated writes.
//! * [`chaos`] — deterministic fault-scenario scheduling (stuck-at
//!   bursts, elevated-WD storm windows, aging ramps) keyed on the
//!   committed write stream.

pub mod chaos;
pub mod din;
pub mod disturb;
pub mod fnw;
pub mod inject;
pub mod pattern;
pub mod scaling;
pub mod thermal;

pub use chaos::{
    ChaosAction, ChaosEngine, ChaosError, ChaosPlan, FaultEvent, FaultKind, ScheduledFault,
};
pub use din::{DinCodec, DinFlags};
pub use disturb::DisturbanceModel;
pub use fnw::FnwCodec;
pub use inject::{WdError, WdInjector};
pub use scaling::{Spacing, TechNode};
pub use thermal::ThermalModel;
