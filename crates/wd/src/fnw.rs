//! Flip-N-Write [Cho & Lee, MICRO'09] — the *wear*-oriented counterpart
//! of DIN (paper §7, related work).
//!
//! FNW splits a line into words and inverts any word for which inversion
//! programs fewer cells, guaranteeing at most `w/2` cell updates per
//! `w`-bit word. It attacks write *energy and endurance* — not write
//! disturbance: fewer programmed cells does not mean fewer
//! RESET-next-to-idle-`0` patterns. The `ablation_encoders` bench and the
//! unit tests below quantify that contrast, which is exactly why the
//! paper adopts DIN (disturbance-aware) rather than FNW for word-line
//! mitigation.
//!
//! The flag layout matches [`crate::din`]: one inversion bit per group,
//! stored in the row's spare region.

use sdpcm_pcm::line::{DiffMask, LineBuf, LINE_BITS};

use crate::din::DinFlags;

/// The Flip-N-Write codec.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::line::LineBuf;
/// use sdpcm_wd::din::DinFlags;
/// use sdpcm_wd::fnw::FnwCodec;
///
/// let codec = FnwCodec::new(32);
/// let plain = LineBuf::zeroed().not(); // all ones
/// let stored = LineBuf::zeroed();      // all zeros
/// let (encoded, flags) = codec.encode(&plain, &stored, DinFlags::default());
/// // Inverting every word stores all-zeros over all-zeros: nothing
/// // programmed at all.
/// assert_eq!(encoded, stored);
/// assert_eq!(codec.decode(&encoded, flags), plain);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnwCodec {
    group_bits: usize,
}

impl FnwCodec {
    /// Creates a codec with `group_bits` cells per inversion word.
    ///
    /// # Panics
    ///
    /// Panics unless `group_bits` divides 512 into at most 64 groups of
    /// at least 2 bits.
    #[must_use]
    pub fn new(group_bits: usize) -> FnwCodec {
        assert!(
            group_bits >= 2 && LINE_BITS.is_multiple_of(group_bits) && LINE_BITS / group_bits <= 64,
            "group size must divide 512 into at most 64 groups"
        );
        FnwCodec { group_bits }
    }

    /// The original proposal uses 32-bit words.
    #[must_use]
    pub fn paper_default() -> FnwCodec {
        FnwCodec::new(32)
    }

    /// Cells per inversion word.
    #[must_use]
    pub fn group_bits(&self) -> usize {
        self.group_bits
    }

    /// Number of words per line.
    #[must_use]
    pub fn groups(&self) -> usize {
        LINE_BITS / self.group_bits
    }

    /// Encodes `plain` over the stored (encoded) bits `stored_old`,
    /// minimizing programmed cells per word. Ties keep the old flag so a
    /// rewrite of identical data programs nothing.
    #[must_use]
    pub fn encode(
        &self,
        plain: &LineBuf,
        stored_old: &LineBuf,
        old_flags: DinFlags,
    ) -> (LineBuf, DinFlags) {
        let mut encoded = *stored_old;
        let mut flags = DinFlags::default();
        for g in 0..self.groups() {
            let lo = g * self.group_bits;
            let hi = lo + self.group_bits;
            let mut changed = [0u32; 2];
            for (f, slot) in [(false, 0usize), (true, 1usize)] {
                for b in lo..hi {
                    if (plain.bit(b) ^ f) != stored_old.bit(b) {
                        changed[slot] += 1;
                    }
                }
            }
            let flag = match changed[1].cmp(&changed[0]) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => old_flags.inverted(g),
            };
            for b in lo..hi {
                encoded.set_bit(b, plain.bit(b) ^ flag);
            }
            flags = flags.with(g, flag);
        }
        (encoded, flags)
    }

    /// Decodes stored bits back to plain data.
    #[must_use]
    pub fn decode(&self, stored: &LineBuf, flags: DinFlags) -> LineBuf {
        let mut plain = *stored;
        for g in 0..self.groups() {
            if flags.inverted(g) {
                let lo = g * self.group_bits;
                for b in lo..lo + self.group_bits {
                    plain.set_bit(b, !stored.bit(b));
                }
            }
        }
        plain
    }

    /// Cells the encoded write programs (FNW's objective).
    #[must_use]
    pub fn cost(&self, plain: &LineBuf, stored_old: &LineBuf, old_flags: DinFlags) -> u32 {
        let (encoded, _) = self.encode(plain, stored_old, old_flags);
        DiffMask::between(stored_old, &encoded).changed_count()
    }
}

impl Default for FnwCodec {
    fn default() -> Self {
        FnwCodec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::din::DinCodec;
    use crate::pattern::wordline_vulnerable_count;
    use sdpcm_engine::SimRng;

    fn random_line(rng: &mut SimRng) -> LineBuf {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.next_u64();
        }
        LineBuf::from_words(words)
    }

    #[test]
    fn roundtrip_random_history() {
        let codec = FnwCodec::paper_default();
        let mut rng = SimRng::from_seed(21);
        let mut stored = LineBuf::zeroed();
        let mut flags = DinFlags::default();
        for _ in 0..40 {
            let plain = random_line(&mut rng);
            let (enc, f) = codec.encode(&plain, &stored, flags);
            assert_eq!(codec.decode(&enc, f), plain);
            stored = enc;
            flags = f;
        }
    }

    #[test]
    fn never_programs_more_than_half_per_word() {
        let codec = FnwCodec::new(32);
        let mut rng = SimRng::from_seed(22);
        let mut stored = LineBuf::zeroed();
        let mut flags = DinFlags::default();
        for _ in 0..50 {
            let plain = random_line(&mut rng);
            let (enc, f) = codec.encode(&plain, &stored, flags);
            let diff = DiffMask::between(&stored, &enc);
            for g in 0..codec.groups() {
                let lo = g * 32;
                let programmed = (lo..lo + 32).filter(|&b| diff.is_programmed(b)).count();
                assert!(
                    programmed <= 16,
                    "word {g} programs {programmed} > 16 cells"
                );
            }
            stored = enc;
            flags = f;
        }
    }

    #[test]
    fn rewrite_of_identical_data_is_silent() {
        let codec = FnwCodec::paper_default();
        let mut rng = SimRng::from_seed(23);
        let plain = random_line(&mut rng);
        let (stored, flags) = codec.encode(&plain, &LineBuf::zeroed(), DinFlags::default());
        let (enc2, f2) = codec.encode(&plain, &stored, flags);
        assert_eq!(enc2, stored);
        assert_eq!(f2, flags);
        assert!(DiffMask::between(&stored, &enc2).is_empty());
    }

    #[test]
    fn fnw_beats_din_on_programmed_cells() {
        // FNW optimizes wear; DIN optimizes disturbance. Over random
        // traffic FNW must program no more cells than DIN on average.
        let fnw = FnwCodec::new(8);
        let din = DinCodec::new(8);
        let mut rng = SimRng::from_seed(24);
        let mut fnw_cost = 0u64;
        let mut din_cost = 0u64;
        let mut fnw_stored = LineBuf::zeroed();
        let mut din_stored = LineBuf::zeroed();
        let mut fnw_flags = DinFlags::default();
        let mut din_flags = DinFlags::default();
        for _ in 0..200 {
            let plain = random_line(&mut rng);
            let (fe, ff) = fnw.encode(&plain, &fnw_stored, fnw_flags);
            fnw_cost += u64::from(DiffMask::between(&fnw_stored, &fe).changed_count());
            fnw_stored = fe;
            fnw_flags = ff;
            let (de, df) = din.encode(&plain, &din_stored, din_flags);
            din_cost += u64::from(DiffMask::between(&din_stored, &de).changed_count());
            din_stored = de;
            din_flags = df;
        }
        assert!(
            fnw_cost <= din_cost,
            "FNW must program fewer cells: {fnw_cost} vs {din_cost}"
        );
    }

    #[test]
    fn din_beats_fnw_on_wordline_vulnerability() {
        // ...and the flip side: DIN leaves fewer WD-vulnerable patterns.
        // This asymmetry is why SD-PCM uses DIN.
        let fnw = FnwCodec::new(8);
        let din = DinCodec::new(8);
        let mut rng = SimRng::from_seed(25);
        let mut fnw_vic = 0usize;
        let mut din_vic = 0usize;
        let mut fnw_stored = LineBuf::zeroed();
        let mut din_stored = LineBuf::zeroed();
        let mut fnw_flags = DinFlags::default();
        let mut din_flags = DinFlags::default();
        for _ in 0..200 {
            let plain = random_line(&mut rng);
            let (fe, ff) = fnw.encode(&plain, &fnw_stored, fnw_flags);
            let fd = DiffMask::between(&fnw_stored, &fe);
            fnw_vic += wordline_vulnerable_count(&fe, &fd);
            fnw_stored = fe;
            fnw_flags = ff;
            let (de, df) = din.encode(&plain, &din_stored, din_flags);
            let dd = DiffMask::between(&din_stored, &de);
            din_vic += wordline_vulnerable_count(&de, &dd);
            din_stored = de;
            din_flags = df;
        }
        assert!(
            din_vic < fnw_vic,
            "DIN must leave fewer WL-vulnerable patterns: {din_vic} vs {fnw_vic}"
        );
    }

    #[test]
    fn cost_helper_matches_encode() {
        let codec = FnwCodec::paper_default();
        let mut rng = SimRng::from_seed(26);
        let stored = random_line(&mut rng);
        let plain = random_line(&mut rng);
        let (enc, _) = codec.encode(&plain, &stored, DinFlags::default());
        assert_eq!(
            codec.cost(&plain, &stored, DinFlags::default()),
            DiffMask::between(&stored, &enc).changed_count()
        );
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn bad_group_panics() {
        let _ = FnwCodec::new(3);
    }
}
