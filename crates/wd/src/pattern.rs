//! Vulnerable-pattern analysis (paper §2.2.1, Figure 3).
//!
//! A cell can be disturbed only under a specific data pattern: the victim
//! must be **idle** (not programmed by the current write), must store
//! bit `0` (fully amorphous — a crystalline cell cannot be melted by the
//! leaked heat), and must neighbour a cell receiving a **RESET** pulse
//! (SET pulses are ~4× cooler and ignorable).
//!
//! Two directions matter:
//!
//! * **word-line** victims are idle `0` cells *inside the written line*
//!   whose left/right neighbour is being RESET — these are what the DIN
//!   encoding minimizes;
//! * **bit-line** victims are `0` cells at the *same bit position* in the
//!   two adjacent rows (always idle: a write touches one word-line).

use sdpcm_pcm::line::{DiffMask, LineBuf, LINE_WORDS};

/// Word-line-vulnerable cells of a write: idle cells whose final stored
/// value is `0` and that have at least one RESET neighbour within the
/// line.
///
/// `after` is the line's content after the write (idle cells keep their
/// value, programmed cells take the new one).
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::line::{DiffMask, LineBuf};
/// use sdpcm_wd::pattern::wordline_vulnerable;
///
/// // Cell 5 goes 1 -> 0 (RESET); idle cells 4 and 6 store 0 -> vulnerable.
/// let mut old = LineBuf::zeroed();
/// old.set_bit(5, true);
/// let new = LineBuf::zeroed();
/// let diff = DiffMask::between(&old, &new);
/// let v = wordline_vulnerable(&new, &diff);
/// assert_eq!(v, vec![4, 6]);
/// ```
#[must_use]
pub fn wordline_vulnerable(after: &LineBuf, diff: &DiffMask) -> Vec<u16> {
    wordline_vulnerable_mask(after, diff)
        .iter_ones()
        .map(|b| b as u16)
        .collect()
}

/// Word-line-vulnerable cells as a bitmask (1 = vulnerable), computed
/// with word-parallel shifts instead of a per-bit scan: a cell is
/// vulnerable iff it is idle (`!programmed`), stores `0` (`!after`), and
/// a RESET mask bit sits directly to its left or right (the RESET mask
/// shifted by one position either way, with carries across word seams).
#[must_use]
pub fn wordline_vulnerable_mask(after: &LineBuf, diff: &DiffMask) -> LineBuf {
    let sets = diff.set_mask();
    let resets = diff.reset_mask();
    let r = resets.words();
    let mut out = [0u64; LINE_WORDS];
    for i in 0..LINE_WORDS {
        let idle_zero = !(sets.words()[i] | r[i]) & !after.words()[i];
        // Neighbour-of-RESET: resets shifted up (left neighbour is RESET)
        // and down (right neighbour is RESET), carrying across words.
        let from_left = (r[i] << 1) | if i > 0 { r[i - 1] >> 63 } else { 0 };
        let from_right = (r[i] >> 1)
            | if i + 1 < LINE_WORDS {
                r[i + 1] << 63
            } else {
                0
            };
        out[i] = idle_zero & (from_left | from_right);
    }
    LineBuf::from_words(out)
}

/// Number of word-line-vulnerable cells (the DIN encoder's objective).
#[must_use]
pub fn wordline_vulnerable_count(after: &LineBuf, diff: &DiffMask) -> usize {
    wordline_vulnerable_mask(after, diff).count_ones() as usize
}

/// Bit-line-vulnerable cells of one adjacent line: positions that are
/// RESET in the written line and store `0` in the neighbour.
///
/// Cells in an adjacent line are idle by construction (a write drives a
/// single word-line), so the only conditions are the RESET pulse and the
/// amorphous victim.
#[must_use]
pub fn bitline_vulnerable(diff: &DiffMask, neighbor: &LineBuf) -> Vec<u16> {
    let reset_mask = diff.reset_mask();
    let mut out = Vec::new();
    for (wi, (&r, &n)) in reset_mask
        .words()
        .iter()
        .zip(neighbor.words().iter())
        .enumerate()
    {
        let mut vulnerable = r & !n;
        while vulnerable != 0 {
            let b = vulnerable.trailing_zeros() as usize;
            out.push((wi * 64 + b) as u16);
            vulnerable &= vulnerable - 1;
        }
    }
    out
}

/// Number of bit-line-vulnerable cells in one adjacent line, without
/// materializing the victim list (a popcount over `resets & !neighbor`).
#[must_use]
pub fn bitline_vulnerable_count(diff: &DiffMask, neighbor: &LineBuf) -> usize {
    let reset_mask = diff.reset_mask();
    reset_mask
        .words()
        .iter()
        .zip(neighbor.words().iter())
        .map(|(&r, &n)| (r & !n).count_ones() as usize)
        .sum()
}

/// Whether an adjacent line has any bit-line-vulnerable cell (early-exit
/// form of [`bitline_vulnerable_count`] for hazard checks).
#[must_use]
pub fn bitline_any_vulnerable(diff: &DiffMask, neighbor: &LineBuf) -> bool {
    let reset_mask = diff.reset_mask();
    reset_mask
        .words()
        .iter()
        .zip(neighbor.words().iter())
        .any(|(&r, &n)| r & !n != 0)
}

/// Worst-case disturbance fan-out of one RESET: up to four neighbours
/// (left/right along the word-line, up/down along the bit-line) can be
/// vulnerable simultaneously (paper §2.2.1).
pub const MAX_VICTIMS_PER_RESET: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use sdpcm_pcm::line::LINE_BITS;

    #[test]
    fn wordline_requires_idle_zero_next_to_reset() {
        // old: bits 10 (1), 12 (1); new: clear bit 10 (RESET), keep 12.
        let mut old = LineBuf::zeroed();
        old.set_bit(10, true);
        old.set_bit(12, true);
        let mut new = old;
        new.set_bit(10, false);
        let diff = DiffMask::between(&old, &new);
        let v = wordline_vulnerable(&new, &diff);
        // bit 9 idle 0 (vulnerable), bit 11 idle 0 (vulnerable);
        // bit 12 idle but stores 1 -> immune.
        assert_eq!(v, vec![9, 11]);
    }

    #[test]
    fn set_pulses_do_not_create_wl_victims() {
        let old = LineBuf::zeroed();
        let mut new = LineBuf::zeroed();
        new.set_bit(100, true); // SET pulse
        let diff = DiffMask::between(&old, &new);
        assert!(wordline_vulnerable(&new, &diff).is_empty());
    }

    #[test]
    fn programmed_neighbors_are_not_victims() {
        // Both 20 and 21 are RESET: neither is idle, no victims between.
        let mut old = LineBuf::zeroed();
        old.set_bit(20, true);
        old.set_bit(21, true);
        let new = LineBuf::zeroed();
        let diff = DiffMask::between(&old, &new);
        let v = wordline_vulnerable(&new, &diff);
        assert_eq!(v, vec![19, 22]);
    }

    #[test]
    fn boundary_bits_handled() {
        // RESET at bit 0 and 511.
        let mut old = LineBuf::zeroed();
        old.set_bit(0, true);
        old.set_bit(511, true);
        let new = LineBuf::zeroed();
        let diff = DiffMask::between(&old, &new);
        let v = wordline_vulnerable(&new, &diff);
        assert_eq!(v, vec![1, 510]);
    }

    #[test]
    fn bitline_victims_are_reset_positions_with_zero_neighbor() {
        let mut old = LineBuf::zeroed();
        old.set_bit(3, true);
        old.set_bit(7, true);
        let new = LineBuf::zeroed(); // RESET 3 and 7
        let diff = DiffMask::between(&old, &new);

        let mut neighbor = LineBuf::zeroed();
        neighbor.set_bit(7, true); // crystalline at 7 -> immune
        let v = bitline_vulnerable(&diff, &neighbor);
        assert_eq!(v, vec![3]);
    }

    #[test]
    fn bitline_no_resets_no_victims() {
        let diff = DiffMask::empty();
        let neighbor = LineBuf::zeroed();
        assert!(bitline_vulnerable(&diff, &neighbor).is_empty());
    }

    fn patterned(seed: u64) -> LineBuf {
        let mut words = [0u64; LINE_WORDS];
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for w in &mut words {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *w = x;
        }
        LineBuf::from_words(words)
    }

    #[test]
    fn wordline_mask_matches_per_bit_reference() {
        for seed in 0..8u64 {
            let old = patterned(seed);
            let new = patterned(seed + 100);
            let diff = DiffMask::between(&old, &new);
            let got = wordline_vulnerable(&new, &diff);
            let reference: Vec<u16> = (0..LINE_BITS)
                .filter(|&bit| {
                    if diff.is_programmed(bit) || new.bit(bit) {
                        return false;
                    }
                    let left = bit > 0 && diff.is_reset(bit - 1);
                    let right = bit + 1 < LINE_BITS && diff.is_reset(bit + 1);
                    left || right
                })
                .map(|b| b as u16)
                .collect();
            assert_eq!(got, reference, "seed {seed}");
            assert_eq!(wordline_vulnerable_count(&new, &diff), reference.len());
        }
    }

    #[test]
    fn bitline_count_and_any_match_list() {
        for seed in 0..8u64 {
            let old = patterned(seed);
            let new = patterned(seed + 7);
            let diff = DiffMask::between(&old, &new);
            let neighbor = patterned(seed + 31);
            let list = bitline_vulnerable(&diff, &neighbor);
            assert_eq!(bitline_vulnerable_count(&diff, &neighbor), list.len());
            assert_eq!(bitline_any_vulnerable(&diff, &neighbor), !list.is_empty());
        }
        assert!(!bitline_any_vulnerable(
            &DiffMask::empty(),
            &LineBuf::zeroed()
        ));
    }

    #[test]
    fn bitline_scans_all_words() {
        let mut old = LineBuf::zeroed();
        for b in [0usize, 64, 200, 511] {
            old.set_bit(b, true);
        }
        let new = LineBuf::zeroed();
        let diff = DiffMask::between(&old, &new);
        let v = bitline_vulnerable(&diff, &LineBuf::zeroed());
        assert_eq!(v, vec![0, 64, 200, 511]);
    }
}
