//! PCM technology scaling model.
//!
//! Write disturbance is a *scaling* problem: it was first observed at
//! 54 nm [Lee et al., VLSIT'10] and becomes a first-order reliability
//! issue at and below 20 nm (paper §2.2). This module captures the
//! geometric side of the paper's WD model: feature size per node, the
//! inter-cell spacing options used by the three array designs, and the
//! resulting cell sizes.

use crate::thermal::Direction;

/// Inter-cell spacing in units of the feature size F.
///
/// `2F` is the minimal pitch (cells abut); the prototype chip adds
/// thermal guard bands (3F/4F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Spacing {
    /// Minimal 2F spacing — super dense.
    TwoF,
    /// 3F spacing (prototype's bit-line guard).
    ThreeF,
    /// 4F spacing (prototype's word-line guard, DIN's bit-line guard).
    FourF,
}

impl Spacing {
    /// The spacing in multiples of F.
    #[must_use]
    pub fn in_f(self) -> f64 {
        match self {
            Spacing::TwoF => 2.0,
            Spacing::ThreeF => 3.0,
            Spacing::FourF => 4.0,
        }
    }
}

/// A technology node.
///
/// # Examples
///
/// ```
/// use sdpcm_wd::scaling::{Spacing, TechNode};
///
/// let n = TechNode::nm(20);
/// assert_eq!(n.distance_nm(Spacing::TwoF), 40.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TechNode {
    feature_nm: u32,
}

impl TechNode {
    /// Creates a node with the given feature size in nanometres.
    ///
    /// # Panics
    ///
    /// Panics if `feature_nm` is zero.
    #[must_use]
    pub fn nm(feature_nm: u32) -> TechNode {
        assert!(feature_nm > 0, "feature size must be positive");
        TechNode { feature_nm }
    }

    /// The paper's evaluation node (20 nm).
    #[must_use]
    pub fn paper_default() -> TechNode {
        TechNode::nm(20)
    }

    /// Feature size in nm.
    #[must_use]
    pub fn feature_nm(self) -> u32 {
        self.feature_nm
    }

    /// Physical inter-cell distance for a spacing option.
    #[must_use]
    pub fn distance_nm(self, spacing: Spacing) -> f64 {
        f64::from(self.feature_nm) * spacing.in_f()
    }

    /// Cell size in F² for per-direction spacings: each direction
    /// contributes half of its pitch to the cell footprint
    /// (2F × 2F → 4F², 2F × 4F → 8F², 4F × 3F → 12F²).
    #[must_use]
    pub fn cell_size_f2(wordline: Spacing, bitline: Spacing) -> f64 {
        wordline.in_f() * bitline.in_f()
    }

    /// Nodes conventionally cited in the PCM scaling literature, used by
    /// the model-exploration example.
    #[must_use]
    pub fn ladder() -> Vec<TechNode> {
        [54, 40, 30, 20, 16].into_iter().map(TechNode::nm).collect()
    }
}

/// The per-direction spacing of an array design (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArraySpacing {
    /// Spacing along word-lines.
    pub wordline: Spacing,
    /// Spacing along bit-lines.
    pub bitline: Spacing,
}

impl ArraySpacing {
    /// Super dense: 2F × 2F = 4F² (Figure 1a).
    #[must_use]
    pub fn super_dense() -> ArraySpacing {
        ArraySpacing {
            wordline: Spacing::TwoF,
            bitline: Spacing::TwoF,
        }
    }

    /// DIN-enhanced: 2F along word-lines, 4F along bit-lines = 8F²
    /// (Figure 1c).
    #[must_use]
    pub fn din_enhanced() -> ArraySpacing {
        ArraySpacing {
            wordline: Spacing::TwoF,
            bitline: Spacing::FourF,
        }
    }

    /// WD-free prototype: 4F along word-lines, 3F along bit-lines = 12F²
    /// (Figure 1b).
    #[must_use]
    pub fn prototype() -> ArraySpacing {
        ArraySpacing {
            wordline: Spacing::FourF,
            bitline: Spacing::ThreeF,
        }
    }

    /// Spacing in the given direction.
    #[must_use]
    pub fn in_direction(self, dir: Direction) -> Spacing {
        match dir {
            Direction::WordLine => self.wordline,
            Direction::BitLine => self.bitline,
        }
    }

    /// Cell size in F².
    #[must_use]
    pub fn cell_size_f2(self) -> f64 {
        TechNode::cell_size_f2(self.wordline, self.bitline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_at_20nm() {
        let n = TechNode::nm(20);
        assert_eq!(n.distance_nm(Spacing::TwoF), 40.0);
        assert_eq!(n.distance_nm(Spacing::ThreeF), 60.0);
        assert_eq!(n.distance_nm(Spacing::FourF), 80.0);
    }

    #[test]
    fn cell_sizes_match_figure1() {
        assert_eq!(ArraySpacing::super_dense().cell_size_f2(), 4.0);
        assert_eq!(ArraySpacing::din_enhanced().cell_size_f2(), 8.0);
        assert_eq!(ArraySpacing::prototype().cell_size_f2(), 12.0);
    }

    #[test]
    fn ladder_is_descending() {
        let l = TechNode::ladder();
        assert!(l.windows(2).all(|w| w[0].feature_nm() > w[1].feature_nm()));
        assert!(l.contains(&TechNode::paper_default()));
    }

    #[test]
    fn direction_lookup() {
        let s = ArraySpacing::din_enhanced();
        assert_eq!(s.in_direction(Direction::WordLine), Spacing::TwoF);
        assert_eq!(s.in_direction(Direction::BitLine), Spacing::FourF);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_feature_size_panics() {
        let _ = TechNode::nm(0);
    }
}
