//! DIN: disturbance-aware data encoding for word-lines
//! [Jiang et al., DSN'14].
//!
//! DIN shrinks the word-line guard band to the minimal 2F and compensates
//! with coding: before storing a line, each bit group is optionally
//! *inverted* so that the stored pattern minimizes the number of
//! WD-vulnerable word-line patterns (idle `0` cells adjacent to cells
//! receiving RESET pulses). One flag bit per group records the inversion
//! and travels with the line (modelled here as explicit [`DinFlags`]; in
//! hardware the flags occupy the row's spare region, which is engineered
//! WD-robust).
//!
//! The encoder is greedy left-to-right: for each group it tries both
//! polarities against the currently stored (encoded) bits, counts the
//! word-line-vulnerable cells the resulting differential write would
//! expose (including the boundary with the previously decided group), and
//! keeps the polarity with fewer victims, breaking ties toward fewer
//! programmed cells and then toward the old flag (to avoid gratuitous
//! group rewrites).

use sdpcm_pcm::line::{LineBuf, LINE_BITS};

/// Per-group inversion flags of one encoded line (up to 64 groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DinFlags(pub u64);

impl DinFlags {
    /// Whether group `g` is stored inverted.
    #[must_use]
    pub fn inverted(self, g: usize) -> bool {
        (self.0 >> g) & 1 == 1
    }

    /// Returns a copy with group `g`'s flag set to `v`.
    #[must_use]
    pub fn with(self, g: usize, v: bool) -> DinFlags {
        if v {
            DinFlags(self.0 | (1 << g))
        } else {
            DinFlags(self.0 & !(1 << g))
        }
    }
}

/// The DIN group-inversion codec.
///
/// # Examples
///
/// ```
/// use sdpcm_pcm::line::LineBuf;
/// use sdpcm_wd::din::{DinCodec, DinFlags};
///
/// let codec = DinCodec::new(32);
/// let plain = LineBuf::zeroed();
/// let stored = LineBuf::zeroed();
/// let (encoded, flags) = codec.encode(&plain, &stored, DinFlags::default());
/// assert_eq!(codec.decode(&encoded, flags), plain);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DinCodec {
    group_bits: usize,
}

impl DinCodec {
    /// Creates a codec with `group_bits` cells per inversion group.
    ///
    /// # Panics
    ///
    /// Panics unless `group_bits` divides 512 and yields at most 64
    /// groups (the flag word) and at least 2 bits per group.
    #[must_use]
    pub fn new(group_bits: usize) -> DinCodec {
        assert!(
            group_bits >= 2 && LINE_BITS.is_multiple_of(group_bits) && LINE_BITS / group_bits <= 64,
            "group size must divide 512 into at most 64 groups"
        );
        DinCodec { group_bits }
    }

    /// Default: 8-bit groups (64 flag bits per 64 B line). Smaller
    /// groups give the inversion coder more freedom; this calibration
    /// leaves ~0.9 residual word-line errors per write — the same order
    /// as the original DIN's reported 0.4 (DSN'14 uses a richer code
    /// dictionary than pure inversion; see EXPERIMENTS.md).
    #[must_use]
    pub fn paper_default() -> DinCodec {
        DinCodec::new(8)
    }

    /// Cells per group.
    #[must_use]
    pub fn group_bits(&self) -> usize {
        self.group_bits
    }

    /// Number of groups per line.
    #[must_use]
    pub fn groups(&self) -> usize {
        LINE_BITS / self.group_bits
    }

    /// Flag-storage overhead per line, in bits.
    #[must_use]
    pub fn overhead_bits(&self) -> usize {
        self.groups()
    }

    /// Encodes `plain` for storage over the currently stored (encoded)
    /// bits `stored_old`, returning the new encoded bits and flags.
    ///
    /// Word-parallel implementation: each candidate's score touches only
    /// the group's words plus one carry bit per side, so a full-line
    /// encode costs a few dozen word operations instead of the naive
    /// per-bit sweep (this sits on the per-write hot path of every DIN
    /// scheme). Decisions and tie-breaks are bit-identical to the
    /// straightforward per-bit scorer (see the equivalence test).
    #[must_use]
    pub fn encode(
        &self,
        plain: &LineBuf,
        stored_old: &LineBuf,
        old_flags: DinFlags,
    ) -> (LineBuf, DinFlags) {
        let old = stored_old.words();
        let pw = plain.words();
        let mut enc = *old;
        let mut flags = DinFlags::default();
        for g in 0..self.groups() {
            let lo = g * self.group_bits;
            let hi = lo + self.group_bits;
            // Victim window [wlo, whi): one bit into the previous
            // (decided) group and one past the group's end.
            let wlo = lo.saturating_sub(1);
            let whi = (hi + 1).min(LINE_BITS);
            // Words whose bits the score can touch: the deepest needed
            // bit is `lo - 2` (left reset neighbour of the window's
            // first bit); everything right of `hi` is still identical
            // to `stored_old`, so its diff is zero.
            let w0 = lo.saturating_sub(2) / 64;
            let w1 = (whi - 1) / 64;

            let mut best: Option<(u32, u32, bool)> = None;
            for flag in [false, true] {
                let inv = if flag { u64::MAX } else { 0 };
                // Diff RESET bits per word, shifted by one index so the
                // carry reads below never go out of bounds.
                let mut reset = [0u64; LINE_BITS / 64 + 2];
                let mut cand = [0u64; LINE_BITS / 64];
                for w in w0..=w1 {
                    let gmask = word_mask(w, lo, hi);
                    let c = (enc[w] & !gmask) | ((pw[w] ^ inv) & gmask);
                    cand[w] = c;
                    reset[w + 1] = old[w] & !c;
                }
                let mut victims = 0u32;
                let mut programmed = 0u32;
                for w in w0..=w1 {
                    let prog = old[w] ^ cand[w];
                    // reset(b-1) / reset(b+1) for every bit of the word.
                    let left = (reset[w + 1] << 1) | (reset[w] >> 63);
                    let right = (reset[w + 1] >> 1) | (reset[w + 2] << 63);
                    let vul = !prog & !cand[w] & (left | right) & word_mask(w, wlo, whi);
                    victims += vul.count_ones();
                    programmed += (prog & word_mask(w, lo, hi)).count_ones();
                }
                let better = match &best {
                    None => true,
                    Some((v, p, f)) => {
                        victims < *v
                            || (victims == *v && programmed < *p)
                            || (victims == *v
                                && programmed == *p
                                && *f != old_flags.inverted(g)
                                && flag == old_flags.inverted(g))
                    }
                };
                if better {
                    best = Some((victims, programmed, flag));
                }
            }
            let (_, _, flag) = best.expect("two candidates evaluated");
            let inv = if flag { u64::MAX } else { 0 };
            for w in lo / 64..=(hi - 1) / 64 {
                let gmask = word_mask(w, lo, hi);
                enc[w] = (enc[w] & !gmask) | ((pw[w] ^ inv) & gmask);
            }
            flags = flags.with(g, flag);
        }
        (LineBuf::from_words(enc), flags)
    }

    /// Decodes stored (encoded) bits back to plain data.
    #[must_use]
    pub fn decode(&self, stored: &LineBuf, flags: DinFlags) -> LineBuf {
        let mut plain = *stored;
        for g in 0..self.groups() {
            if flags.inverted(g) {
                let lo = g * self.group_bits;
                for b in lo..lo + self.group_bits {
                    plain.set_bit(b, !stored.bit(b));
                }
            }
        }
        plain
    }
}

impl Default for DinCodec {
    fn default() -> Self {
        DinCodec::paper_default()
    }
}

/// The bits of half-open range `[a, b)` that fall inside word `w`, as a
/// mask over that word.
fn word_mask(w: usize, a: usize, b: usize) -> u64 {
    let start = a.max(w * 64);
    let end = b.min(w * 64 + 64);
    if start >= end {
        return 0;
    }
    let len = end - start;
    let ones = if len == 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    };
    ones << (start - w * 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::wordline_vulnerable_count;
    use sdpcm_engine::SimRng;
    use sdpcm_pcm::line::DiffMask;

    /// The straightforward per-bit encoder the word-parallel
    /// [`DinCodec::encode`] must match decision-for-decision.
    fn encode_reference(
        codec: &DinCodec,
        plain: &LineBuf,
        stored_old: &LineBuf,
        old_flags: DinFlags,
    ) -> (LineBuf, DinFlags) {
        fn group_score(cand: &LineBuf, stored_old: &LineBuf, lo: usize, hi: usize) -> (u32, u32) {
            let diff = DiffMask::between(stored_old, cand);
            let mut victims = 0;
            for bit in lo.saturating_sub(1)..(hi + 1).min(LINE_BITS) {
                if diff.is_programmed(bit) || cand.bit(bit) {
                    continue;
                }
                let left = bit > 0 && diff.is_reset(bit - 1);
                let right = bit + 1 < LINE_BITS && diff.is_reset(bit + 1);
                if left || right {
                    victims += 1;
                }
            }
            let mut programmed = 0;
            for bit in lo..hi {
                if diff.is_programmed(bit) {
                    programmed += 1;
                }
            }
            (victims, programmed)
        }

        let mut enc = *stored_old;
        let mut flags = DinFlags::default();
        for g in 0..codec.groups() {
            let lo = g * codec.group_bits();
            let hi = lo + codec.group_bits();
            let mut best: Option<(u32, u32, bool)> = None;
            for flag in [false, true] {
                let mut cand = enc;
                for bit in lo..hi {
                    cand.set_bit(bit, plain.bit(bit) ^ flag);
                }
                let (victims, programmed) = group_score(&cand, stored_old, lo, hi);
                let better = match &best {
                    None => true,
                    Some((v, p, f)) => {
                        victims < *v
                            || (victims == *v && programmed < *p)
                            || (victims == *v
                                && programmed == *p
                                && *f != old_flags.inverted(g)
                                && flag == old_flags.inverted(g))
                    }
                };
                if better {
                    best = Some((victims, programmed, flag));
                }
            }
            let (_, _, flag) = best.unwrap();
            for bit in lo..hi {
                enc.set_bit(bit, plain.bit(bit) ^ flag);
            }
            flags = flags.with(g, flag);
        }
        (enc, flags)
    }

    #[test]
    fn word_parallel_encode_matches_reference() {
        for group_bits in [8, 16, 32, 64, 128, 256, 512] {
            let codec = DinCodec::new(group_bits);
            let mut rng = SimRng::from_seed(77 + group_bits as u64);
            let mut stored = LineBuf::zeroed();
            let mut flags = DinFlags::default();
            for round in 0..200 {
                // Mix dense random lines with sparse ones (few
                // programmed bits) so both crowded and empty victim
                // windows are exercised.
                let plain = if round % 3 == 0 {
                    let mut sparse = stored;
                    for _ in 0..4 {
                        let b = (rng.next_u64() % LINE_BITS as u64) as usize;
                        sparse.set_bit(b, !sparse.bit(b));
                    }
                    sparse
                } else {
                    random_line(&mut rng)
                };
                let fast = codec.encode(&plain, &stored, flags);
                let slow = encode_reference(&codec, &plain, &stored, flags);
                assert_eq!(
                    fast, slow,
                    "divergence at group_bits={group_bits} round={round}"
                );
                (stored, flags) = fast;
            }
        }
    }

    fn random_line(rng: &mut SimRng) -> LineBuf {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.next_u64();
        }
        LineBuf::from_words(words)
    }

    #[test]
    fn roundtrip_random_lines() {
        let codec = DinCodec::paper_default();
        let mut rng = SimRng::from_seed(11);
        let mut stored = LineBuf::zeroed();
        let mut flags = DinFlags::default();
        for _ in 0..50 {
            let plain = random_line(&mut rng);
            let (enc, f) = codec.encode(&plain, &stored, flags);
            assert_eq!(codec.decode(&enc, f), plain);
            stored = enc;
            flags = f;
        }
    }

    #[test]
    fn encoding_never_increases_victims() {
        // Compare against the identity (no-DIN) vulnerable count.
        let codec = DinCodec::paper_default();
        let mut rng = SimRng::from_seed(12);
        let mut stored = LineBuf::zeroed();
        let mut flags = DinFlags::default();
        let mut din_total = 0usize;
        let mut raw_total = 0usize;
        for _ in 0..100 {
            let plain = random_line(&mut rng);
            // Identity encoding victims.
            let raw_diff = DiffMask::between(&stored, &plain);
            raw_total += wordline_vulnerable_count(&plain, &raw_diff);
            // DIN victims.
            let (enc, f) = codec.encode(&plain, &stored, flags);
            let diff = DiffMask::between(&stored, &enc);
            din_total += wordline_vulnerable_count(&enc, &diff);
            stored = enc;
            flags = f;
        }
        assert!(
            din_total < raw_total,
            "DIN should reduce WL-vulnerable patterns: {din_total} vs {raw_total}"
        );
    }

    #[test]
    fn all_zero_write_over_all_ones_inverts() {
        // Storing all-zero over stored all-ones: identity encoding RESETs
        // everything (no idle cells -> 0 victims) but programs 512 cells;
        // inverting stores all-ones unchanged (0 programmed).
        let codec = DinCodec::new(32);
        let ones = LineBuf::zeroed().not();
        let plain = LineBuf::zeroed();
        let (enc, flags) = codec.encode(&plain, &ones, DinFlags::default());
        assert_eq!(enc, ones, "inversion avoids reprogramming");
        for g in 0..codec.groups() {
            assert!(flags.inverted(g));
        }
        assert_eq!(codec.decode(&enc, flags), plain);
    }

    #[test]
    fn flag_accessors() {
        let f = DinFlags::default()
            .with(3, true)
            .with(5, true)
            .with(3, false);
        assert!(!f.inverted(3));
        assert!(f.inverted(5));
        assert!(!f.inverted(0));
    }

    #[test]
    fn overhead_matches_groups() {
        assert_eq!(DinCodec::new(32).overhead_bits(), 16);
        assert_eq!(DinCodec::new(64).overhead_bits(), 8);
        assert_eq!(DinCodec::new(8).groups(), 64);
        assert_eq!(DinCodec::paper_default().group_bits(), 8);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn bad_group_size_panics() {
        let _ = DinCodec::new(7);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn too_many_groups_panics() {
        let _ = DinCodec::new(4); // 128 groups > 64 flag bits
    }
}
