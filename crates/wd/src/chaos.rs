//! Deterministic chaos-injection scheduling.
//!
//! A chaos scenario is a list of faults scheduled against the *committed
//! write count* of the memory controller — not against wall-clock cycles,
//! whose alignment shifts with queue contention. Keying on the write
//! stream makes a scenario bit-reproducible: the same seed and plan
//! disturb exactly the same writes in every run.
//!
//! Three fault families cover the failure modes studied in the paper:
//!
//! * **stuck-at bursts** — a batch of permanent cell failures landing at
//!   once (infant-mortality cluster, localized wear-out);
//! * **storm windows** — a bounded interval during which the calibrated
//!   WD probabilities are multiplied (thermal emergency, marginal DIMM);
//! * **aging ramps** — stepping the DIMM's consumed-lifetime fraction,
//!   which drives the [`sdpcm_pcm::wear::HardErrorModel`] hard-error
//!   population for lines touched afterwards.
//!
//! The module only *schedules*: [`ChaosEngine::poll`] turns the plan into
//! [`ChaosAction`]s, and the memory controller (which owns the device
//! store, the [`crate::WdInjector`], and the RNG) executes them and logs
//! a [`FaultEvent`] per action.

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Plant `cells_per_line` stuck-at cells on each of `lines` lines
    /// drawn near the currently active working set.
    StuckBurst {
        /// Number of victim lines.
        lines: u32,
        /// Stuck cells planted per victim line.
        cells_per_line: u16,
    },
    /// Multiply both WD probabilities by `mult` for the next
    /// `duration_writes` committed writes.
    Storm {
        /// Probability multiplier (≥ 0, finite; values > 1 elevate WD).
        mult: f64,
        /// Window length in committed writes (> 0).
        duration_writes: u64,
    },
    /// Step the DIMM age to `lifetime_fraction` of consumed lifetime.
    AgingRamp {
        /// Consumed-lifetime fraction in `[0, 1]`.
        lifetime_fraction: f64,
    },
}

/// One fault with its trigger point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// Fires when the controller has committed this many writes.
    pub at_write: u64,
    /// The fault to apply.
    pub kind: FaultKind,
}

/// Why a chaos plan was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosError {
    /// A storm multiplier that is negative or non-finite.
    InvalidStormMult {
        /// The rejected multiplier.
        value: f64,
    },
    /// A storm window of zero writes.
    EmptyStormWindow,
    /// A stuck burst planting nothing, or more cells than a line holds.
    InvalidBurst {
        /// Rejected line count.
        lines: u32,
        /// Rejected per-line cell count.
        cells_per_line: u16,
    },
    /// A lifetime fraction outside `[0, 1]`.
    InvalidAge {
        /// The rejected fraction.
        value: f64,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::InvalidStormMult { value } => {
                write!(f, "storm multiplier {value} must be finite and >= 0")
            }
            ChaosError::EmptyStormWindow => write!(f, "storm window must cover >= 1 write"),
            ChaosError::InvalidBurst {
                lines,
                cells_per_line,
            } => write!(
                f,
                "stuck burst of {lines} lines x {cells_per_line} cells is not plantable"
            ),
            ChaosError::InvalidAge { value } => {
                write!(f, "lifetime fraction {value} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

/// A validated, trigger-ordered chaos scenario.
///
/// # Examples
///
/// ```
/// use sdpcm_wd::chaos::{ChaosPlan, FaultKind, ScheduledFault};
///
/// let plan = ChaosPlan::new(vec![ScheduledFault {
///     at_write: 100,
///     kind: FaultKind::Storm { mult: 4.0, duration_writes: 50 },
/// }])
/// .unwrap();
/// assert_eq!(plan.faults().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosPlan {
    faults: Vec<ScheduledFault>,
}

impl ChaosPlan {
    /// Validates and orders a scenario. Faults may be given in any order;
    /// ties on `at_write` keep their given relative order.
    pub fn new(mut faults: Vec<ScheduledFault>) -> Result<ChaosPlan, ChaosError> {
        for f in &faults {
            match f.kind {
                FaultKind::Storm {
                    mult,
                    duration_writes,
                } => {
                    if !mult.is_finite() || mult < 0.0 {
                        return Err(ChaosError::InvalidStormMult { value: mult });
                    }
                    if duration_writes == 0 {
                        return Err(ChaosError::EmptyStormWindow);
                    }
                }
                FaultKind::StuckBurst {
                    lines,
                    cells_per_line,
                } => {
                    if lines == 0
                        || cells_per_line == 0
                        || (cells_per_line as usize) > sdpcm_pcm::line::LINE_BITS
                    {
                        return Err(ChaosError::InvalidBurst {
                            lines,
                            cells_per_line,
                        });
                    }
                }
                FaultKind::AgingRamp { lifetime_fraction } => {
                    if !(0.0..=1.0).contains(&lifetime_fraction) {
                        return Err(ChaosError::InvalidAge {
                            value: lifetime_fraction,
                        });
                    }
                }
            }
        }
        faults.sort_by_key(|f| f.at_write);
        Ok(ChaosPlan { faults })
    }

    /// The scenario in trigger order.
    #[must_use]
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Whether the scenario contains no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// An instruction for the executor (the memory controller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosAction {
    /// Apply a storm multiplier to the WD injector.
    BeginStorm {
        /// Probability multiplier.
        mult: f64,
    },
    /// Restore the calibrated WD probabilities.
    EndStorm,
    /// Plant a batch of stuck-at cells.
    PlantStuckBurst {
        /// Victim lines.
        lines: u32,
        /// Stuck cells per victim line.
        cells_per_line: u16,
    },
    /// Re-age the DIMM.
    SetAge {
        /// Consumed-lifetime fraction.
        lifetime_fraction: f64,
    },
}

impl std::fmt::Display for ChaosAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosAction::BeginStorm { mult } => write!(f, "begin storm x{mult}"),
            ChaosAction::EndStorm => write!(f, "end storm"),
            ChaosAction::PlantStuckBurst {
                lines,
                cells_per_line,
            } => write!(f, "plant {lines} lines x {cells_per_line} stuck cells"),
            ChaosAction::SetAge { lifetime_fraction } => {
                write!(f, "set DIMM age {lifetime_fraction}")
            }
        }
    }
}

/// One executed action, as recorded in the controller's fault log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Committed-write count at execution time.
    pub at_write: u64,
    /// Simulation cycle at execution time.
    pub at_cycle: u64,
    /// What was done.
    pub action: ChaosAction,
}

/// Steps a [`ChaosPlan`] against the committed-write counter.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    plan: ChaosPlan,
    cursor: usize,
    /// Write count at which the active storm expires.
    storm_until: Option<u64>,
}

impl ChaosEngine {
    /// Starts a scenario from write zero.
    #[must_use]
    pub fn new(plan: ChaosPlan) -> ChaosEngine {
        ChaosEngine {
            plan,
            cursor: 0,
            storm_until: None,
        }
    }

    /// Returns the actions due at `committed_writes`, in deterministic
    /// order: storm expiry first, then newly triggered faults in plan
    /// order. Overlapping storms coalesce — a new window replaces the
    /// multiplier and the expiry point.
    pub fn poll(&mut self, committed_writes: u64) -> Vec<ChaosAction> {
        let mut out = Vec::new();
        if let Some(until) = self.storm_until {
            if committed_writes >= until {
                self.storm_until = None;
                out.push(ChaosAction::EndStorm);
            }
        }
        while let Some(f) = self.plan.faults.get(self.cursor) {
            if f.at_write > committed_writes {
                break;
            }
            self.cursor += 1;
            match f.kind {
                FaultKind::Storm {
                    mult,
                    duration_writes,
                } => {
                    self.storm_until = Some(committed_writes + duration_writes);
                    out.push(ChaosAction::BeginStorm { mult });
                }
                FaultKind::StuckBurst {
                    lines,
                    cells_per_line,
                } => out.push(ChaosAction::PlantStuckBurst {
                    lines,
                    cells_per_line,
                }),
                FaultKind::AgingRamp { lifetime_fraction } => {
                    out.push(ChaosAction::SetAge { lifetime_fraction });
                }
            }
        }
        out
    }

    /// Whether every fault has fired and no storm is pending expiry.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.cursor == self.plan.faults.len() && self.storm_until.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm(at: u64, mult: f64, dur: u64) -> ScheduledFault {
        ScheduledFault {
            at_write: at,
            kind: FaultKind::Storm {
                mult,
                duration_writes: dur,
            },
        }
    }

    #[test]
    fn plan_validates_and_sorts() {
        let plan = ChaosPlan::new(vec![
            storm(50, 2.0, 10),
            ScheduledFault {
                at_write: 10,
                kind: FaultKind::AgingRamp {
                    lifetime_fraction: 0.5,
                },
            },
        ])
        .unwrap();
        assert_eq!(plan.faults()[0].at_write, 10);
        assert_eq!(plan.faults()[1].at_write, 50);

        assert_eq!(
            ChaosPlan::new(vec![storm(0, -1.0, 5)]),
            Err(ChaosError::InvalidStormMult { value: -1.0 })
        );
        assert_eq!(
            ChaosPlan::new(vec![storm(0, 2.0, 0)]),
            Err(ChaosError::EmptyStormWindow)
        );
        assert_eq!(
            ChaosPlan::new(vec![ScheduledFault {
                at_write: 0,
                kind: FaultKind::StuckBurst {
                    lines: 0,
                    cells_per_line: 3
                },
            }]),
            Err(ChaosError::InvalidBurst {
                lines: 0,
                cells_per_line: 3
            })
        );
        assert_eq!(
            ChaosPlan::new(vec![ScheduledFault {
                at_write: 0,
                kind: FaultKind::AgingRamp {
                    lifetime_fraction: 1.5
                },
            }]),
            Err(ChaosError::InvalidAge { value: 1.5 })
        );
    }

    #[test]
    fn storm_opens_and_expires() {
        let mut eng = ChaosEngine::new(ChaosPlan::new(vec![storm(5, 4.0, 10)]).unwrap());
        assert!(eng.poll(4).is_empty());
        assert_eq!(eng.poll(5), vec![ChaosAction::BeginStorm { mult: 4.0 }]);
        assert!(eng.poll(14).is_empty());
        assert_eq!(eng.poll(15), vec![ChaosAction::EndStorm]);
        assert!(eng.exhausted());
    }

    #[test]
    fn overlapping_storms_coalesce() {
        let mut eng =
            ChaosEngine::new(ChaosPlan::new(vec![storm(0, 2.0, 100), storm(10, 8.0, 5)]).unwrap());
        assert_eq!(eng.poll(0), vec![ChaosAction::BeginStorm { mult: 2.0 }]);
        assert_eq!(eng.poll(10), vec![ChaosAction::BeginStorm { mult: 8.0 }]);
        // The second window's expiry governs.
        assert_eq!(eng.poll(15), vec![ChaosAction::EndStorm]);
        assert!(eng.exhausted());
    }

    #[test]
    fn skipped_polls_catch_up() {
        // Writes can jump past several trigger points between polls
        // (bursty drains); everything due fires in plan order.
        let mut eng = ChaosEngine::new(
            ChaosPlan::new(vec![
                ScheduledFault {
                    at_write: 3,
                    kind: FaultKind::StuckBurst {
                        lines: 2,
                        cells_per_line: 1,
                    },
                },
                ScheduledFault {
                    at_write: 7,
                    kind: FaultKind::AgingRamp {
                        lifetime_fraction: 1.0,
                    },
                },
            ])
            .unwrap(),
        );
        let actions = eng.poll(20);
        assert_eq!(
            actions,
            vec![
                ChaosAction::PlantStuckBurst {
                    lines: 2,
                    cells_per_line: 1
                },
                ChaosAction::SetAge {
                    lifetime_fraction: 1.0
                },
            ]
        );
        assert!(eng.exhausted());
    }
}
