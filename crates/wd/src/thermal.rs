//! PCM cell thermal model.
//!
//! During a RESET the programmed cell is heated above the GST melting
//! point (~600 °C, paper §2.1). Heat leaks laterally; the temperature an
//! idle neighbour reaches decays (approximately exponentially) with the
//! edge-to-edge distance, with a decay length set by the insulating
//! material in that direction:
//!
//! * **bit-line direction** — cells along one bit-line sit on a shared
//!   GST rail (µTrench structure [Pellizzer et al., VLSIT'04]); GST
//!   conducts heat comparatively well → longer decay length;
//! * **word-line direction** — adjacent bit-lines are isolated by oxide,
//!   a better thermal insulator → shorter decay length.
//!
//! The two decay lengths are calibrated so that at 20 nm / 2F spacing the
//! neighbour temperatures match the paper's Table 1 operating points:
//! 310 °C along word-lines, 320 °C along bit-lines. The same model then
//! reproduces the prototype chip's WD-free margins (4F word-line / 3F
//! bit-line spacing stays below the ~300 °C crystallization threshold).

/// Direction of the neighbour relative to the cell being RESET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Along a word-line (across oxide-isolated bit-lines).
    WordLine,
    /// Along a bit-line (on the shared GST rail).
    BitLine,
}

/// The analytic thermal model.
///
/// # Examples
///
/// ```
/// use sdpcm_wd::thermal::{Direction, ThermalModel};
///
/// let m = ThermalModel::calibrated_20nm();
/// let t = m.neighbor_temp(Direction::BitLine, 40.0); // 2F at 20nm
/// assert!((t - 320.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Ambient temperature (°C).
    pub ambient_c: f64,
    /// Peak temperature of the RESET cell (°C).
    pub reset_peak_c: f64,
    /// Decay length across oxide, word-line direction (nm).
    pub lambda_oxide_nm: f64,
    /// Decay length along the GST rail, bit-line direction (nm).
    pub lambda_gst_nm: f64,
}

/// GST crystallization temperature (°C); below this, no disturbance.
pub const CRYSTALLIZATION_C: f64 = 300.0;
/// GST melting temperature (°C); an idle SET cell cannot be melted by
/// disturbance because the neighbour never reaches this (paper §2.2.1).
pub const MELTING_C: f64 = 600.0;

impl ThermalModel {
    /// The model calibrated at the 20 nm node to Table 1: 2F spacing
    /// (40 nm) gives 310 °C along word-lines and 320 °C along bit-lines.
    #[must_use]
    pub fn calibrated_20nm() -> ThermalModel {
        let ambient = 27.0;
        let peak = 630.0; // slightly above melting, typical RESET target
                          // Solve T(d) = ambient + (peak-ambient)·exp(-d/λ) for λ at d=40nm.
        let lambda = |t_at_40: f64| 40.0 / ((peak - ambient) / (t_at_40 - ambient)).ln();
        ThermalModel {
            ambient_c: ambient,
            reset_peak_c: peak,
            lambda_oxide_nm: lambda(310.0),
            lambda_gst_nm: lambda(320.0),
        }
    }

    /// Temperature (°C) an idle neighbour reaches when a cell `dist_nm`
    /// away (edge-to-edge) is RESET.
    ///
    /// # Panics
    ///
    /// Panics if `dist_nm` is not positive.
    #[must_use]
    pub fn neighbor_temp(&self, dir: Direction, dist_nm: f64) -> f64 {
        assert!(dist_nm > 0.0, "distance must be positive");
        let lambda = match dir {
            Direction::WordLine => self.lambda_oxide_nm,
            Direction::BitLine => self.lambda_gst_nm,
        };
        self.ambient_c + (self.reset_peak_c - self.ambient_c) * (-dist_nm / lambda).exp()
    }

    /// Temperature rise above ambient during a SET pulse at the same
    /// distance: SET current is about half the RESET current, so the
    /// temperature increase is ~4× lower (paper §2.2.1, [Russo'08]).
    #[must_use]
    pub fn neighbor_temp_during_set(&self, dir: Direction, dist_nm: f64) -> f64 {
        let rise = self.neighbor_temp(dir, dist_nm) - self.ambient_c;
        self.ambient_c + rise / 4.0
    }

    /// Whether a RESET at this distance can disturb an idle amorphous
    /// neighbour (i.e. heats it past crystallization).
    #[must_use]
    pub fn disturbs(&self, dir: Direction, dist_nm: f64) -> bool {
        self.neighbor_temp(dir, dist_nm) >= CRYSTALLIZATION_C
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::calibrated_20nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 20.0;

    #[test]
    fn calibration_matches_table1_temps() {
        let m = ThermalModel::calibrated_20nm();
        assert!((m.neighbor_temp(Direction::WordLine, 2.0 * F) - 310.0).abs() < 1e-6);
        assert!((m.neighbor_temp(Direction::BitLine, 2.0 * F) - 320.0).abs() < 1e-6);
    }

    #[test]
    fn bitline_hotter_than_wordline() {
        // Oxide isolates better than GST (paper §1), so at equal distance
        // the bit-line neighbour is hotter.
        let m = ThermalModel::calibrated_20nm();
        for d in [30.0, 40.0, 60.0, 80.0] {
            assert!(
                m.neighbor_temp(Direction::BitLine, d) > m.neighbor_temp(Direction::WordLine, d)
            );
        }
    }

    #[test]
    fn prototype_spacings_are_wd_free() {
        // Figure 1(b): 4F along word-lines, 3F along bit-lines removes WD.
        let m = ThermalModel::calibrated_20nm();
        assert!(!m.disturbs(Direction::WordLine, 4.0 * F));
        assert!(!m.disturbs(Direction::BitLine, 3.0 * F));
        // while 2F spacing disturbs in both directions.
        assert!(m.disturbs(Direction::WordLine, 2.0 * F));
        assert!(m.disturbs(Direction::BitLine, 2.0 * F));
    }

    #[test]
    fn din_spacing_bitline_4f_is_wd_free() {
        // Figure 1(c): DIN keeps 4F along bit-lines → WD-free there.
        let m = ThermalModel::calibrated_20nm();
        assert!(!m.disturbs(Direction::BitLine, 4.0 * F));
    }

    #[test]
    fn temperature_decays_with_distance() {
        let m = ThermalModel::calibrated_20nm();
        let mut last = f64::INFINITY;
        for i in 1..10 {
            let t = m.neighbor_temp(Direction::BitLine, f64::from(i) * 10.0);
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn set_pulse_rise_is_quarter() {
        let m = ThermalModel::calibrated_20nm();
        let reset_rise = m.neighbor_temp(Direction::BitLine, 40.0) - m.ambient_c;
        let set_rise = m.neighbor_temp_during_set(Direction::BitLine, 40.0) - m.ambient_c;
        assert!((set_rise * 4.0 - reset_rise).abs() < 1e-9);
        // SET never crosses crystallization at 2F → its disturbance is
        // ignorable, as the paper assumes.
        assert!(m.neighbor_temp_during_set(Direction::BitLine, 40.0) < CRYSTALLIZATION_C);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_panics() {
        let _ = ThermalModel::calibrated_20nm().neighbor_temp(Direction::BitLine, 0.0);
    }
}
