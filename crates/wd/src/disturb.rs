//! Disturbance-probability model (paper §2.2.2, Table 1).
//!
//! The probability that one RESET pulse disturbs an idle amorphous
//! neighbour grows sharply with the temperature the neighbour reaches.
//! Crystallization is a thermally activated process, so we use an
//! exponential (Arrhenius-like) law above the crystallization threshold
//! and zero below it:
//!
//! ```text
//! p(T) = 0                      for T < 300 °C
//! p(T) = A · exp(b · T)         for T ≥ 300 °C   (clamped to 1)
//! ```
//!
//! `A` and `b` are solved exactly from the paper's two published
//! operating points for 4F² SLC cells: `p(310 °C) = 9.9 %` (word-line)
//! and `p(320 °C) = 11.5 %` (bit-line).

use crate::scaling::{ArraySpacing, TechNode};
use crate::thermal::{Direction, ThermalModel, CRYSTALLIZATION_C};

/// Table 1 calibration points.
pub const TABLE1_WL_TEMP_C: f64 = 310.0;
/// Table 1: SLC error rate along word-lines at 2F spacing.
pub const TABLE1_WL_RATE: f64 = 0.099;
/// Table 1: bit-line neighbour temperature at 2F spacing.
pub const TABLE1_BL_TEMP_C: f64 = 320.0;
/// Table 1: SLC error rate along bit-lines at 2F spacing.
pub const TABLE1_BL_RATE: f64 = 0.115;

/// The calibrated disturbance-probability model.
///
/// # Examples
///
/// ```
/// use sdpcm_wd::DisturbanceModel;
///
/// let m = DisturbanceModel::calibrated();
/// assert!((m.p_wordline() - 0.099).abs() < 1e-9);
/// assert!((m.p_bitline() - 0.115).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisturbanceModel {
    ln_a: f64,
    b: f64,
    thermal: ThermalModel,
    node: TechNode,
}

impl DisturbanceModel {
    /// The model calibrated to Table 1 at the 20 nm node.
    #[must_use]
    pub fn calibrated() -> DisturbanceModel {
        DisturbanceModel::from_points(
            (TABLE1_WL_TEMP_C, TABLE1_WL_RATE),
            (TABLE1_BL_TEMP_C, TABLE1_BL_RATE),
            ThermalModel::calibrated_20nm(),
            TechNode::paper_default(),
        )
    }

    /// Builds a model through two `(temperature °C, probability)` points.
    ///
    /// # Panics
    ///
    /// Panics if the temperatures coincide or a probability is not in
    /// `(0, 1)`.
    #[must_use]
    pub fn from_points(
        p1: (f64, f64),
        p2: (f64, f64),
        thermal: ThermalModel,
        node: TechNode,
    ) -> DisturbanceModel {
        let ((t1, r1), (t2, r2)) = (p1, p2);
        assert!(t1 != t2, "calibration temperatures must differ");
        assert!(r1 > 0.0 && r1 < 1.0 && r2 > 0.0 && r2 < 1.0);
        let b = (r2.ln() - r1.ln()) / (t2 - t1);
        let ln_a = r1.ln() - b * t1;
        DisturbanceModel {
            ln_a,
            b,
            thermal,
            node,
        }
    }

    /// Per-RESET disturbance probability at neighbour temperature `t_c`.
    #[must_use]
    pub fn probability_at(&self, t_c: f64) -> f64 {
        if t_c < CRYSTALLIZATION_C {
            return 0.0;
        }
        (self.ln_a + self.b * t_c).exp().min(1.0)
    }

    /// Per-RESET disturbance probability for a neighbour in direction
    /// `dir` under the given array spacing, at this model's node.
    #[must_use]
    pub fn probability(&self, dir: Direction, spacing: ArraySpacing) -> f64 {
        let d = self.node.distance_nm(spacing.in_direction(dir));
        self.probability_at(self.thermal.neighbor_temp(dir, d))
    }

    /// Word-line disturbance probability at minimal (2F) spacing —
    /// Table 1's 9.9 %.
    #[must_use]
    pub fn p_wordline(&self) -> f64 {
        self.probability(Direction::WordLine, ArraySpacing::super_dense())
    }

    /// Bit-line disturbance probability at minimal (2F) spacing —
    /// Table 1's 11.5 %.
    #[must_use]
    pub fn p_bitline(&self) -> f64 {
        self.probability(Direction::BitLine, ArraySpacing::super_dense())
    }

    /// The thermal model in use.
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// The technology node in use.
    #[must_use]
    pub fn node(&self) -> TechNode {
        self.node
    }
}

impl Default for DisturbanceModel {
    fn default() -> Self {
        DisturbanceModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1() {
        let m = DisturbanceModel::calibrated();
        assert!((m.p_wordline() - TABLE1_WL_RATE).abs() < 1e-9);
        assert!((m.p_bitline() - TABLE1_BL_RATE).abs() < 1e-9);
    }

    #[test]
    fn zero_below_crystallization() {
        let m = DisturbanceModel::calibrated();
        assert_eq!(m.probability_at(299.9), 0.0);
        assert!(m.probability_at(300.0) > 0.0);
    }

    #[test]
    fn monotone_in_temperature() {
        let m = DisturbanceModel::calibrated();
        let mut last = 0.0;
        for t in (300..400).step_by(10) {
            let p = m.probability_at(f64::from(t));
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn clamped_at_one() {
        let m = DisturbanceModel::calibrated();
        assert_eq!(m.probability_at(5000.0), 1.0);
    }

    #[test]
    fn guard_band_spacings_are_safe() {
        let m = DisturbanceModel::calibrated();
        // DIN array: bit-line direction is WD-free.
        assert_eq!(
            m.probability(Direction::BitLine, ArraySpacing::din_enhanced()),
            0.0
        );
        // Prototype: both directions WD-free.
        assert_eq!(
            m.probability(Direction::WordLine, ArraySpacing::prototype()),
            0.0
        );
        assert_eq!(
            m.probability(Direction::BitLine, ArraySpacing::prototype()),
            0.0
        );
        // DIN still suffers word-line WD (that is what the encoding fixes).
        assert!(m.probability(Direction::WordLine, ArraySpacing::din_enhanced()) > 0.05);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn coincident_calibration_panics() {
        let _ = DisturbanceModel::from_points(
            (310.0, 0.1),
            (310.0, 0.2),
            ThermalModel::calibrated_20nm(),
            TechNode::paper_default(),
        );
    }
}
