//! The hardware-side verification policy (paper Figure 9).
//!
//! The memory controller receives the 4-bit allocator tag with each write
//! (via page table → TLB → request) and decides *arithmetically* which of
//! the two bit-line-adjacent lines must be verified:
//!
//! * a neighbour lying in a strip the allocator marks no-use stores no
//!   data → no verification needed on that side;
//! * a line in the **first strip of its 64 MB block** always verifies its
//!   top neighbour, and one in the **last strip** always verifies its
//!   bottom neighbour — the neighbouring block may belong to a different
//!   allocator, so the hardware cannot assume it is empty;
//! * physical bank edges have no neighbour at all.

use crate::nm::NmRatio;
use sdpcm_pcm::geometry::STRIPS_PER_64MB;

/// Which adjacent lines a write must verify-and-correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdjacentNeed {
    /// Verify the line in the row above (strip − 1).
    pub up: bool,
    /// Verify the line in the row below (strip + 1).
    pub down: bool,
}

impl AdjacentNeed {
    /// Number of adjacent lines to verify (0, 1 or 2).
    #[must_use]
    pub fn count(self) -> u32 {
        u32::from(self.up) + u32::from(self.down)
    }
}

/// The verification policy for one memory system.
///
/// # Examples
///
/// ```
/// use sdpcm_osalloc::{NmRatio, VerifyPolicy};
///
/// let p = VerifyPolicy::new(1 << 20); // strips in the device
/// // (1:2): interior strips never verify anything.
/// let need = p.need(NmRatio::one_two(), 10);
/// assert_eq!(need.count(), 0);
/// // (1:1): interior strips verify both sides.
/// let need = p.need(NmRatio::one_one(), 10);
/// assert_eq!(need.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyPolicy {
    total_strips: u64,
}

impl VerifyPolicy {
    /// Creates the policy for a device with `total_strips` strips.
    ///
    /// # Panics
    ///
    /// Panics if `total_strips` is zero.
    #[must_use]
    pub fn new(total_strips: u64) -> VerifyPolicy {
        assert!(total_strips > 0, "device must have strips");
        VerifyPolicy { total_strips }
    }

    /// Decides which neighbours of a line in `strip` need VnC under the
    /// allocator `ratio` (from the request's tag).
    ///
    /// # Panics
    ///
    /// Panics if `strip` is out of range.
    #[must_use]
    pub fn need(&self, ratio: NmRatio, strip: u64) -> AdjacentNeed {
        assert!(strip < self.total_strips, "strip out of range");
        let in_block = strip % STRIPS_PER_64MB;
        let block_strips = STRIPS_PER_64MB.min(self.total_strips - (strip - in_block));
        let first_of_block = in_block == 0;
        let last_of_block = in_block == block_strips - 1;

        let up = if strip == 0 {
            false // physical top edge: no neighbour exists
        } else if first_of_block {
            true // §4.4: always verify across the block boundary
        } else {
            !ratio.is_nouse_strip(strip - 1)
        };
        let down = if strip + 1 >= self.total_strips {
            false // physical bottom edge
        } else if last_of_block {
            true
        } else {
            !ratio.is_nouse_strip(strip + 1)
        };
        AdjacentNeed { up, down }
    }

    /// Average adjacent lines verified per write for interior strips
    /// (used by the analytical capacity/overhead table).
    #[must_use]
    pub fn mean_interior_verifications(&self, ratio: NmRatio) -> f64 {
        let m = u64::from(ratio.m());
        // Sample one full group well inside a block.
        let base = STRIPS_PER_64MB.min(self.total_strips / 2) / 2;
        let base = base - (base % m).min(base);
        let mut total = 0u32;
        let mut used = 0u32;
        for s in base..base + m {
            if ratio.is_nouse_strip(s) {
                continue;
            }
            used += 1;
            total += self.need(ratio, s).count();
        }
        if used == 0 {
            0.0
        } else {
            f64::from(total) / f64::from(used)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> VerifyPolicy {
        VerifyPolicy::new(8 * STRIPS_PER_64MB)
    }

    #[test]
    fn one_one_verifies_both_interior() {
        let p = policy();
        for s in [5u64, 100, 1500, 4000] {
            assert_eq!(p.need(NmRatio::one_one(), s).count(), 2);
        }
    }

    #[test]
    fn one_two_interior_verifies_nothing() {
        let p = policy();
        // Used strips under (1:2) are even; interior ones skip both sides.
        for s in [2u64, 10, 500, 2048 + 6] {
            assert_eq!(p.need(NmRatio::one_two(), s).count(), 0, "strip {s}");
        }
    }

    #[test]
    fn two_three_verifies_exactly_one_interior() {
        let p = policy();
        // Figure 9: position 0 verifies top, position 2 verifies below.
        let need0 = p.need(NmRatio::two_three(), 3); // position 0
        assert!(need0.up && !need0.down);
        let need2 = p.need(NmRatio::two_three(), 5); // position 2
        assert!(!need2.up && need2.down);
    }

    #[test]
    fn block_boundary_rules() {
        let p = policy();
        // First strip of second 64MB block always verifies top, even
        // under (1:2) where its top neighbour (1023) would be used anyway.
        let first = p.need(NmRatio::one_two(), STRIPS_PER_64MB);
        assert!(first.up);
        // Last strip of first block always verifies down.
        let last = p.need(NmRatio::one_two(), STRIPS_PER_64MB - 1);
        assert!(last.down);
    }

    #[test]
    fn physical_edges_have_no_neighbor() {
        let p = policy();
        let top = p.need(NmRatio::one_one(), 0);
        assert!(!top.up && top.down);
        let bottom = p.need(NmRatio::one_one(), 8 * STRIPS_PER_64MB - 1);
        assert!(bottom.up && !bottom.down);
    }

    #[test]
    fn mean_verifications_monotone_in_ratio() {
        // Figure 16's driver: 1:1 > 3:4 > 2:3 > 1:2.
        let p = policy();
        let v11 = p.mean_interior_verifications(NmRatio::one_one());
        let v34 = p.mean_interior_verifications(NmRatio::three_four());
        let v23 = p.mean_interior_verifications(NmRatio::two_three());
        let v12 = p.mean_interior_verifications(NmRatio::one_two());
        assert_eq!(v11, 2.0);
        assert_eq!(v12, 0.0);
        assert!((v23 - 1.0).abs() < 1e-12);
        assert!(v34 > v23 && v34 < v11, "v34={v34}");
    }

    #[test]
    fn small_device_boundaries() {
        // A device smaller than one 64MB block: first/last strip rules
        // collapse to the physical edges.
        let p = VerifyPolicy::new(16);
        let n = p.need(NmRatio::one_one(), 0);
        assert!(!n.up && n.down);
        let n = p.need(NmRatio::one_one(), 15);
        assert!(n.up && !n.down);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_strip_panics() {
        let _ = VerifyPolicy::new(4).need(NmRatio::one_one(), 4);
    }
}
