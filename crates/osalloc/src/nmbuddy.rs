//! The paper-faithful (n:m) buddy integration (§4.4, Figure 10).
//!
//! [`crate::nmalloc`] is the simulation-friendly allocator (a pool of
//! usable frames). This module implements the *block-based* algorithm the
//! paper actually describes for integrating (n:m)-Alloc with a
//! buddy-system OS:
//!
//! * each (n:m) allocator owns a `Free-(n:m)` **free-block-list array**
//!   (power-of-two page blocks), fed with 64 MB blocks from `Free-(1:1)`;
//! * a request for ≥ 16 pages (a strip) has its size **adjusted** by
//!   `m/n` and rounded up to a power of two — the marked strips inside
//!   the returned block become *internal fragments*;
//! * when splitting a block down to strip size (16 pages), a sub-block
//!   lying on a marked strip is **not linked** into the free lists — it
//!   becomes a *no-use fragment* (the paper's external fragment);
//! * freeing reclaims no-use buddies automatically: a freed 16-page block
//!   whose buddy is a marked strip immediately forms a 32-page block.
//!
//! The module tracks both fragment kinds so the §4.4 trade-off (capacity
//! loss vs VnC overhead) is measurable at the allocator level too.

use std::collections::{BTreeMap, BTreeSet};

use crate::buddy::BuddyAllocator;
use crate::nm::NmRatio;
use crate::nmalloc::PAGES_PER_64MB;
use sdpcm_pcm::geometry::PAGES_PER_STRIP;

/// log₂ of the strip size in pages (16 pages → order 4).
pub const STRIP_ORDER: u8 = 4;
/// Largest supported block order within a pool (64 MB = 16384 pages).
pub const POOL_MAX_ORDER: u8 = 14;

/// A block handed out by [`NmBuddyAllocator::alloc_pages`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Base frame of the underlying buddy block.
    pub base: u64,
    /// Buddy order of the block (`2^order` pages).
    pub order: u8,
    /// The usable frames backing the request, in ascending order.
    pub frames: Vec<u64>,
}

/// The Figure 10 allocator: one `Free-(n:m)` array over a `Free-(1:1)`
/// buddy.
///
/// # Examples
///
/// ```
/// use sdpcm_osalloc::nmbuddy::NmBuddyAllocator;
/// use sdpcm_osalloc::NmRatio;
///
/// let mut a = NmBuddyAllocator::new(1 << 12, NmRatio::one_two());
/// // 32 pages under (1:2): the paper's example — a 64-page block whose
/// // two usable strips back the request.
/// let alloc = a.alloc_pages(32).unwrap();
/// assert_eq!(alloc.order, 6);
/// assert_eq!(alloc.frames.len(), 32);
/// assert!(alloc.frames.iter().all(|f| (f / 16) % 2 == 0));
/// ```
#[derive(Debug, Clone)]
pub struct NmBuddyAllocator {
    base: BuddyAllocator,
    ratio: NmRatio,
    /// `Free-(n:m)`: free blocks per order.
    free_lists: Vec<BTreeSet<u64>>,
    /// Marked (no-use) strip-order blocks produced by splitting, by base.
    nouse_fragments: BTreeSet<u64>,
    /// Outstanding allocations: base → order (double-free detection).
    outstanding: BTreeMap<u64, u8>,
    /// Usable-but-unused pages inside outstanding blocks.
    internal_fragment_pages: u64,
}

impl NmBuddyAllocator {
    /// Creates the allocator over `total_pages` frames for one ratio.
    #[must_use]
    pub fn new(total_pages: u64, ratio: NmRatio) -> NmBuddyAllocator {
        NmBuddyAllocator {
            base: BuddyAllocator::new(total_pages),
            ratio,
            free_lists: vec![BTreeSet::new(); usize::from(POOL_MAX_ORDER) + 1],
            nouse_fragments: BTreeSet::new(),
            outstanding: BTreeMap::new(),
            internal_fragment_pages: 0,
        }
    }

    /// The allocator's ratio.
    #[must_use]
    pub fn ratio(&self) -> NmRatio {
        self.ratio
    }

    /// Pages currently sitting in marked no-use fragments (the paper's
    /// external fragmentation).
    #[must_use]
    pub fn nouse_fragment_pages(&self) -> u64 {
        self.nouse_fragments.len() as u64 * PAGES_PER_STRIP as u64
    }

    /// Usable pages wasted inside outstanding blocks (internal
    /// fragmentation from the `m/n` size adjustment).
    #[must_use]
    pub fn internal_fragment_pages(&self) -> u64 {
        self.internal_fragment_pages
    }

    /// Frames still free in the backing (1:1) buddy.
    #[must_use]
    pub fn base_free_pages(&self) -> u64 {
        self.base.free_pages()
    }

    fn is_marked_strip_block(&self, base: u64, order: u8) -> bool {
        order == STRIP_ORDER && self.ratio.is_nouse_strip(base / PAGES_PER_STRIP as u64)
    }

    fn usable_frames_in(&self, base: u64, order: u8) -> Vec<u64> {
        (base..base + (1u64 << order))
            .filter(|f| !self.ratio.is_nouse_strip(f / PAGES_PER_STRIP as u64))
            .collect()
    }

    /// The request-size adjustment of §4.4: requests of at least one
    /// strip grow by `m/n` and round up to a power of two; sub-strip
    /// requests only round up.
    #[must_use]
    pub fn adjusted_order(&self, pages: u64) -> u8 {
        assert!(pages > 0, "cannot allocate zero pages");
        let strip = PAGES_PER_STRIP as u64;
        let target = if pages >= strip {
            (pages * u64::from(self.ratio.m())).div_ceil(u64::from(self.ratio.n()))
        } else {
            pages
        };
        let order = 64 - (target - 1).leading_zeros() as u8; // ceil log2
        if target == 1 {
            0
        } else {
            order
        }
    }

    /// Allocates `pages` pages; returns the backing block and its usable
    /// frames. `None` when memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn alloc_pages(&mut self, pages: u64) -> Option<Allocation> {
        let mut order = self.adjusted_order(pages);
        loop {
            if let Some(base) = self.take_block(order) {
                let usable = self.usable_frames_in(base, order);
                if (usable.len() as u64) < pages {
                    // Group phase at a block boundary can starve a tight
                    // fit; give the block back and try one order up.
                    self.link_block(base, order);
                    order += 1;
                    if order > POOL_MAX_ORDER {
                        return None;
                    }
                    continue;
                }
                let frames: Vec<u64> = usable[..pages as usize].to_vec();
                self.internal_fragment_pages += usable.len() as u64 - pages;
                self.outstanding.insert(base, order);
                return Some(Allocation {
                    base,
                    order,
                    frames,
                });
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Frees a previous allocation, merging buddies — including marked
    /// no-use buddies, which reclaim automatically (§4.4).
    ///
    /// # Panics
    ///
    /// Panics on a double free or a foreign block.
    pub fn free(&mut self, alloc: &Allocation) {
        let order = self
            .outstanding
            .remove(&alloc.base)
            .unwrap_or_else(|| panic!("double free or foreign block {}", alloc.base));
        assert_eq!(order, alloc.order, "allocation metadata corrupted");
        let usable = self.usable_frames_in(alloc.base, order).len() as u64;
        self.internal_fragment_pages -= usable - alloc.frames.len() as u64;
        self.link_block(alloc.base, order);
    }

    /// Takes a block of exactly `order`, splitting bigger blocks; marked
    /// strip-order sub-blocks produced by splits are set aside as no-use
    /// fragments, never handed out.
    fn take_block(&mut self, order: u8) -> Option<u64> {
        // Direct hit: any free block at this order (for sub-strip and
        // strip orders these are always fully usable; bigger blocks may
        // contain internal marked strips, which is fine — the caller
        // works from usable frames).
        if let Some(&base) = self.free_lists[usize::from(order)].iter().next() {
            self.free_lists[usize::from(order)].remove(&base);
            return Some(base);
        }
        // Split one order up (recursively).
        if order >= POOL_MAX_ORDER {
            return None;
        }
        let parent = self.take_block(order + 1)?;
        let half = 1u64 << order;
        let (keep, other) = (parent, parent + half);
        // Link (or set aside) the other half.
        if self.is_marked_strip_block(other, order) {
            self.nouse_fragments.insert(other);
        } else {
            self.link_block_no_merge(other, order);
        }
        // If the kept half is itself a marked strip, swap roles.
        if self.is_marked_strip_block(keep, order) {
            self.nouse_fragments.insert(keep);
            if self.is_marked_strip_block(other, order) {
                // Both halves marked (e.g. (1:3) with adjacent marks):
                // neither is usable at this order; try again.
                return self.take_block(order);
            }
            // `other` was linked above; take it back.
            self.free_lists[usize::from(order)].remove(&other);
            return Some(other);
        }
        Some(keep)
    }

    /// Links a freed/split block, merging with free or no-use buddies.
    fn link_block(&mut self, base: u64, order: u8) {
        let mut base = base;
        let mut order = order;
        while order < POOL_MAX_ORDER {
            let buddy = base ^ (1u64 << order);
            let buddy_free = self.free_lists[usize::from(order)].contains(&buddy);
            let buddy_nouse = order == STRIP_ORDER && self.nouse_fragments.contains(&buddy);
            if buddy_free {
                self.free_lists[usize::from(order)].remove(&buddy);
            } else if buddy_nouse {
                self.nouse_fragments.remove(&buddy);
            } else {
                break;
            }
            base = base.min(buddy);
            order += 1;
        }
        self.link_block_no_merge(base, order);
    }

    fn link_block_no_merge(&mut self, base: u64, order: u8) {
        let inserted = self.free_lists[usize::from(order)].insert(base);
        debug_assert!(inserted, "block {base} already free at order {order}");
    }

    /// Pulls one 64 MB block (or the device's largest) from Free-(1:1).
    fn refill(&mut self) -> bool {
        let want = PAGES_PER_64MB
            .min(self.base.total_pages())
            .min(1 << POOL_MAX_ORDER);
        let order = (63 - want.leading_zeros()) as u8;
        let mut o = order;
        let base = loop {
            if let Some(b) = self.base.alloc(o) {
                break b;
            }
            if o == 0 {
                return false;
            }
            o -= 1;
        };
        if o <= STRIP_ORDER && self.is_marked_strip_block(base, o) {
            // The only remaining memory is a marked strip: useless.
            self.nouse_fragments.insert(base);
            return false;
        }
        self.link_block(base, o);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_one_two_32_pages() {
        // §4.4: a 32-page request under (1:2) becomes a 64-page block;
        // logical pages land on frames 0..15 and 32..47.
        let mut a = NmBuddyAllocator::new(4096, NmRatio::one_two());
        let alloc = a.alloc_pages(32).unwrap();
        assert_eq!(alloc.order, 6);
        assert_eq!(alloc.frames.len(), 32);
        let expect: Vec<u64> = (0..16).chain(32..48).collect();
        assert_eq!(alloc.frames, expect);
        assert_eq!(a.internal_fragment_pages(), 0, "exact fit under (1:2)");
    }

    #[test]
    fn adjusted_order_math() {
        let a12 = NmBuddyAllocator::new(4096, NmRatio::one_two());
        assert_eq!(a12.adjusted_order(16), 5); // 16 -> 32
        assert_eq!(a12.adjusted_order(32), 6); // 32 -> 64
        assert_eq!(a12.adjusted_order(8), 3); // sub-strip: no adjustment
        let a23 = NmBuddyAllocator::new(4096, NmRatio::two_three());
        assert_eq!(a23.adjusted_order(32), 6); // 32 -> 48 -> 64
        let a11 = NmBuddyAllocator::new(4096, NmRatio::one_one());
        assert_eq!(a11.adjusted_order(32), 5);
    }

    #[test]
    fn sub_strip_requests_avoid_marked_strips() {
        let mut a = NmBuddyAllocator::new(1024, NmRatio::one_two());
        for _ in 0..16 {
            let alloc = a.alloc_pages(8).unwrap();
            for f in &alloc.frames {
                assert_eq!((f / 16) % 2, 0, "frame {f} in a marked strip");
            }
        }
        // Splitting linked marked strips aside as no-use fragments.
        assert!(a.nouse_fragment_pages() > 0);
    }

    #[test]
    fn internal_fragments_accounted_for_two_three() {
        // 32 pages under (2:3): a 64-page block holds ~42 usable frames;
        // 32 are used, the rest is internal fragmentation.
        let mut a = NmBuddyAllocator::new(4096, NmRatio::two_three());
        let alloc = a.alloc_pages(32).unwrap();
        assert_eq!(alloc.order, 6);
        let usable_in_block = alloc.frames.len() as u64 + a.internal_fragment_pages();
        assert!(usable_in_block > 32, "block over-provisions under (2:3)");
        a.free(&alloc);
        assert_eq!(
            a.internal_fragment_pages(),
            0,
            "fragments reclaimed on free"
        );
    }

    #[test]
    fn free_reclaims_nouse_buddies() {
        // §4.4: freeing a 16-page block in (1:2) forms a 32-page block by
        // reclaiming its no-use buddy.
        let mut a = NmBuddyAllocator::new(256, NmRatio::one_two());
        let small = a.alloc_pages(8).unwrap();
        let frag_before = a.nouse_fragment_pages();
        assert!(frag_before > 0);
        a.free(&small);
        // After freeing everything, merging swallowed marked buddies back
        // into big blocks: fragments shrink.
        assert!(a.nouse_fragment_pages() < frag_before);
    }

    #[test]
    fn allocations_never_overlap() {
        let mut a = NmBuddyAllocator::new(2048, NmRatio::two_three());
        let mut seen = std::collections::HashSet::new();
        let mut allocs = Vec::new();
        while let Some(al) = a.alloc_pages(16) {
            for f in &al.frames {
                assert!(seen.insert(*f), "frame {f} double-allocated");
                assert_ne!((f / 16) % 3, 1, "frame {f} on marked strip");
            }
            allocs.push(al);
        }
        assert!(!allocs.is_empty());
        for al in &allocs {
            a.free(al);
        }
    }

    #[test]
    fn one_one_has_no_fragments() {
        let mut a = NmBuddyAllocator::new(1024, NmRatio::one_one());
        let alloc = a.alloc_pages(64).unwrap();
        assert_eq!(alloc.frames.len(), 64);
        assert_eq!(a.nouse_fragment_pages(), 0);
        assert_eq!(a.internal_fragment_pages(), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = NmBuddyAllocator::new(64, NmRatio::one_two());
        let first = a.alloc_pages(32).unwrap(); // takes the whole device
        assert!(a.alloc_pages(32).is_none());
        a.free(&first);
        assert!(a.alloc_pages(32).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = NmBuddyAllocator::new(256, NmRatio::one_two());
        let al = a.alloc_pages(16).unwrap();
        a.free(&al);
        a.free(&al);
    }

    #[test]
    fn usable_pages_are_conserved_at_scale() {
        // Under (2:3), every usable page of an allocated block is either
        // handed out or accounted as internal fragmentation (the cost of
        // the power-of-two size adjustment with uniform 16-page
        // requests), and marked strips show up as no-use fragments.
        let total = 4096u64;
        let mut a = NmBuddyAllocator::new(total, NmRatio::two_three());
        let mut handed = 0u64;
        while let Some(al) = a.alloc_pages(16) {
            handed += al.frames.len() as u64;
            std::mem::forget(al); // never freed; we only count capacity
        }
        let frac = handed as f64 / total as f64;
        assert!(frac > 0.45, "handed fraction {frac} unexpectedly low");
        // Conservation: handed + internal fragments = usable share of the
        // blocks consumed (within one trailing partial block).
        let usable_consumed = handed + a.internal_fragment_pages();
        let expected = (total as f64) * (2.0 / 3.0);
        assert!(
            (usable_consumed as f64 - expected).abs() < 64.0,
            "usable {usable_consumed} vs expected {expected}"
        );
    }
}
