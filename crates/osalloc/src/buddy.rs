//! A classic buddy page allocator.
//!
//! The OS baseline of §4.4: free blocks of 2^order pages kept in
//! per-order lists; allocation splits larger blocks, freeing merges
//! buddies back together. [`crate::nmalloc`] layers the (n:m) free-list
//! arrays on top of this.

use std::collections::BTreeSet;

/// Maximum supported block order (2^16 pages = 256 MB blocks).
pub const MAX_ORDER: u8 = 16;

/// A buddy allocator over page frames `0..total_pages`.
///
/// # Examples
///
/// ```
/// use sdpcm_osalloc::buddy::BuddyAllocator;
///
/// let mut b = BuddyAllocator::new(64);
/// let block = b.alloc(2).unwrap(); // 4 pages
/// assert_eq!(block % 4, 0, "blocks are order-aligned");
/// b.free(block, 2);
/// assert_eq!(b.free_pages(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    total_pages: u64,
    /// Free blocks per order; `BTreeSet` gives deterministic (lowest
    /// address first) allocation order.
    free_lists: Vec<BTreeSet<u64>>,
    /// Outstanding allocations, for double-free detection.
    allocated: BTreeSet<(u64, u8)>,
    free_pages: u64,
}

impl BuddyAllocator {
    /// Creates an allocator over `total_pages` frames (need not be a
    /// power of two; the range is tiled greedily with aligned blocks).
    ///
    /// # Panics
    ///
    /// Panics if `total_pages` is zero.
    #[must_use]
    pub fn new(total_pages: u64) -> BuddyAllocator {
        assert!(total_pages > 0, "allocator needs pages");
        let mut b = BuddyAllocator {
            total_pages,
            free_lists: vec![BTreeSet::new(); usize::from(MAX_ORDER) + 1],
            allocated: BTreeSet::new(),
            free_pages: 0,
        };
        // Tile [0, total) with maximal aligned blocks.
        let mut base = 0u64;
        while base < total_pages {
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                if base.is_multiple_of(size) && base + size <= total_pages {
                    break;
                }
                order -= 1;
            }
            b.free_lists[usize::from(order)].insert(base);
            b.free_pages += 1 << order;
            base += 1 << order;
        }
        b
    }

    /// Total page frames managed.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Currently free page frames.
    #[must_use]
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Number of free blocks at `order` (diagnostic).
    #[must_use]
    pub fn free_blocks_at(&self, order: u8) -> usize {
        self.free_lists[usize::from(order)].len()
    }

    /// Allocates a block of `2^order` pages; returns its base frame.
    /// Splits a larger block if necessary. `None` when no block of
    /// sufficient size exists.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER`.
    pub fn alloc(&mut self, order: u8) -> Option<u64> {
        assert!(order <= MAX_ORDER, "order too large");
        // Find the smallest order with a free block.
        let mut have = order;
        loop {
            if !self.free_lists[usize::from(have)].is_empty() {
                break;
            }
            if have == MAX_ORDER {
                return None;
            }
            have += 1;
        }
        let base = *self.free_lists[usize::from(have)].iter().next()?;
        self.free_lists[usize::from(have)].remove(&base);
        // Split down to the requested order, linking upper halves.
        while have > order {
            have -= 1;
            let buddy = base + (1u64 << have);
            self.free_lists[usize::from(have)].insert(buddy);
        }
        self.free_pages -= 1 << order;
        self.allocated.insert((base, order));
        Some(base)
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`],
    /// merging with its buddy where possible.
    ///
    /// # Panics
    ///
    /// Panics on a misaligned base, an out-of-range block, or a double
    /// free.
    pub fn free(&mut self, base: u64, order: u8) {
        assert!(order <= MAX_ORDER, "order too large");
        let size = 1u64 << order;
        assert!(base.is_multiple_of(size), "misaligned free");
        assert!(base + size <= self.total_pages, "block out of range");
        assert!(
            self.allocated.remove(&(base, order)),
            "double free or unallocated block {base} at order {order}"
        );
        let mut base = base;
        let mut order = order;
        loop {
            assert!(
                !self.free_lists[usize::from(order)].contains(&base),
                "double free of block {base} at order {order}"
            );
            let buddy = base ^ (1u64 << order);
            let can_merge = order < MAX_ORDER
                && buddy + (1u64 << order) <= self.total_pages
                && self.free_lists[usize::from(order)].contains(&buddy);
            if !can_merge {
                self.free_lists[usize::from(order)].insert(base);
                break;
            }
            self.free_lists[usize::from(order)].remove(&buddy);
            base = base.min(buddy);
            order += 1;
        }
        self.free_pages += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_restores_everything() {
        let mut b = BuddyAllocator::new(128);
        let blocks: Vec<u64> = (0..8).map(|_| b.alloc(3).unwrap()).collect();
        assert_eq!(b.free_pages(), 128 - 8 * 8);
        for &blk in &blocks {
            b.free(blk, 3);
        }
        assert_eq!(b.free_pages(), 128);
        // Everything merged back into one 128-page block (order 7).
        assert_eq!(b.free_blocks_at(7), 1);
    }

    #[test]
    fn split_produces_aligned_disjoint_blocks() {
        let mut b = BuddyAllocator::new(64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            let base = b.alloc(2).unwrap();
            assert_eq!(base % 4, 0);
            for p in base..base + 4 {
                assert!(seen.insert(p), "page {p} handed out twice");
            }
        }
        assert_eq!(b.alloc(0), None, "fully exhausted");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BuddyAllocator::new(16);
        assert!(b.alloc(4).is_some());
        assert_eq!(b.alloc(0), None);
    }

    #[test]
    fn merge_requires_true_buddy() {
        let mut b = BuddyAllocator::new(16);
        let a0 = b.alloc(0).unwrap(); // 0
        let a1 = b.alloc(0).unwrap(); // 1
        let a2 = b.alloc(0).unwrap(); // 2
                                      // Free 1 and 2: not buddies of each other (1^1=0, 2^1=3).
        b.free(a1, 0);
        b.free(a2, 0);
        assert_eq!(b.free_blocks_at(1), 1, "only one pair merged"); // pages 2-3 via buddy 3? no: 3 is free from init
        b.free(a0, 0);
        assert_eq!(b.free_pages(), 16);
    }

    #[test]
    fn non_power_of_two_total() {
        let mut b = BuddyAllocator::new(100);
        assert_eq!(b.free_pages(), 100);
        // Largest block is 64 pages (order 6).
        assert!(b.alloc(6).is_some());
        assert_eq!(b.alloc(6), None);
        assert!(b.alloc(5).is_some()); // 32 more
        assert_eq!(b.free_pages(), 4);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(8);
        let blk = b.alloc(1).unwrap();
        b.free(blk, 1);
        b.free(blk, 1);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_panics() {
        let mut b = BuddyAllocator::new(8);
        let _ = b.alloc(1).unwrap();
        b.free(1, 1);
    }

    #[test]
    fn deterministic_allocation_order() {
        let mut a = BuddyAllocator::new(64);
        let mut b = BuddyAllocator::new(64);
        for _ in 0..10 {
            assert_eq!(a.alloc(1), b.alloc(1));
        }
    }
}
