//! Page tables and the tag-carrying TLB (paper Figure 9).
//!
//! Each process (core) has a page table mapping virtual pages to physical
//! frames. SD-PCM adds a 4-bit **(n:m) allocator tag** to every entry;
//! the tag is loaded into the TLB on a fill and passed with the physical
//! address to the memory controller, which uses it to decide which
//! adjacent lines need verification. The TLB here is functional (the
//! paper treats its latency as part of the core pipeline) but tracks
//! hit/miss counts so experiments can confirm the tag path adds no
//! traffic.

use std::collections::HashMap;

use crate::nm::NmRatio;

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteEntry {
    /// Physical frame number.
    pub frame: u64,
    /// The allocator this page came from.
    pub ratio: NmRatio,
}

/// A per-process page table with allocator tags.
///
/// # Examples
///
/// ```
/// use sdpcm_osalloc::{NmRatio, PageTable};
///
/// let mut pt = PageTable::new();
/// pt.map(0, 42, NmRatio::two_three());
/// let e = pt.translate(0).unwrap();
/// assert_eq!(e.frame, 42);
/// assert_eq!(e.ratio, NmRatio::two_three());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: HashMap<u64, PteEntry>,
}

impl PageTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Maps `vpage` to `frame` with the given allocator tag.
    ///
    /// # Panics
    ///
    /// Panics if the virtual page is already mapped.
    pub fn map(&mut self, vpage: u64, frame: u64, ratio: NmRatio) {
        let prev = self.entries.insert(vpage, PteEntry { frame, ratio });
        assert!(prev.is_none(), "virtual page {vpage} double mapped");
    }

    /// Removes a mapping, returning it.
    pub fn unmap(&mut self, vpage: u64) -> Option<PteEntry> {
        self.entries.remove(&vpage)
    }

    /// Looks up a virtual page.
    #[must_use]
    pub fn translate(&self, vpage: u64) -> Option<PteEntry> {
        self.entries.get(&vpage).copied()
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pages are mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A small fully-associative TLB with FIFO replacement carrying the
/// allocator tag alongside the translation.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    entries: Vec<(u64, PteEntry)>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with room for `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB needs capacity");
        Tlb {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Translates through the TLB, filling from `pt` on a miss.
    /// Returns `None` only if the page table has no mapping.
    pub fn translate(&mut self, vpage: u64, pt: &PageTable) -> Option<PteEntry> {
        if let Some((_, e)) = self.entries.iter().find(|(v, _)| *v == vpage) {
            self.hits += 1;
            return Some(*e);
        }
        self.misses += 1;
        let e = pt.translate(vpage)?;
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((vpage, e));
        Some(e)
    }

    /// `(hits, misses)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops all cached translations (e.g. after remapping).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new();
        pt.map(5, 99, NmRatio::one_two());
        assert_eq!(pt.translate(5).unwrap().frame, 99);
        assert_eq!(pt.len(), 1);
        let e = pt.unmap(5).unwrap();
        assert_eq!(e.ratio, NmRatio::one_two());
        assert!(pt.is_empty());
        assert!(pt.translate(5).is_none());
    }

    #[test]
    #[should_panic(expected = "double mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(1, 2, NmRatio::one_one());
        pt.map(1, 3, NmRatio::one_one());
    }

    #[test]
    fn tlb_caches_translations() {
        let mut pt = PageTable::new();
        pt.map(7, 70, NmRatio::two_three());
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.translate(7, &pt).unwrap().frame, 70);
        assert_eq!(tlb.translate(7, &pt).unwrap().frame, 70);
        assert_eq!(tlb.stats(), (1, 1));
    }

    #[test]
    fn tlb_fifo_eviction() {
        let mut pt = PageTable::new();
        for v in 0..3 {
            pt.map(v, v + 100, NmRatio::one_one());
        }
        let mut tlb = Tlb::new(2);
        tlb.translate(0, &pt);
        tlb.translate(1, &pt);
        tlb.translate(2, &pt); // evicts 0
        tlb.translate(0, &pt); // miss again
        assert_eq!(tlb.stats(), (0, 4));
    }

    #[test]
    fn tlb_carries_the_tag() {
        let mut pt = PageTable::new();
        pt.map(1, 10, NmRatio::two_three());
        pt.map(2, 20, NmRatio::one_two());
        let mut tlb = Tlb::new(8);
        assert_eq!(tlb.translate(1, &pt).unwrap().ratio, NmRatio::two_three());
        assert_eq!(tlb.translate(2, &pt).unwrap().ratio, NmRatio::one_two());
    }

    #[test]
    fn tlb_flush_forces_misses() {
        let mut pt = PageTable::new();
        pt.map(3, 30, NmRatio::one_one());
        let mut tlb = Tlb::new(2);
        tlb.translate(3, &pt);
        tlb.flush();
        tlb.translate(3, &pt);
        assert_eq!(tlb.stats(), (0, 2));
    }

    #[test]
    fn unmapped_page_is_none() {
        let pt = PageTable::new();
        let mut tlb = Tlb::new(2);
        assert!(tlb.translate(9, &pt).is_none());
    }
}
