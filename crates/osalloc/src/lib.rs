#![warn(missing_docs)]

//! WD-aware OS page allocation for the SD-PCM reproduction (paper §4.4).
//!
//! SD-PCM's third mechanism, **(n:m)-Alloc**, is an operating-system
//! policy: use only `n` out of every `m` consecutive device strips and
//! mark the rest *no-use*. A line whose bit-line neighbour lies in a
//! no-use strip stores no data there, so the write needs no verification
//! on that side — trading memory capacity for VnC overhead.
//!
//! This crate implements the whole OS story:
//!
//! * [`nm`] — the [`nm::NmRatio`] type and the strip-marking
//!   rule (`strip_index mod m == 1` for the paper's ratios, generalized
//!   to arbitrary `n:m`), applied independently within each 64 MB block.
//! * [`policy`] — the hardware-side verification policy of Figure 9:
//!   from a strip index and the allocator tag, decide which adjacent
//!   lines need VnC, including the always-verify rules at 64 MB block
//!   boundaries.
//! * [`buddy`] — a classic buddy allocator (power-of-two page blocks,
//!   split/merge).
//! * [`nmalloc`] — the WD-aware allocator: per-(n:m) free-block-list
//!   arrays fed with 64 MB blocks from the (1:1) buddy, handing out only
//!   frames from used strips.
//! * [`pagetable`] — per-process page tables carrying the 4-bit (n:m)
//!   allocator tag, plus the TLB that forwards the tag to the memory
//!   controller.
//! * [`dma`] — DMA address generation under (1:1)/(1:2) allocation.

pub mod buddy;
pub mod dma;
pub mod nm;
pub mod nmalloc;
pub mod nmbuddy;
pub mod pagetable;
pub mod policy;

pub use nm::{InvalidRatio, NmRatio};
pub use nmalloc::NmAllocator;
pub use nmbuddy::NmBuddyAllocator;
pub use pagetable::{PageTable, Tlb};
pub use policy::{AdjacentNeed, VerifyPolicy};
