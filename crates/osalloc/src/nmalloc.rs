//! The WD-aware page allocator: (n:m) free-list arrays over the buddy
//! system (paper §4.4, Figure 10).
//!
//! The OS keeps the baseline buddy allocator as `Free-(1:1)`. Each
//! requested `(n:m)` allocator (n ≠ m) owns a separate pool fed with
//! 64 MB blocks taken from `Free-(1:1)` (or the device's largest block on
//! scaled-down test geometries); within those blocks only the strips the
//! ratio leaves unmarked are ever handed out — marked strips become
//! internal thermal bands. Freeing returns frames to the pool; when every
//! usable frame of a feeding block is free again the block is reclaimed
//! into `Free-(1:1)` (the paper's fragmentation-reduction path).

use std::collections::{BTreeMap, BTreeSet};

use crate::buddy::BuddyAllocator;
use crate::nm::NmRatio;
use sdpcm_pcm::geometry::{PAGES_PER_STRIP, STRIPS_PER_64MB};

/// Pages per 64 MB block.
pub const PAGES_PER_64MB: u64 = STRIPS_PER_64MB * PAGES_PER_STRIP as u64;

#[derive(Debug, Clone, Copy)]
struct Region {
    span: u64,
    usable: u64,
    free: u64,
}

#[derive(Debug, Clone, Default)]
struct Pool {
    /// Free usable frames, lowest first (deterministic).
    free: BTreeSet<u64>,
    /// Blocks feeding this pool, keyed by base frame.
    regions: BTreeMap<u64, Region>,
}

impl Pool {
    fn region_of(&mut self, frame: u64) -> Option<(u64, &mut Region)> {
        let (&base, region) = self.regions.range_mut(..=frame).next_back()?;
        (frame < base + region.span).then_some((base, region))
    }
}

/// The OS page allocator with (n:m) support.
///
/// # Examples
///
/// ```
/// use sdpcm_osalloc::{NmAllocator, NmRatio};
///
/// let mut a = NmAllocator::new(1 << 16); // 64K frames = 256 MB
/// let frames = a.alloc_pages(NmRatio::one_two(), 32).unwrap();
/// assert_eq!(frames.len(), 32);
/// // No frame lies in a marked (odd) strip.
/// assert!(frames.iter().all(|f| (f / 16) % 2 == 0));
/// ```
#[derive(Debug, Clone)]
pub struct NmAllocator {
    base: BuddyAllocator,
    pools: BTreeMap<(u8, u8), Pool>,
}

impl NmAllocator {
    /// Creates an allocator over `total_pages` physical frames.
    #[must_use]
    pub fn new(total_pages: u64) -> NmAllocator {
        NmAllocator {
            base: BuddyAllocator::new(total_pages),
            pools: BTreeMap::new(),
        }
    }

    /// Frames still free in the baseline (1:1) buddy.
    #[must_use]
    pub fn base_free_pages(&self) -> u64 {
        self.base.free_pages()
    }

    /// Free usable frames currently pooled for `ratio`.
    #[must_use]
    pub fn pool_free_pages(&self, ratio: NmRatio) -> u64 {
        self.pools
            .get(&(ratio.n(), ratio.m()))
            .map_or(0, |p| p.free.len() as u64)
    }

    /// Allocates `count` page frames under `ratio`. Frames are usable
    /// (never in a marked strip), deterministic, and not necessarily
    /// physically contiguous — the page table provides the mapping.
    /// Returns `None` if memory is exhausted (no partial allocation
    /// leaks).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn alloc_pages(&mut self, ratio: NmRatio, count: u64) -> Option<Vec<u64>> {
        assert!(count > 0, "cannot allocate zero pages");
        if ratio.n() == ratio.m() {
            return self.alloc_from_base(count);
        }
        let key = (ratio.n(), ratio.m());
        let mut out = Vec::with_capacity(count as usize);
        while (out.len() as u64) < count {
            let next = self
                .pools
                .get(&key)
                .and_then(|p| p.free.iter().next().copied());
            match next {
                Some(f) => {
                    let pool = self.pools.get_mut(&key).expect("pool exists");
                    pool.free.remove(&f);
                    let (_, region) = pool.region_of(f).expect("frame belongs to a region");
                    region.free -= 1;
                    out.push(f);
                }
                None => {
                    if !self.refill_pool(ratio) {
                        let frames = std::mem::take(&mut out);
                        if !frames.is_empty() {
                            self.free_pages(ratio, &frames);
                        }
                        return None;
                    }
                }
            }
        }
        Some(out)
    }

    /// Returns frames allocated under `ratio` to their pool; fully free
    /// feeding blocks are merged back into the (1:1) buddy.
    ///
    /// # Panics
    ///
    /// Panics on a double free or a frame that was never handed out by
    /// this allocator/ratio.
    pub fn free_pages(&mut self, ratio: NmRatio, frames: &[u64]) {
        if ratio.n() == ratio.m() {
            for &f in frames {
                self.base.free(f, 0);
            }
            return;
        }
        let key = (ratio.n(), ratio.m());
        let mut reclaim: Vec<(u64, u64)> = Vec::new();
        {
            let pool = self.pools.entry(key).or_default();
            for &f in frames {
                let Some((base, region)) = pool.region_of(f) else {
                    panic!("double free or foreign frame {f}");
                };
                region.free += 1;
                let full = region.free == region.usable;
                let span = region.span;
                assert!(pool.free.insert(f), "double free of frame {f}");
                if full {
                    reclaim.push((base, span));
                }
            }
            for &(base, span) in &reclaim {
                pool.regions.remove(&base);
                let in_region: Vec<u64> = pool.free.range(base..base + span).copied().collect();
                for f in in_region {
                    pool.free.remove(&f);
                }
            }
        }
        for (base, span) in reclaim {
            // Return the block in order-aligned chunks.
            let mut b = base;
            while b < base + span {
                let mut order = 0u8;
                while b % (1 << (order + 1)) == 0 && b + (1 << (order + 1)) <= base + span {
                    order += 1;
                }
                self.base.free(b, order);
                b += 1 << order;
            }
        }
    }

    fn alloc_from_base(&mut self, count: u64) -> Option<Vec<u64>> {
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            match self.base.alloc(0) {
                Some(f) => out.push(f),
                None => {
                    for &f in &out {
                        self.base.free(f, 0);
                    }
                    return None;
                }
            }
        }
        Some(out)
    }

    /// Pulls one 64 MB block (or the largest block the base buddy can
    /// still supply) from Free-(1:1) into the ratio's pool. Returns
    /// `false` when the base is exhausted or the block has no usable
    /// strip.
    fn refill_pool(&mut self, ratio: NmRatio) -> bool {
        // 64 MB blocks on real geometry; on scaled-down test devices take
        // a quarter of the device per refill (at least two strips) so
        // multiple allocators can coexist.
        let scaled = (self.base.total_pages() / 4).max(2 * PAGES_PER_STRIP as u64);
        let want_order = log2_floor(PAGES_PER_64MB.min(scaled).min(self.base.total_pages()));
        let mut order = want_order;
        let base = loop {
            if let Some(b) = self.base.alloc(order) {
                break b;
            }
            if order == 0 {
                return false;
            }
            order -= 1;
        };
        let span = 1u64 << order;
        let pool = self.pools.entry((ratio.n(), ratio.m())).or_default();
        let mut usable = 0u64;
        for frame in base..base + span {
            let strip = frame / PAGES_PER_STRIP as u64;
            if !ratio.is_nouse_strip(strip) {
                pool.free.insert(frame);
                usable += 1;
            }
        }
        pool.regions.insert(
            base,
            Region {
                span,
                usable,
                free: usable,
            },
        );
        usable > 0
    }
}

fn log2_floor(v: u64) -> u8 {
    (63 - v.leading_zeros()) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_one_allocates_everything() {
        let mut a = NmAllocator::new(256);
        let frames = a.alloc_pages(NmRatio::one_one(), 256).unwrap();
        assert_eq!(frames.len(), 256);
        assert!(a.alloc_pages(NmRatio::one_one(), 1).is_none());
    }

    #[test]
    fn one_two_skips_odd_strips() {
        let mut a = NmAllocator::new(1024);
        let frames = a.alloc_pages(NmRatio::one_two(), 100).unwrap();
        for f in frames {
            let strip = f / 16;
            assert_eq!(strip % 2, 0, "frame {f} in marked strip {strip}");
        }
    }

    #[test]
    fn two_three_skips_position_one() {
        let mut a = NmAllocator::new(4096);
        let frames = a.alloc_pages(NmRatio::two_three(), 500).unwrap();
        for f in frames {
            let strip = f / 16;
            assert_ne!(strip % 3, 1, "frame {f} in marked strip {strip}");
        }
    }

    #[test]
    fn capacity_loss_matches_ratio() {
        // 4096 frames = 256 strips; (1:2) can hand out at most half.
        let mut a = NmAllocator::new(4096);
        let got = a.alloc_pages(NmRatio::one_two(), 2048);
        assert!(got.is_some());
        assert!(a.alloc_pages(NmRatio::one_two(), 1).is_none());
    }

    #[test]
    fn exhaustion_rolls_back() {
        let mut a = NmAllocator::new(64); // 4 strips; (1:2) usable = 32 frames
        assert!(a.alloc_pages(NmRatio::one_two(), 33).is_none());
        // The failed allocation must not leak frames.
        let ok = a.alloc_pages(NmRatio::one_two(), 32).unwrap();
        assert_eq!(ok.len(), 32);
    }

    #[test]
    fn free_and_reclaim_to_base() {
        let mut a = NmAllocator::new(128);
        let before = a.base_free_pages();
        let frames = a.alloc_pages(NmRatio::one_two(), 8).unwrap();
        assert!(a.base_free_pages() < before);
        a.free_pages(NmRatio::one_two(), &frames);
        // Fully free block returns to the (1:1) buddy.
        assert_eq!(a.base_free_pages(), before);
        assert_eq!(a.pool_free_pages(NmRatio::one_two()), 0);
    }

    #[test]
    fn partial_free_keeps_region_in_pool() {
        let mut a = NmAllocator::new(128);
        let frames = a.alloc_pages(NmRatio::one_two(), 8).unwrap();
        a.free_pages(NmRatio::one_two(), &frames[..4]);
        assert!(a.pool_free_pages(NmRatio::one_two()) > 0);
        // Remaining frames still valid to free afterwards.
        a.free_pages(NmRatio::one_two(), &frames[4..]);
        assert_eq!(a.pool_free_pages(NmRatio::one_two()), 0);
    }

    #[test]
    fn pools_are_independent() {
        let mut a = NmAllocator::new(8192);
        let f12 = a.alloc_pages(NmRatio::one_two(), 10).unwrap();
        let f23 = a.alloc_pages(NmRatio::two_three(), 10).unwrap();
        for f in &f12 {
            assert!(!f23.contains(f));
        }
    }

    #[test]
    fn multiple_refills_use_distinct_blocks() {
        // Device of 4 order-5 blocks; each refill grabs 32 pages.
        let mut a = NmAllocator::new(128);
        let lots = a.alloc_pages(NmRatio::one_two(), 60).unwrap();
        let mut sorted = lots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 60, "no duplicate frames");
    }

    #[test]
    fn deterministic() {
        let mut a = NmAllocator::new(2048);
        let mut b = NmAllocator::new(2048);
        assert_eq!(
            a.alloc_pages(NmRatio::two_three(), 64),
            b.alloc_pages(NmRatio::two_three(), 64)
        );
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut a = NmAllocator::new(256);
        let frames = a.alloc_pages(NmRatio::one_two(), 1).unwrap();
        a.free_pages(NmRatio::one_two(), &frames);
        a.free_pages(NmRatio::one_two(), &frames);
    }
}
