//! WD-aware DMA support (paper §4.4, "DMA support").
//!
//! DMA engines address physical memory directly and expect consecutive
//! frames, which conflicts with (n:m) marking. The paper restricts DMA
//! buffers to (1:1) or (1:2) allocations and teaches the DMA controller
//! the allocator tag: under (1:2) it skips every other strip
//! automatically when walking a physically contiguous buffer.

use crate::nm::NmRatio;
use sdpcm_pcm::geometry::PAGES_PER_STRIP;

/// The DMA controller's address-walk logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DmaController;

impl DmaController {
    /// Creates a controller.
    #[must_use]
    pub fn new() -> DmaController {
        DmaController
    }

    /// Whether a ratio is DMA-capable (the paper allows only (1:1) and
    /// (1:2) for simplicity).
    #[must_use]
    pub fn supports(&self, ratio: NmRatio) -> bool {
        ratio == NmRatio::one_one() || ratio == NmRatio::one_two()
    }

    /// Produces the physical frame sequence of a DMA transfer of
    /// `frames` pages starting at `base_frame`, under `ratio`.
    ///
    /// Under (1:1) the walk is dense. Under (1:2) the controller skips
    /// marked (odd) strips, so the transfer spans twice the physical
    /// range but touches only usable frames.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the ratio is not DMA-capable or, under (1:2),
    /// the base frame lies in a marked strip.
    pub fn walk(&self, ratio: NmRatio, base_frame: u64, frames: u64) -> Result<Vec<u64>, DmaError> {
        if !self.supports(ratio) {
            return Err(DmaError::UnsupportedRatio(ratio));
        }
        if ratio == NmRatio::one_one() {
            return Ok((base_frame..base_frame + frames).collect());
        }
        let strip_pages = PAGES_PER_STRIP as u64;
        if (base_frame / strip_pages) % 2 == 1 {
            return Err(DmaError::BaseInMarkedStrip(base_frame));
        }
        let mut out = Vec::with_capacity(frames as usize);
        let mut f = base_frame;
        while (out.len() as u64) < frames {
            out.push(f);
            f += 1;
            if (f / strip_pages) % 2 == 1 {
                f += strip_pages; // hop over the marked strip
            }
        }
        Ok(out)
    }
}

/// DMA configuration errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// The allocator ratio cannot back a DMA buffer.
    UnsupportedRatio(NmRatio),
    /// A (1:2) transfer must start in a used (even) strip.
    BaseInMarkedStrip(u64),
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::UnsupportedRatio(r) => {
                write!(f, "allocator {r} is not DMA-capable (only (1:1)/(1:2))")
            }
            DmaError::BaseInMarkedStrip(b) => {
                write!(f, "DMA base frame {b} lies in a marked strip")
            }
        }
    }
}

impl std::error::Error for DmaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_one_walk_is_dense() {
        let d = DmaController::new();
        let w = d.walk(NmRatio::one_one(), 5, 4).unwrap();
        assert_eq!(w, vec![5, 6, 7, 8]);
    }

    #[test]
    fn one_two_walk_skips_odd_strips() {
        let d = DmaController::new();
        // Strips are 16 pages; start at frame 14 (strip 0), 6 frames:
        // 14, 15, then hop strip 1 (16..31), continue at 32.
        let w = d.walk(NmRatio::one_two(), 14, 6).unwrap();
        assert_eq!(w, vec![14, 15, 32, 33, 34, 35]);
        // Every produced frame is in an even strip.
        assert!(w.iter().all(|f| (f / 16) % 2 == 0));
    }

    #[test]
    fn one_two_long_walk_stays_usable() {
        let d = DmaController::new();
        let w = d.walk(NmRatio::one_two(), 0, 100).unwrap();
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|f| (f / 16) % 2 == 0));
        assert!(w.windows(2).all(|p| p[0] < p[1]), "monotone");
    }

    #[test]
    fn unsupported_ratio_rejected() {
        let d = DmaController::new();
        assert!(!d.supports(NmRatio::two_three()));
        assert_eq!(
            d.walk(NmRatio::two_three(), 0, 4),
            Err(DmaError::UnsupportedRatio(NmRatio::two_three()))
        );
    }

    #[test]
    fn marked_base_rejected() {
        let d = DmaController::new();
        assert_eq!(
            d.walk(NmRatio::one_two(), 17, 4),
            Err(DmaError::BaseInMarkedStrip(17))
        );
    }

    #[test]
    fn errors_display() {
        let e = DmaError::UnsupportedRatio(NmRatio::two_three());
        assert!(e.to_string().contains("(2:3)"));
        assert!(DmaError::BaseInMarkedStrip(9).to_string().contains('9'));
    }
}
