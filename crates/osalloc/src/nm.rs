//! The (n:m) allocation ratio and the strip-marking rule.
//!
//! An `(n:m)` allocator (0 < n ≤ m) uses `n` of every `m` consecutive
//! device strips and marks the other `m−n` as no-use. Marking is applied
//! independently within each 64 MB block (paper §4.4): groups of `m`
//! strips tile the block from its first strip and never span a 64 MB
//! boundary (the trailing partial group is marked by the same positional
//! rule).
//!
//! Marked positions within a group: the paper marks position 1 for its
//! `m−n = 1` ratios — "(2:3) marks the 2nd strip of each 3-strip group",
//! "(1:2) uses every other device strip" — which we generalize to
//! `m−n` positions spread evenly starting at position 1:
//! `{ 1 + ⌊i·m/(m−n)⌋ | i ∈ 0..m−n }`.

use sdpcm_pcm::geometry::STRIPS_PER_64MB;

/// A rejected (n:m) pair: the constructor requires `0 < n ≤ m ≤ 16`
/// (the page-table tag is 4 bits, supporting 16 allocators, §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRatio {
    /// The rejected numerator.
    pub n: u8,
    /// The rejected denominator.
    pub m: u8,
}

impl std::fmt::Display for InvalidRatio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid allocation ratio ({}:{}): require 0 < n <= m <= 16",
            self.n, self.m
        )
    }
}

impl std::error::Error for InvalidRatio {}

/// An (n:m) allocation ratio.
///
/// # Examples
///
/// ```
/// use sdpcm_osalloc::NmRatio;
///
/// let r = NmRatio::new(2, 3);
/// assert!(!r.is_nouse_strip(0));
/// assert!(r.is_nouse_strip(1)); // the 2nd strip of each group
/// assert!(!r.is_nouse_strip(2));
/// assert!((r.capacity_fraction() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NmRatio {
    n: u8,
    m: u8,
}

impl NmRatio {
    /// Creates an `(n:m)` ratio.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n ≤ m ≤ 16` (the page-table tag is 4 bits,
    /// supporting 16 allocators, §6.2).
    #[must_use]
    pub fn new(n: u8, m: u8) -> NmRatio {
        assert!(n > 0 && n <= m && m <= 16, "require 0 < n <= m <= 16");
        NmRatio { n, m }
    }

    /// Fallible [`NmRatio::new`] for ratios taken from configuration
    /// rather than literals: rejects the pair instead of panicking.
    pub fn try_new(n: u8, m: u8) -> Result<NmRatio, InvalidRatio> {
        if n > 0 && n <= m && m <= 16 {
            Ok(NmRatio { n, m })
        } else {
            Err(InvalidRatio { n, m })
        }
    }

    /// The default (1:1) allocator — every strip used, no marking.
    #[must_use]
    pub fn one_one() -> NmRatio {
        NmRatio::new(1, 1)
    }

    /// (1:2): every other strip marked; eliminates VnC entirely.
    #[must_use]
    pub fn one_two() -> NmRatio {
        NmRatio::new(1, 2)
    }

    /// (2:3): one adjacent line per write needs VnC.
    #[must_use]
    pub fn two_three() -> NmRatio {
        NmRatio::new(2, 3)
    }

    /// (3:4).
    #[must_use]
    pub fn three_four() -> NmRatio {
        NmRatio::new(3, 4)
    }

    /// Numerator `n` (used strips per group).
    #[must_use]
    pub fn n(self) -> u8 {
        self.n
    }

    /// Denominator `m` (group size in strips).
    #[must_use]
    pub fn m(self) -> u8 {
        self.m
    }

    /// Usable fraction of capacity under this allocator.
    #[must_use]
    pub fn capacity_fraction(self) -> f64 {
        f64::from(self.n) / f64::from(self.m)
    }

    /// Whether position `p ∈ 0..m` within a group is marked no-use.
    #[must_use]
    pub fn is_marked_position(self, p: u8) -> bool {
        debug_assert!(p < self.m);
        let k = self.m - self.n;
        (0..k).any(|i| {
            let pos = 1 + (u16::from(i) * u16::from(self.m)) / u16::from(k.max(1));
            pos as u8 % self.m == p
        }) && k > 0
    }

    /// Position of a strip within its group, with groups restarting at
    /// every 64 MB block boundary.
    #[must_use]
    pub fn position_of(self, strip: u64) -> u8 {
        let in_block = strip % STRIPS_PER_64MB;
        (in_block % u64::from(self.m)) as u8
    }

    /// Whether a device strip is marked no-use under this allocator.
    #[must_use]
    pub fn is_nouse_strip(self, strip: u64) -> bool {
        self.is_marked_position(self.position_of(strip))
    }

    /// The 4-bit allocator tag carried through the page table and TLB.
    /// Tags enumerate the supported allocators; (1:1) is tag 0.
    #[must_use]
    pub fn tag(self) -> u8 {
        match (self.n, self.m) {
            (1, 1) => 0,
            (1, 2) => 1,
            (2, 3) => 2,
            (3, 4) => 3,
            (n, m) => (((n as usize * 31 + m as usize) % 12) + 4) as u8,
        }
    }
}

impl Default for NmRatio {
    fn default() -> Self {
        NmRatio::one_one()
    }
}

impl std::fmt::Display for NmRatio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}:{})", self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_one_marks_nothing() {
        let r = NmRatio::one_one();
        for s in 0..4096 {
            assert!(!r.is_nouse_strip(s));
        }
    }

    #[test]
    fn one_two_marks_odd_strips() {
        let r = NmRatio::one_two();
        for s in 0..2048u64 {
            assert_eq!(r.is_nouse_strip(s), s % 2 == 1, "strip {s}");
        }
    }

    #[test]
    fn two_three_marks_position_one() {
        // Figure 9: "stripes with stripe_index mod 3 = 1 are marked".
        let r = NmRatio::two_three();
        for s in 0..999u64 {
            assert_eq!(r.is_nouse_strip(s), s % 3 == 1, "strip {s}");
        }
    }

    #[test]
    fn three_four_marks_position_one() {
        let r = NmRatio::three_four();
        for s in 0..1000u64 {
            assert_eq!(r.is_nouse_strip(s), s % 4 == 1, "strip {s}");
        }
    }

    #[test]
    fn marked_count_per_group_is_m_minus_n() {
        for (n, m) in [(1u8, 2u8), (2, 3), (3, 4), (1, 3), (1, 4), (2, 4), (5, 8)] {
            let r = NmRatio::new(n, m);
            let marked = (0..m).filter(|&p| r.is_marked_position(p)).count();
            assert_eq!(marked, usize::from(m - n), "({n}:{m})");
        }
    }

    #[test]
    fn groups_restart_at_64mb_blocks() {
        // 1024 strips per 64MB block; 1024 % 3 = 1, so with (2:3) the
        // group phase resets: strip 1024 is position 0 (used), even
        // though 1024 % 3 == 1.
        let r = NmRatio::two_three();
        assert_eq!(STRIPS_PER_64MB, 1024);
        assert!(!r.is_nouse_strip(1024), "first strip of block 2 is used");
        assert!(r.is_nouse_strip(1025), "position 1 of block 2 is marked");
    }

    #[test]
    fn capacity_fractions() {
        assert_eq!(NmRatio::one_one().capacity_fraction(), 1.0);
        assert_eq!(NmRatio::one_two().capacity_fraction(), 0.5);
        assert!((NmRatio::two_three().capacity_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(NmRatio::three_four().capacity_fraction(), 0.75);
    }

    #[test]
    fn tags_distinct_for_paper_ratios() {
        let tags = [
            NmRatio::one_one().tag(),
            NmRatio::one_two().tag(),
            NmRatio::two_three().tag(),
            NmRatio::three_four().tag(),
        ];
        let mut sorted = tags.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(tags.iter().all(|&t| t < 16), "tags fit in 4 bits");
    }

    #[test]
    fn display() {
        assert_eq!(NmRatio::two_three().to_string(), "(2:3)");
    }

    #[test]
    fn try_new_rejects_bad_pairs() {
        assert_eq!(NmRatio::try_new(2, 3), Ok(NmRatio::two_three()));
        assert_eq!(NmRatio::try_new(0, 2), Err(InvalidRatio { n: 0, m: 2 }));
        assert_eq!(NmRatio::try_new(3, 2), Err(InvalidRatio { n: 3, m: 2 }));
        assert_eq!(NmRatio::try_new(5, 17), Err(InvalidRatio { n: 5, m: 17 }));
        let msg = NmRatio::try_new(3, 2).unwrap_err().to_string();
        assert!(msg.contains("(3:2)"));
    }

    #[test]
    #[should_panic(expected = "0 < n <= m")]
    fn zero_n_panics() {
        let _ = NmRatio::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "0 < n <= m")]
    fn n_bigger_than_m_panics() {
        let _ = NmRatio::new(3, 2);
    }
}
