//! Vendored minimal benchmark-harness shim.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This stand-in keeps the workspace's
//! `[[bench]]` targets compiling and runnable (`cargo bench`): it
//! supports `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`/`bench_function`/`finish`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple — each benchmark runs a small
//! fixed number of timed iterations and prints the mean wall-clock time.
//! No warm-up, outlier analysis, or HTML reports.

use std::time::Instant;

/// Runs the closure under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Times `routine`, keeping its return value live.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }

    /// Mean wall-clock nanoseconds per iteration of the last
    /// [`Bencher::iter`] call.
    #[must_use]
    pub fn mean_nanos(&self) -> u128 {
        self.total_nanos / u128::from(self.samples.max(1))
    }

    fn report(&self, name: &str) {
        println!(
            "bench {name:<40} {:>12} ns/iter ({} samples)",
            self.mean_nanos(),
            self.samples
        );
    }
}

/// A programmatic timing result, for harnesses that record measurements
/// (e.g. into a JSON perf log) instead of printing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Timed iterations.
    pub samples: u64,
    /// Total wall-clock nanoseconds across all iterations.
    pub total_nanos: u128,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    #[must_use]
    pub fn mean_nanos(&self) -> u128 {
        self.total_nanos / u128::from(self.samples.max(1))
    }

    /// Mean seconds per iteration.
    #[must_use]
    pub fn mean_secs(&self) -> f64 {
        self.mean_nanos() as f64 / 1e9
    }

    /// Total seconds across all iterations.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }
}

/// Times `routine` over `samples` iterations and returns the
/// [`Measurement`] — the programmatic counterpart of
/// [`Criterion::bench_function`], sharing its [`Bencher`] timing loop.
pub fn time_function<T, F: FnMut() -> T>(samples: u64, routine: F) -> Measurement {
    let mut b = Bencher {
        samples: samples.max(1),
        total_nanos: 0,
    };
    b.iter(routine);
    Measurement {
        samples: b.samples,
        total_nanos: b.total_nanos,
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            total_nanos: 0,
        };
        f(&mut b);
        b.report(name.as_ref());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            total_nanos: 0,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name.as_ref()));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 10);
    }

    #[test]
    fn time_function_counts_and_measures() {
        let mut calls = 0u64;
        let m = time_function(7, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(m.samples, 7);
        assert_eq!(m.mean_nanos(), m.total_nanos / 7);
        assert!(m.total_secs() >= 0.0);
    }

    #[test]
    fn group_sample_size_is_honoured() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("n", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 3);
    }
}
