//! Capture-once/replay-many reference traces.
//!
//! Every figure in the paper compares 5–7 schemes on the *same*
//! workload: the post-cache reference stream — per-core order of line
//! addresses, read/write kinds, instruction gaps and write payloads —
//! depends only on `(workload, seed, refs_per_core)`, never on the PCM
//! scheme, which only affects *timing*. A [`RefTrace`] is the compact,
//! immutable record of that stream, captured once and shared (via
//! `Arc`) across every scheme cell of a sweep.
//!
//! # Why the stream is scheme-independent
//!
//! Three properties carry the determinism contract:
//!
//! * Per-core RNG streams. Addresses, kinds, gaps and payload toggles
//!   are drawn from RNGs derived per core; a core's draw order is its
//!   program order, which no scheme can perturb (schemes change *when*
//!   a reference issues, never *whether* or *in what per-core order*).
//! * Virtual addressing. Records hold `(vpage, slot)`; the physical
//!   address depends on the scheme's allocation ratio and is translated
//!   at replay time, per cell.
//! * Payloads as toggle masks. A write's payload is "the line's newest
//!   architectural value XOR a recorded toggle mask". The architectural
//!   value evolves in per-core program order (cores own disjoint
//!   address spaces), so both the inline and the replay path compute
//!   bit-identical payloads at issue time without recording any
//!   scheme-dependent device state.
//!
//! [`RefSource`] is the single front end the full-system simulator
//! pulls from: `Live` draws from the generators (and is what capture
//! drains), `Replay` walks a captured trace. Both yield byte-identical
//! [`TraceRef`] sequences, which is what the golden replay tests pin.

use std::sync::Arc;

use sdpcm_engine::SimRng;

use crate::gen::TraceGenerator;
use crate::wire::{Reader, WireError, Writer};
use crate::workload::Workload;

/// Schema version of the on-disk trace format. Bump on any change to
/// the record layout *or* to the generator/payload draw semantics —
/// a stale file must never replay under new semantics.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Words in a 512-bit line toggle mask.
pub const MASK_WORDS: usize = 8;

/// XOR toggle mask over one 64 B line.
pub type ToggleMask = [u64; MASK_WORDS];

/// One recorded post-cache reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRef {
    /// Instructions since the core's previous reference.
    pub gap: u64,
    /// Virtual page within the core's address space.
    pub vpage: u64,
    /// 64 B line slot within the page.
    pub slot: u8,
    /// `true` for a write-back to PCM.
    pub is_write: bool,
    /// For writes: payload = newest architectural value XOR this mask
    /// (all-zero for reads).
    pub mask: ToggleMask,
}

/// Identity of a captured trace — the capture inputs that fully
/// determine its contents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceMeta {
    /// Workload display name (eight copies of one benchmark, or a mix).
    pub workload: String,
    /// Master seed.
    pub seed: u64,
    /// References captured per core.
    pub refs_per_core: u64,
}

impl TraceMeta {
    /// Content hash of `(workload, seed, refs_per_core, schema)` — the
    /// on-disk cache key. Stable across runs and platforms.
    #[must_use]
    pub fn content_key(&self) -> u64 {
        let mut w = Writer::new();
        w.put_u32(TRACE_SCHEMA_VERSION);
        w.put_str(&self.workload);
        w.put_u64(self.seed);
        w.put_u64(self.refs_per_core);
        crate::wire::fnv1a(&w.finish())
    }
}

/// An immutable captured reference stream (one `Vec<TraceRef>` per
/// core), shared across sweep cells behind an `Arc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefTrace {
    /// Capture identity.
    pub meta: TraceMeta,
    /// Per-core reference sequences, in program order.
    pub per_core: Vec<Vec<TraceRef>>,
}

impl RefTrace {
    /// Captures the post-cache stream of `workload` by draining the
    /// live generators — the PCM backend is never built. Mirrors the
    /// full-system simulator's RNG derivation chain exactly, so a
    /// `Live` source and a `Replay` of this capture yield identical
    /// reference sequences.
    #[must_use]
    pub fn capture(workload: &Workload, seed: u64, refs_per_core: u64) -> RefTrace {
        let mut rng = SimRng::from_seed_label(seed, "system");
        // The live system derives its controller stream first; consume
        // the same draw to keep the chain aligned.
        let _ = rng.derive("ctrl");
        let sources = RefSource::live_sources(workload, &mut rng);
        let per_core = sources
            .into_iter()
            .map(|mut src| (0..refs_per_core).map(|_| src.next_ref()).collect())
            .collect();
        RefTrace {
            meta: TraceMeta {
                workload: workload.name().to_owned(),
                seed,
                refs_per_core,
            },
            per_core,
        }
    }

    /// Total references across all cores.
    #[must_use]
    pub fn total_refs(&self) -> u64 {
        self.per_core.iter().map(|c| c.len() as u64).sum()
    }

    /// Serializes to the versioned on-disk format (magic, schema,
    /// meta, per-core records, trailing FNV-1a digest).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(u32::from_le_bytes(*b"SDPT"));
        w.put_u32(TRACE_SCHEMA_VERSION);
        w.put_str(&self.meta.workload);
        w.put_u64(self.meta.seed);
        w.put_u64(self.meta.refs_per_core);
        w.put_u32(self.per_core.len() as u32);
        for core in &self.per_core {
            w.put_u64(core.len() as u64);
            for r in core {
                w.put_u64(r.gap);
                w.put_u64(r.vpage);
                w.put_u8(r.slot);
                w.put_u8(u8::from(r.is_write));
                if r.is_write {
                    for word in r.mask {
                        w.put_u64(word);
                    }
                }
            }
        }
        w.finish()
    }

    /// Deserializes a trace file, rejecting corruption (bad digest,
    /// truncation, trailing garbage) and schema mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<RefTrace, WireError> {
        let mut r = Reader::checked(bytes)?;
        if r.get_u32()? != u32::from_le_bytes(*b"SDPT") {
            return Err(WireError::WrongSchema);
        }
        if r.get_u32()? != TRACE_SCHEMA_VERSION {
            return Err(WireError::WrongSchema);
        }
        let workload = r.get_str()?;
        let seed = r.get_u64()?;
        let refs_per_core = r.get_u64()?;
        let cores = r.get_u32()? as usize;
        if cores > 1024 {
            return Err(WireError::Malformed);
        }
        let mut per_core = Vec::with_capacity(cores);
        for _ in 0..cores {
            let n = r.get_u64()? as usize;
            if n > (1 << 32) {
                return Err(WireError::Malformed);
            }
            let mut refs = Vec::with_capacity(n);
            for _ in 0..n {
                let gap = r.get_u64()?;
                let vpage = r.get_u64()?;
                let slot = r.get_u8()?;
                let is_write = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed),
                };
                let mut mask = [0u64; MASK_WORDS];
                if is_write {
                    for word in &mut mask {
                        *word = r.get_u64()?;
                    }
                }
                refs.push(TraceRef {
                    gap,
                    vpage,
                    slot,
                    is_write,
                    mask,
                });
            }
            per_core.push(refs);
        }
        if !r.at_end() {
            return Err(WireError::Malformed);
        }
        Ok(RefTrace {
            meta: TraceMeta {
                workload,
                seed,
                refs_per_core,
            },
            per_core,
        })
    }
}

/// A per-core reference front end: live generation or trace replay.
/// The full-system simulator pulls from this uniformly, so the replay
/// path shares every line of issue/blocking logic with inline
/// generation — bit-identity is structural, not coincidental.
#[derive(Debug)]
pub enum RefSource {
    /// Draw from the generator; payload toggles come from a per-core
    /// mask stream.
    Live {
        /// The core's reference generator.
        gen: TraceGenerator,
        /// The core's payload-toggle stream.
        mask_rng: SimRng,
    },
    /// Walk a captured trace.
    Replay {
        /// The shared capture.
        trace: Arc<RefTrace>,
        /// Which core's sequence to walk.
        core: usize,
        /// Next record index.
        pos: usize,
    },
}

impl RefSource {
    /// Builds the eight live per-core sources from the system's parent
    /// RNG (after its controller stream has been derived). Capture uses
    /// the same constructor, so the derive chain cannot drift between
    /// the two paths.
    #[must_use]
    pub fn live_sources(workload: &Workload, rng: &mut SimRng) -> Vec<RefSource> {
        let gens = workload.generators(rng.derive("traces"));
        let mut payload_root = rng.derive("payloads");
        gens.into_iter()
            .enumerate()
            .map(|(core, gen)| RefSource::Live {
                gen,
                mask_rng: payload_root.derive(&format!("core{core}")),
            })
            .collect()
    }

    /// Builds per-core replay sources over a shared capture.
    #[must_use]
    pub fn replay_sources(trace: &Arc<RefTrace>) -> Vec<RefSource> {
        (0..trace.per_core.len())
            .map(|core| RefSource::Replay {
                trace: Arc::clone(trace),
                core,
                pos: 0,
            })
            .collect()
    }

    /// The next reference of this core.
    ///
    /// # Panics
    ///
    /// Panics when a replay source is pulled past the end of its
    /// recorded sequence (the consumer's quota must match the capture).
    pub fn next_ref(&mut self) -> TraceRef {
        match self {
            RefSource::Live { gen, mask_rng } => {
                let r = gen.next_ref();
                let mut mask = [0u64; MASK_WORDS];
                if r.is_write {
                    // `flip_bits` toggle draws; duplicate positions
                    // cancel, exactly like repeated in-place bit flips.
                    for _ in 0..r.flip_bits {
                        let bit = mask_rng.index(512);
                        mask[bit / 64] ^= 1u64 << (bit % 64);
                    }
                }
                TraceRef {
                    gap: r.gap,
                    vpage: r.vpage,
                    slot: r.slot,
                    is_write: r.is_write,
                    mask,
                }
            }
            RefSource::Replay { trace, core, pos } => {
                let refs = &trace.per_core[*core];
                let r = refs
                    .get(*pos)
                    .copied()
                    .unwrap_or_else(|| panic!("core {core} replay exhausted at {pos}"));
                *pos += 1;
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::BenchKind;

    fn capture_small() -> RefTrace {
        RefTrace::capture(&Workload::homogeneous(BenchKind::Mcf), 0x5d9c, 200)
    }

    #[test]
    fn live_and_replay_sources_agree() {
        let workload = Workload::homogeneous(BenchKind::Lbm);
        let trace = Arc::new(RefTrace::capture(&workload, 42, 300));
        let mut rng = SimRng::from_seed_label(42, "system");
        let _ = rng.derive("ctrl");
        let mut live = RefSource::live_sources(&workload, &mut rng);
        let mut replay = RefSource::replay_sources(&trace);
        for core in 0..live.len() {
            for i in 0..300 {
                let a = live[core].next_ref();
                let b = replay[core].next_ref();
                assert_eq!(a, b, "core {core} ref {i}");
            }
        }
    }

    #[test]
    fn capture_is_deterministic_and_seed_sensitive() {
        let a = capture_small();
        let b = capture_small();
        assert_eq!(a, b);
        let c = RefTrace::capture(&Workload::homogeneous(BenchKind::Mcf), 0x5d9d, 200);
        assert_ne!(a, c);
        assert_ne!(a.meta.content_key(), c.meta.content_key());
    }

    #[test]
    fn masks_zero_for_reads_nonzero_for_typical_writes() {
        let t = capture_small();
        let mut writes = 0u64;
        for r in t.per_core.iter().flatten() {
            if r.is_write {
                writes += 1;
                assert!(
                    r.mask.iter().any(|&w| w != 0),
                    "a multi-bit store should toggle at least one bit"
                );
            } else {
                assert_eq!(r.mask, [0u64; MASK_WORDS]);
            }
        }
        assert!(writes > 0);
    }

    #[test]
    fn serialization_round_trips() {
        let t = capture_small();
        let bytes = t.to_bytes();
        let back = RefTrace::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn corruption_and_schema_drift_are_rejected() {
        let t = capture_small();
        let mut bytes = t.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            RefTrace::from_bytes(&bytes),
            Err(WireError::DigestMismatch)
        ));
        // A stale schema version re-digested to pass the integrity check
        // must still be rejected.
        let mut stale = t.to_bytes();
        stale.truncate(stale.len() - 8);
        stale[4..8].copy_from_slice(&(TRACE_SCHEMA_VERSION + 1).to_le_bytes());
        let digest = crate::wire::fnv1a(&stale);
        stale.extend_from_slice(&digest.to_le_bytes());
        assert!(matches!(
            RefTrace::from_bytes(&stale),
            Err(WireError::WrongSchema)
        ));
    }

    #[test]
    fn replay_past_end_panics() {
        let trace = Arc::new(RefTrace::capture(
            &Workload::homogeneous(BenchKind::Wrf),
            7,
            5,
        ));
        let mut src = RefSource::replay_sources(&trace);
        for _ in 0..5 {
            let _ = src[0].next_ref();
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| src[0].next_ref()));
        assert!(r.is_err());
    }
}
