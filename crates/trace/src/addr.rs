//! Address-stream generators.
//!
//! Each benchmark walks its (virtual, per-core) working set with one of
//! four spatial patterns. Streams address at line granularity: a position
//! is `(virtual page, line slot within the page)` with 64 lines per page.

use sdpcm_engine::SimRng;

/// Lines per 4 KB page.
pub const LINES_PER_PAGE: u64 = 64;

/// Spatial access pattern of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Sequential sweep; jumps to a random position every `run_lines`.
    Sequential {
        /// Lines touched consecutively before the next jump.
        run_lines: u32,
    },
    /// Fixed-stride walk (stencil-style), wrapping around the working set.
    Strided {
        /// Stride between consecutive references, in lines.
        stride_lines: u32,
    },
    /// Uniformly random lines (pointer chasing).
    Random,
    /// A hot subset absorbs most references.
    HotCold {
        /// Fraction of the working set that is hot.
        hot_fraction: f64,
        /// Probability a reference goes to the hot subset.
        hot_probability: f64,
    },
}

/// A stateful line-address stream over `ws_pages` virtual pages.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::SimRng;
/// use sdpcm_trace::addr::{AccessPattern, AddressStream};
///
/// let rng = SimRng::from_seed(9);
/// let mut s = AddressStream::new(AccessPattern::Random, 16, rng);
/// let (page, slot) = s.next_line();
/// assert!(page < 16 && slot < 64);
/// ```
#[derive(Debug, Clone)]
pub struct AddressStream {
    pattern: AccessPattern,
    ws_pages: u64,
    rng: SimRng,
    cursor: u64,
    run_left: u32,
}

impl AddressStream {
    /// Creates a stream over `ws_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `ws_pages` is zero or pattern parameters are invalid.
    #[must_use]
    pub fn new(pattern: AccessPattern, ws_pages: u64, mut rng: SimRng) -> AddressStream {
        assert!(ws_pages > 0, "working set must be non-empty");
        if let AccessPattern::HotCold {
            hot_fraction,
            hot_probability,
        } = pattern
        {
            assert!(
                hot_fraction > 0.0 && hot_fraction <= 1.0,
                "hot fraction must be in (0,1]"
            );
            assert!(
                (0.0..=1.0).contains(&hot_probability),
                "hot probability must be in [0,1]"
            );
        }
        if let AccessPattern::Sequential { run_lines } = pattern {
            assert!(run_lines > 0, "run length must be positive");
        }
        if let AccessPattern::Strided { stride_lines } = pattern {
            assert!(stride_lines > 0, "stride must be positive");
        }
        let total_lines = ws_pages * LINES_PER_PAGE;
        let cursor = rng.below(total_lines);
        AddressStream {
            pattern,
            ws_pages,
            rng,
            cursor,
            run_left: 0,
        }
    }

    /// Total addressable lines in the working set.
    #[must_use]
    pub fn total_lines(&self) -> u64 {
        self.ws_pages * LINES_PER_PAGE
    }

    /// Produces the next `(virtual page, line slot)` reference.
    pub fn next_line(&mut self) -> (u64, u8) {
        let total = self.total_lines();
        let line = match self.pattern {
            AccessPattern::Sequential { run_lines } => {
                if self.run_left == 0 {
                    self.cursor = self.rng.below(total);
                    self.run_left = run_lines;
                }
                self.run_left -= 1;
                let l = self.cursor;
                self.cursor = (self.cursor + 1) % total;
                l
            }
            AccessPattern::Strided { stride_lines } => {
                let l = self.cursor;
                self.cursor = (self.cursor + u64::from(stride_lines)) % total;
                l
            }
            AccessPattern::Random => self.rng.below(total),
            AccessPattern::HotCold {
                hot_fraction,
                hot_probability,
            } => {
                let hot_lines = ((total as f64 * hot_fraction) as u64).max(1);
                if self.rng.chance(hot_probability) {
                    self.rng.below(hot_lines)
                } else {
                    hot_lines + self.rng.below((total - hot_lines).max(1)) % total.max(1)
                }
            }
        };
        let line = line % total;
        ((line / LINES_PER_PAGE), (line % LINES_PER_PAGE) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(p: AccessPattern, pages: u64) -> AddressStream {
        AddressStream::new(p, pages, SimRng::from_seed_label(3, "addr-test"))
    }

    #[test]
    fn all_patterns_stay_in_bounds() {
        let patterns = [
            AccessPattern::Sequential { run_lines: 10 },
            AccessPattern::Strided { stride_lines: 7 },
            AccessPattern::Random,
            AccessPattern::HotCold {
                hot_fraction: 0.1,
                hot_probability: 0.9,
            },
        ];
        for p in patterns {
            let mut s = stream(p, 8);
            for _ in 0..10_000 {
                let (page, slot) = s.next_line();
                assert!(page < 8);
                assert!(u64::from(slot) < LINES_PER_PAGE);
            }
        }
    }

    #[test]
    fn sequential_runs_are_consecutive() {
        let mut s = stream(AccessPattern::Sequential { run_lines: 100 }, 16);
        let (p0, s0) = s.next_line();
        let first = p0 * LINES_PER_PAGE + u64::from(s0);
        for i in 1..50u64 {
            let (p, sl) = s.next_line();
            let line = p * LINES_PER_PAGE + u64::from(sl);
            assert_eq!(line, (first + i) % s.total_lines());
        }
    }

    #[test]
    fn strided_walk_has_fixed_stride() {
        let mut s = stream(AccessPattern::Strided { stride_lines: 5 }, 4);
        let mut last = None;
        for _ in 0..100 {
            let (p, sl) = s.next_line();
            let line = p * LINES_PER_PAGE + u64::from(sl);
            if let Some(prev) = last {
                assert_eq!(line, (prev + 5) % s.total_lines());
            }
            last = Some(line);
        }
    }

    #[test]
    fn hotcold_prefers_hot_subset() {
        let mut s = stream(
            AccessPattern::HotCold {
                hot_fraction: 0.1,
                hot_probability: 0.9,
            },
            100,
        );
        let hot_lines = (s.total_lines() as f64 * 0.1) as u64;
        let mut hot_hits = 0;
        let n = 20_000;
        for _ in 0..n {
            let (p, sl) = s.next_line();
            if p * LINES_PER_PAGE + u64::from(sl) < hot_lines {
                hot_hits += 1;
            }
        }
        let rate = f64::from(hot_hits) / f64::from(n);
        assert!(rate > 0.85, "hot rate={rate}");
    }

    #[test]
    fn random_covers_the_working_set() {
        let mut s = stream(AccessPattern::Random, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50_000 {
            seen.insert(s.next_line());
        }
        // 4 pages × 64 lines = 256 distinct positions; random should
        // reach nearly all of them.
        assert!(seen.len() > 250, "covered {}", seen.len());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_working_set_panics() {
        let _ = stream(AccessPattern::Random, 0);
    }
}
