//! Per-benchmark workload profiles (paper Table 3).
//!
//! RPKI/WPKI (main-memory reads/writes per thousand instructions) are
//! copied verbatim from Table 3. The remaining knobs — access pattern,
//! working-set size, and differential-write size — are not published;
//! they are chosen from the programs' well-known behaviour (mcf:
//! pointer-chasing over a large graph; lbm/STREAM: streaming sweeps;
//! gemsFDTD: stencil updates that change few mantissa bits per store) and
//! documented here. Working sets are scaled down so that a full 9-workload
//! × 7-scheme sweep fits in host memory; the schemes under study react to
//! *relative* intensity and locality class, not absolute footprint.

use crate::addr::AccessPattern;

/// The simulated programs (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchKind {
    /// SPEC2006 410.bwaves — read-heavy streaming.
    Bwaves,
    /// SPEC2006 459.GemsFDTD — stencil; few bits change per write.
    GemsFdtd,
    /// SPEC2006 470.lbm — streaming, write-intensive.
    Lbm,
    /// SPEC2006 437.leslie3d — low memory intensity, strided.
    Leslie3d,
    /// SPEC2006 429.mcf — the most memory-intensive: random pointer
    /// chasing, read and write heavy.
    Mcf,
    /// SPEC2006 481.wrf — nearly cache-resident.
    Wrf,
    /// SPEC2006 483.xalancbmk — nearly cache-resident.
    Xalan,
    /// SPEC2006 434.zeusmp — moderate, strided.
    Zeusmp,
    /// STREAM copy/scale/add/triad — pure sequential sweeps.
    Stream,
}

impl BenchKind {
    /// All benchmarks in the paper's figure order.
    #[must_use]
    pub fn all() -> [BenchKind; 9] {
        [
            BenchKind::Bwaves,
            BenchKind::GemsFdtd,
            BenchKind::Lbm,
            BenchKind::Leslie3d,
            BenchKind::Mcf,
            BenchKind::Wrf,
            BenchKind::Xalan,
            BenchKind::Zeusmp,
            BenchKind::Stream,
        ]
    }

    /// The display name used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BenchKind::Bwaves => "bwaves",
            BenchKind::GemsFdtd => "gemsFDTD",
            BenchKind::Lbm => "lbm",
            BenchKind::Leslie3d => "leslie3d",
            BenchKind::Mcf => "mcf",
            BenchKind::Wrf => "wrf",
            BenchKind::Xalan => "xalan",
            BenchKind::Zeusmp => "zeusmp",
            BenchKind::Stream => "stream",
        }
    }

    /// The calibrated profile for this benchmark.
    #[must_use]
    pub fn profile(self) -> BenchmarkProfile {
        match self {
            BenchKind::Bwaves => BenchmarkProfile {
                kind: self,
                rpki: 17.45,
                wpki: 0.47,
                ws_pages: 2048,
                pattern: AccessPattern::Sequential { run_lines: 64 },
                write_flip_bits_mean: 64.0,
            },
            BenchKind::GemsFdtd => BenchmarkProfile {
                kind: self,
                rpki: 9.62,
                wpki: 6.67,
                ws_pages: 1536,
                pattern: AccessPattern::Strided { stride_lines: 8 },
                // §6.4: "gemsFDTD changes less bits per write, leading to
                // fewer WD errors".
                write_flip_bits_mean: 12.0,
            },
            BenchKind::Lbm => BenchmarkProfile {
                kind: self,
                rpki: 14.59,
                wpki: 7.29,
                ws_pages: 3072,
                pattern: AccessPattern::Sequential { run_lines: 128 },
                write_flip_bits_mean: 72.0,
            },
            BenchKind::Leslie3d => BenchmarkProfile {
                kind: self,
                rpki: 2.39,
                wpki: 0.04,
                ws_pages: 1024,
                pattern: AccessPattern::Strided { stride_lines: 16 },
                write_flip_bits_mean: 56.0,
            },
            BenchKind::Mcf => BenchmarkProfile {
                kind: self,
                rpki: 22.38,
                wpki: 20.47,
                ws_pages: 4096,
                pattern: AccessPattern::Random,
                write_flip_bits_mean: 80.0,
            },
            BenchKind::Wrf => BenchmarkProfile {
                kind: self,
                rpki: 0.14,
                wpki: 0.02,
                ws_pages: 256,
                pattern: AccessPattern::HotCold {
                    hot_fraction: 0.125,
                    hot_probability: 0.8,
                },
                write_flip_bits_mean: 44.0,
            },
            BenchKind::Xalan => BenchmarkProfile {
                kind: self,
                rpki: 0.13,
                wpki: 0.13,
                ws_pages: 512,
                pattern: AccessPattern::HotCold {
                    hot_fraction: 0.25,
                    hot_probability: 0.7,
                },
                write_flip_bits_mean: 48.0,
            },
            BenchKind::Zeusmp => BenchmarkProfile {
                kind: self,
                rpki: 4.11,
                wpki: 3.36,
                ws_pages: 1024,
                pattern: AccessPattern::Strided { stride_lines: 4 },
                write_flip_bits_mean: 60.0,
            },
            BenchKind::Stream => BenchmarkProfile {
                kind: self,
                rpki: 2.32,
                wpki: 2.32,
                ws_pages: 2048,
                pattern: AccessPattern::Sequential { run_lines: 256 },
                write_flip_bits_mean: 96.0,
            },
        }
    }
}

/// The calibrated statistical profile of one program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Which program this profiles.
    pub kind: BenchKind,
    /// Main-memory reads per thousand instructions (Table 3).
    pub rpki: f64,
    /// Main-memory writes per thousand instructions (Table 3).
    pub wpki: f64,
    /// Scaled per-core working set, in 4 KB pages.
    pub ws_pages: u64,
    /// Spatial access pattern.
    pub pattern: AccessPattern,
    /// Mean bits flipped by one 64 B line write (differential write size).
    pub write_flip_bits_mean: f64,
}

impl BenchmarkProfile {
    /// Total main-memory references per thousand instructions.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        self.rpki + self.wpki
    }

    /// Fraction of references that are writes.
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        if self.mpki() == 0.0 {
            0.0
        } else {
            self.wpki / self.mpki()
        }
    }

    /// Mean instruction gap between consecutive main-memory references
    /// (≈ CPU cycles on the 1-CPI in-order cores of Table 2).
    #[must_use]
    pub fn mean_gap_insns(&self) -> f64 {
        1000.0 / self.mpki()
    }

    /// Whether the paper classes this program as memory-intensive
    /// (lbm, mcf, zeusmp and gemsFDTD are called out in §6.3/§6.5).
    #[must_use]
    pub fn memory_intensive(&self) -> bool {
        self.mpki() >= 7.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_exact() {
        let m = BenchKind::Mcf.profile();
        assert_eq!(m.rpki, 22.38);
        assert_eq!(m.wpki, 20.47);
        let g = BenchKind::GemsFdtd.profile();
        assert_eq!(g.rpki, 9.62);
        assert_eq!(g.wpki, 6.67);
        let s = BenchKind::Stream.profile();
        assert_eq!(s.rpki, 2.32);
        assert_eq!(s.wpki, 2.32);
    }

    #[test]
    fn all_benchmarks_present_and_named() {
        let all = BenchKind::all();
        assert_eq!(all.len(), 9);
        let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            ["bwaves", "gemsFDTD", "lbm", "leslie3d", "mcf", "wrf", "xalan", "zeusmp", "stream"]
        );
    }

    #[test]
    fn derived_quantities() {
        let p = BenchKind::Stream.profile();
        assert!((p.write_fraction() - 0.5).abs() < 1e-12);
        assert!((p.mean_gap_insns() - 1000.0 / 4.64).abs() < 1e-9);
    }

    #[test]
    fn intensity_classes() {
        assert!(BenchKind::Mcf.profile().memory_intensive());
        assert!(BenchKind::Lbm.profile().memory_intensive());
        assert!(BenchKind::Zeusmp.profile().memory_intensive());
        assert!(!BenchKind::Wrf.profile().memory_intensive());
        assert!(!BenchKind::Xalan.profile().memory_intensive());
    }

    #[test]
    fn gems_changes_fewest_bits() {
        let gems = BenchKind::GemsFdtd.profile().write_flip_bits_mean;
        for b in BenchKind::all() {
            if b != BenchKind::GemsFdtd {
                assert!(b.profile().write_flip_bits_mean > gems);
            }
        }
    }

    #[test]
    fn working_sets_positive() {
        for b in BenchKind::all() {
            assert!(b.profile().ws_pages > 0);
            assert!(b.profile().mpki() > 0.0);
        }
    }
}
