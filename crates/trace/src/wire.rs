//! Minimal hand-rolled binary serialization for on-disk trace caches.
//!
//! The workspace builds offline (no serde), so trace files use a tiny
//! length-prefixed little-endian format: a writer that appends primitive
//! values to a byte vector and a cursor-style reader that refuses to read
//! past the end. Every trace file ends with an FNV-1a digest of the
//! preceding bytes so truncated or bit-rotted files are rejected instead
//! of replayed.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` — the integrity digest appended to trace files.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append-only primitive writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends the FNV-1a digest of everything written so far and
    /// returns the finished byte vector.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let digest = fnv1a(&self.buf);
        self.buf.extend_from_slice(&digest.to_le_bytes());
        self.buf
    }
}

/// Why a trace file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The file is shorter than a well-formed record requires.
    Truncated,
    /// The trailing FNV-1a digest does not match the contents.
    DigestMismatch,
    /// The magic number or schema version is not the expected one.
    WrongSchema,
    /// A length or enum tag is out of its valid range.
    Malformed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "trace file truncated"),
            WireError::DigestMismatch => write!(f, "trace file digest mismatch"),
            WireError::WrongSchema => write!(f, "trace file has a different schema version"),
            WireError::Malformed => write!(f, "trace file malformed"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor-style primitive reader over a validated byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `bytes`, first checking the trailing FNV-1a digest; the
    /// digest itself is excluded from the readable range.
    pub fn checked(bytes: &'a [u8]) -> Result<Reader<'a>, WireError> {
        if bytes.len() < 8 {
            return Err(WireError::Truncated);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(body) != stored {
            return Err(WireError::DigestMismatch);
        }
        Ok(Reader { buf: body, pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string (length capped at 64 KiB —
    /// trace names are short, anything larger is corruption).
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let len = self.get_u32()? as usize;
        if len > 64 * 1024 {
            return Err(WireError::Malformed);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed)
    }

    /// Whether every byte has been consumed (trailing garbage is
    /// treated as corruption by callers).
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_str("mcf");
        let bytes = w.finish();
        let mut r = Reader::checked(&bytes).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xbeef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_str().unwrap(), "mcf");
        assert!(r.at_end());
    }

    #[test]
    fn corrupted_byte_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(42);
        let mut bytes = w.finish();
        bytes[3] ^= 1;
        assert_eq!(
            Reader::checked(&bytes).unwrap_err(),
            WireError::DigestMismatch
        );
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.finish();
        assert_eq!(
            Reader::checked(&bytes[..bytes.len() - 1]).unwrap_err(),
            WireError::DigestMismatch
        );
        assert_eq!(
            Reader::checked(&bytes[..4]).unwrap_err(),
            WireError::Truncated
        );
        let mut r = Reader::checked(&bytes).unwrap();
        let _ = r.get_u64().unwrap();
        assert!(r.get_u8().is_err());
    }
}
