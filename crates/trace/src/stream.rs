//! The actual STREAM kernels (copy / scale / add / triad) as an exact
//! access-pattern generator.
//!
//! [`crate::gen::TraceGenerator`] drives the figures with the
//! *statistical* profile of Table 3 (2.32 RPKI / 2.32 WPKI). This module
//! provides the structural alternative: three equal arrays `A`, `B`, `C`
//! walked by the four kernels in STREAM's canonical order,
//!
//! ```text
//! copy : C[i] = A[i]            read A,   write C
//! scale: B[i] = s·C[i]          read C,   write B
//! add  : C[i] = A[i] + B[i]     read A+B, write C
//! triad: A[i] = B[i] + s·C[i]   read B+C, write A
//! ```
//!
//! emitting one [`MemRef`] per 64 B line touched. Useful for driving the
//! controller with perfectly sequential multi-stream traffic (bank
//! conflicts, PreRead idle structure); note its read:write ratio is 3:2
//! (add/triad read two arrays), slightly above Table 3's 1:1.

use sdpcm_engine::SimRng;

use crate::addr::LINES_PER_PAGE;
use crate::gen::MemRef;

/// Which STREAM kernel an operation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `C[i] = A[i]`
    Copy,
    /// `B[i] = s·C[i]`
    Scale,
    /// `C[i] = A[i] + B[i]`
    Add,
    /// `A[i] = B[i] + s·C[i]`
    Triad,
}

impl Kernel {
    /// STREAM's canonical kernel order.
    pub const ORDER: [Kernel; 4] = [Kernel::Copy, Kernel::Scale, Kernel::Add, Kernel::Triad];

    /// `(source arrays, destination array)` as indices 0=A, 1=B, 2=C.
    #[must_use]
    pub fn operands(self) -> (&'static [usize], usize) {
        match self {
            Kernel::Copy => (&[0], 2),
            Kernel::Scale => (&[2], 1),
            Kernel::Add => (&[0, 1], 2),
            Kernel::Triad => (&[1, 2], 0),
        }
    }
}

/// Generator of the exact STREAM reference stream for one core.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::SimRng;
/// use sdpcm_trace::stream::StreamKernels;
///
/// let mut s = StreamKernels::new(0, 64, 20, SimRng::from_seed(3));
/// let first = s.next_ref();
/// assert!(!first.is_write, "copy starts by reading A");
/// assert_eq!(first.vpage, 0);
/// ```
#[derive(Debug, Clone)]
pub struct StreamKernels {
    core: u8,
    array_lines: u64,
    gap_mean: f64,
    rng: SimRng,
    kernel: usize,
    element: u64,
    op: usize,
}

impl StreamKernels {
    /// Creates a generator over three arrays of `array_pages` pages each
    /// (virtual pages `[0, 3·array_pages)`), with a mean instruction gap
    /// of `gap_mean` between references.
    ///
    /// # Panics
    ///
    /// Panics if `array_pages` is zero.
    #[must_use]
    pub fn new(core: u8, array_pages: u64, gap_mean: u64, rng: SimRng) -> StreamKernels {
        assert!(array_pages > 0, "arrays need at least one page");
        StreamKernels {
            core,
            array_lines: array_pages * LINES_PER_PAGE,
            gap_mean: gap_mean.max(1) as f64,
            rng,
            kernel: 0,
            element: 0,
            op: 0,
        }
    }

    /// Total virtual pages the three arrays occupy.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        3 * self.array_lines / LINES_PER_PAGE
    }

    /// The kernel currently executing.
    #[must_use]
    pub fn current_kernel(&self) -> Kernel {
        Kernel::ORDER[self.kernel]
    }

    fn addr_of(&self, array: usize, line: u64) -> (u64, u8) {
        let abs = array as u64 * self.array_lines + line;
        (abs / LINES_PER_PAGE, (abs % LINES_PER_PAGE) as u8)
    }

    /// Produces the next reference of the kernel walk.
    pub fn next_ref(&mut self) -> MemRef {
        let kernel = Kernel::ORDER[self.kernel];
        let (sources, dest) = kernel.operands();
        let gap = self.rng.geometric(1.0 / self.gap_mean) + 1;
        let (is_write, array) = if self.op < sources.len() {
            (false, sources[self.op])
        } else {
            (true, dest)
        };
        let (vpage, slot) = self.addr_of(array, self.element);
        let flip_bits = if is_write {
            // STREAM stores fresh floating-point values: most mantissa
            // bits change.
            self.rng.poisson(96.0).clamp(1, 512) as u16
        } else {
            0
        };

        // Advance the walk: ops within an element, elements within a
        // kernel, kernels in rotation.
        self.op += 1;
        if self.op > sources.len() {
            self.op = 0;
            self.element += 1;
            if self.element == self.array_lines {
                self.element = 0;
                self.kernel = (self.kernel + 1) % Kernel::ORDER.len();
            }
        }

        MemRef {
            core: self.core,
            gap,
            is_write,
            vpage,
            slot,
            flip_bits,
        }
    }
}

impl Iterator for StreamKernels {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        Some(self.next_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pages: u64) -> StreamKernels {
        StreamKernels::new(1, pages, 10, SimRng::from_seed_label(8, "stream-test"))
    }

    #[test]
    fn copy_reads_a_then_writes_c() {
        let mut s = gen(4);
        let r = s.next_ref();
        assert!(!r.is_write);
        assert_eq!(r.vpage, 0, "A starts at page 0");
        let w = s.next_ref();
        assert!(w.is_write);
        assert_eq!(w.vpage, 8, "C starts after A and B (2 × 4 pages)");
        assert_eq!(r.slot, w.slot);
    }

    #[test]
    fn kernels_rotate_in_canonical_order() {
        let mut s = gen(1); // 64 lines per array
        assert_eq!(s.current_kernel(), Kernel::Copy);
        // copy = 2 ops × 64 elements.
        for _ in 0..128 {
            let _ = s.next_ref();
        }
        assert_eq!(s.current_kernel(), Kernel::Scale);
        for _ in 0..128 {
            let _ = s.next_ref();
        }
        assert_eq!(s.current_kernel(), Kernel::Add);
        // add = 3 ops × 64 elements.
        for _ in 0..192 {
            let _ = s.next_ref();
        }
        assert_eq!(s.current_kernel(), Kernel::Triad);
        for _ in 0..192 {
            let _ = s.next_ref();
        }
        assert_eq!(s.current_kernel(), Kernel::Copy, "full rotation");
    }

    #[test]
    fn read_write_ratio_is_three_to_two() {
        let mut s = gen(2);
        let mut reads = 0u32;
        let mut writes = 0u32;
        // One full rotation = (2+2+3+3) ops × 128 elements.
        for _ in 0..(10 * 128) {
            if s.next_ref().is_write {
                writes += 1;
            } else {
                reads += 1;
            }
        }
        assert_eq!(reads, 6 * 128);
        assert_eq!(writes, 4 * 128);
    }

    #[test]
    fn addresses_stay_within_three_arrays() {
        let mut s = gen(4);
        for _ in 0..5_000 {
            let r = s.next_ref();
            assert!(r.vpage < s.total_pages());
        }
    }

    #[test]
    fn writes_per_element_target_the_kernel_destination() {
        let mut s = gen(1);
        // Triad writes A (array 0): skip to triad.
        for _ in 0..(2 + 2 + 3) * 64 {
            let _ = s.next_ref();
        }
        assert_eq!(s.current_kernel(), Kernel::Triad);
        let r1 = s.next_ref(); // read B
        let r2 = s.next_ref(); // read C
        let w = s.next_ref(); // write A
        assert!(!r1.is_write && !r2.is_write && w.is_write);
        assert_eq!(w.vpage, 0, "triad writes array A");
    }

    #[test]
    fn sequential_within_each_array() {
        let mut s = gen(2);
        let mut last_a_line = None;
        for _ in 0..256 {
            let r = s.next_ref();
            if !r.is_write && r.vpage < 2 {
                let line = r.vpage * LINES_PER_PAGE + u64::from(r.slot);
                if let Some(prev) = last_a_line {
                    assert_eq!(line, prev + 1, "A is walked sequentially");
                }
                last_a_line = Some(line);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a: Vec<MemRef> = gen(2).take(500).collect();
        let b: Vec<MemRef> = gen(2).take(500).collect();
        assert_eq!(a, b);
    }
}
