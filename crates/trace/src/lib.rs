#![warn(missing_docs)]

//! Synthetic workload generation for the SD-PCM reproduction.
//!
//! The paper drives its simulator with PIN-captured main-memory reference
//! traces of SPEC2006 and STREAM programs (10 M post-cache references per
//! workload, Table 3 lists each program's RPKI/WPKI). Those traces are
//! not redistributable, so this crate substitutes *statistical trace
//! generators* calibrated to the published per-benchmark read/write
//! intensities, with documented locality and bit-change knobs:
//!
//! * [`profiles`] — one [`profiles::BenchmarkProfile`]
//!   per program with the exact Table 3 RPKI/WPKI, an access pattern, a
//!   (scaled) working-set size, and the mean number of bits a write
//!   flips (gemsFDTD, for example, "changes less bits per write", §6.4).
//! * [`addr`] — address-stream generators: sequential, strided, uniform
//!   random and hot/cold mixtures over a per-core virtual page range.
//! * [`gen`] — the reference generator: an iterator of
//!   [`gen::MemRef`]s with geometric inter-arrival gaps matching
//!   `1000 / (RPKI + WPKI)` instructions between references.
//! * [`workload`] — multi-programmed workloads: eight cores each running
//!   one copy of a program in its own address space, as in §5.2.
//! * [`reftrace`] — capture-once/replay-many: a [`reftrace::RefTrace`]
//!   is the workload's post-cache reference stream recorded per core
//!   (kind, virtual line, instruction gap, payload toggle mask), shared
//!   by every scheme cell of a sweep instead of being regenerated.
//! * [`wire`] — the hand-rolled little-endian serialization behind the
//!   on-disk trace cache: length-prefixed fields, a schema version, and
//!   a trailing FNV-1a digest that rejects corrupt or stale files.
//!
//! What the substitution preserves: relative read/write intensity, bank
//! pressure, spatial locality class, and differential-write sizes — the
//! properties the evaluated schemes are sensitive to. Absolute IPC is not
//! comparable to the paper's (see `EXPERIMENTS.md`).

pub mod addr;
pub mod gen;
pub mod profiles;
pub mod reftrace;
pub mod stream;
pub mod wire;
pub mod workload;

pub use addr::{AccessPattern, AddressStream};
pub use gen::{MemRef, TraceGenerator};
pub use profiles::{BenchKind, BenchmarkProfile};
pub use reftrace::{RefSource, RefTrace, ToggleMask, TraceMeta, TraceRef, TRACE_SCHEMA_VERSION};
pub use stream::StreamKernels;
pub use workload::Workload;
