//! Multi-programmed workload assembly.
//!
//! §5.2: "each core runs one copy of these applications, forming
//! multi-programming workloads running in different virtual address
//! spaces". A [`Workload`] bundles the eight per-core generators; the
//! full-system simulator asks it for per-core streams and for the
//! per-core page demand (used to size the OS allocation).

use sdpcm_engine::SimRng;

use crate::gen::TraceGenerator;
use crate::profiles::{BenchKind, BenchmarkProfile};

/// Cores in the baseline CMP (Table 2).
pub const CORES: usize = 8;

/// An 8-core multi-programmed workload.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::SimRng;
/// use sdpcm_trace::{BenchKind, Workload};
///
/// let w = Workload::homogeneous(BenchKind::Lbm);
/// let gens = w.generators(SimRng::from_seed(3));
/// assert_eq!(gens.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    per_core: Vec<BenchmarkProfile>,
}

impl Workload {
    /// Eight copies of one benchmark (the paper's configuration).
    #[must_use]
    pub fn homogeneous(kind: BenchKind) -> Workload {
        Workload {
            name: kind.name().to_owned(),
            per_core: vec![kind.profile(); CORES],
        }
    }

    /// A custom per-core mix.
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`CORES`] profiles are supplied.
    #[must_use]
    pub fn mixed(name: &str, profiles: Vec<BenchmarkProfile>) -> Workload {
        assert_eq!(profiles.len(), CORES, "a workload has exactly 8 cores");
        Workload {
            name: name.to_owned(),
            per_core: profiles,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-core profiles.
    #[must_use]
    pub fn profiles(&self) -> &[BenchmarkProfile] {
        &self.per_core
    }

    /// Page demand of each core's address space.
    #[must_use]
    pub fn pages_per_core(&self) -> Vec<u64> {
        self.per_core.iter().map(|p| p.ws_pages).collect()
    }

    /// Total page demand across all cores.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.per_core.iter().map(|p| p.ws_pages).sum()
    }

    /// Builds the eight per-core trace generators, each with a derived
    /// RNG stream.
    #[must_use]
    pub fn generators(&self, mut rng: SimRng) -> Vec<TraceGenerator> {
        self.per_core
            .iter()
            .enumerate()
            .map(|(core, profile)| {
                let r = rng.derive(&format!("core{core}"));
                TraceGenerator::new(*profile, core as u8, r)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_has_8_same_profiles() {
        let w = Workload::homogeneous(BenchKind::Mcf);
        assert_eq!(w.name(), "mcf");
        assert_eq!(w.profiles().len(), CORES);
        assert!(w.profiles().iter().all(|p| p.kind == BenchKind::Mcf));
        assert_eq!(w.total_pages(), 8 * BenchKind::Mcf.profile().ws_pages);
    }

    #[test]
    fn generators_are_independent_streams() {
        let w = Workload::homogeneous(BenchKind::Stream);
        let mut gens = w.generators(SimRng::from_seed(4));
        let a: Vec<_> = (0..100).map(|_| gens[0].next_ref()).collect();
        let b: Vec<_> = (0..100).map(|_| gens[1].next_ref()).collect();
        // Same profile, different streams: address sequences must differ.
        assert_ne!(
            a.iter().map(|r| (r.vpage, r.slot)).collect::<Vec<_>>(),
            b.iter().map(|r| (r.vpage, r.slot)).collect::<Vec<_>>()
        );
        // Core ids are stamped correctly.
        assert!(a.iter().all(|r| r.core == 0));
        assert!(b.iter().all(|r| r.core == 1));
    }

    #[test]
    fn mixed_workload() {
        let profiles = vec![
            BenchKind::Mcf.profile(),
            BenchKind::Lbm.profile(),
            BenchKind::Wrf.profile(),
            BenchKind::Xalan.profile(),
            BenchKind::Stream.profile(),
            BenchKind::Bwaves.profile(),
            BenchKind::Zeusmp.profile(),
            BenchKind::Leslie3d.profile(),
        ];
        let w = Workload::mixed("mix1", profiles);
        assert_eq!(w.name(), "mix1");
        assert_eq!(w.generators(SimRng::from_seed(1)).len(), 8);
    }

    #[test]
    #[should_panic(expected = "exactly 8 cores")]
    fn wrong_core_count_panics() {
        let _ = Workload::mixed("bad", vec![BenchKind::Mcf.profile(); 3]);
    }
}
