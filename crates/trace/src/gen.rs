//! The main-memory reference generator.
//!
//! Emits the post-cache reference stream of one core running one
//! benchmark, mirroring the paper's PIN methodology (§5.2): references to
//! main memory with their instruction gaps, read/write kind drawn from
//! the RPKI/WPKI ratio, and — for writes — the differential-write size
//! (how many bits the store flips relative to the line's current
//! contents; the actual bit positions are drawn by the consumer against
//! the architectural data, keeping the trace compact).

use sdpcm_engine::SimRng;

use crate::addr::AddressStream;
use crate::profiles::BenchmarkProfile;

/// Cycles of cache-hierarchy stall folded into each instruction gap.
///
/// Table 3's RPKI/WPKI count *instructions*, but between two main-memory
/// references the in-order core also stalls on L1/L2/L3 hits (an L3 hit
/// alone costs 200 cycles, Table 2). Post-cache trace mode replays only
/// the main-memory references, so the wall-clock gap between them is the
/// instruction gap scaled by the average per-instruction stall — this
/// factor calibrates that (≈ the CPI the paper's hierarchy produces for
/// cache-resident execution).
pub const GAP_STALL_FACTOR: u64 = 4;

/// One main-memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Issuing core.
    pub core: u8,
    /// Instructions executed since the previous reference of this core
    /// (≈ cycles on the 1-CPI in-order cores).
    pub gap: u64,
    /// `true` for a write-back to PCM.
    pub is_write: bool,
    /// Virtual page within the core's address space.
    pub vpage: u64,
    /// 64 B line slot within the page.
    pub slot: u8,
    /// For writes: number of bits this store flips in the line.
    pub flip_bits: u16,
}

/// Generator of one core's reference stream.
///
/// # Examples
///
/// ```
/// use sdpcm_engine::SimRng;
/// use sdpcm_trace::{BenchKind, TraceGenerator};
///
/// let mut g = TraceGenerator::new(BenchKind::Mcf.profile(), 0, SimRng::from_seed(7));
/// let r = g.next_ref();
/// assert_eq!(r.core, 0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    core: u8,
    stream: AddressStream,
    rng: SimRng,
    gap_p: f64,
}

impl TraceGenerator {
    /// Creates a generator for `core` with its own derived RNG streams.
    #[must_use]
    pub fn new(profile: BenchmarkProfile, core: u8, mut rng: SimRng) -> TraceGenerator {
        let addr_rng = rng.derive("addr");
        let stream = AddressStream::new(profile.pattern, profile.ws_pages, addr_rng);
        // Geometric inter-arrival: success probability chosen so the mean
        // gap equals 1000/MPKI instructions.
        let mean = profile.mean_gap_insns().max(1.0);
        let gap_p = (1.0 / mean).clamp(1e-9, 1.0);
        let _ = GAP_STALL_FACTOR; // applied in next_ref
        TraceGenerator {
            profile,
            core,
            stream,
            rng,
            gap_p,
        }
    }

    /// The profile driving this generator.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Produces the next reference.
    pub fn next_ref(&mut self) -> MemRef {
        let gap = (self.rng.geometric(self.gap_p) + 1) * GAP_STALL_FACTOR;
        let (vpage, slot) = self.stream.next_line();
        let is_write = self.rng.chance(self.profile.write_fraction());
        let flip_bits = if is_write {
            let mean = self.profile.write_flip_bits_mean;
            self.rng.poisson(mean).clamp(1, 512) as u16
        } else {
            0
        };
        MemRef {
            core: self.core,
            gap,
            is_write,
            vpage,
            slot,
            flip_bits,
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        Some(self.next_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::BenchKind;

    fn collect(kind: BenchKind, n: usize) -> Vec<MemRef> {
        TraceGenerator::new(kind.profile(), 2, SimRng::from_seed_label(5, "gen-test"))
            .take(n)
            .collect()
    }

    #[test]
    fn write_fraction_matches_table3() {
        let refs = collect(BenchKind::Mcf, 50_000);
        let writes = refs.iter().filter(|r| r.is_write).count();
        let frac = writes as f64 / refs.len() as f64;
        let expect = BenchKind::Mcf.profile().write_fraction();
        assert!((frac - expect).abs() < 0.01, "frac={frac} expect={expect}");
    }

    #[test]
    fn mean_gap_matches_mpki_times_stall_factor() {
        let refs = collect(BenchKind::Zeusmp, 50_000);
        let mean: f64 = refs.iter().map(|r| r.gap as f64).sum::<f64>() / refs.len() as f64;
        let expect = BenchKind::Zeusmp.profile().mean_gap_insns() * GAP_STALL_FACTOR as f64;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean={mean} expect={expect}"
        );
    }

    #[test]
    fn flip_bits_mean_matches_profile() {
        let refs = collect(BenchKind::GemsFdtd, 50_000);
        let writes: Vec<&MemRef> = refs.iter().filter(|r| r.is_write).collect();
        assert!(!writes.is_empty());
        let mean: f64 =
            writes.iter().map(|r| f64::from(r.flip_bits)).sum::<f64>() / writes.len() as f64;
        let expect = BenchKind::GemsFdtd.profile().write_flip_bits_mean;
        assert!(
            (mean - expect).abs() / expect < 0.1,
            "mean={mean} expect={expect}"
        );
    }

    #[test]
    fn reads_carry_no_flips() {
        let refs = collect(BenchKind::Stream, 10_000);
        assert!(refs
            .iter()
            .filter(|r| !r.is_write)
            .all(|r| r.flip_bits == 0));
        assert!(refs.iter().filter(|r| r.is_write).all(|r| r.flip_bits >= 1));
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let p = BenchKind::Wrf.profile();
        let refs = collect(BenchKind::Wrf, 10_000);
        assert!(refs.iter().all(|r| r.vpage < p.ws_pages));
        assert!(refs.iter().all(|r| u64::from(r.slot) < 64));
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<MemRef> = TraceGenerator::new(BenchKind::Lbm.profile(), 0, SimRng::from_seed(1))
            .take(1000)
            .collect();
        let b: Vec<MemRef> = TraceGenerator::new(BenchKind::Lbm.profile(), 0, SimRng::from_seed(1))
            .take(1000)
            .collect();
        assert_eq!(a, b);
        let c: Vec<MemRef> = TraceGenerator::new(BenchKind::Lbm.profile(), 0, SimRng::from_seed(2))
            .take(1000)
            .collect();
        assert_ne!(a, c);
    }
}
