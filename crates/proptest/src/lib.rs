//! Vendored minimal property-testing shim.
//!
//! The build environment for this repository has no network access, so
//! the real `proptest` crate cannot be fetched. This crate is a small,
//! API-compatible stand-in covering exactly the surface the workspace's
//! tests use: the [`proptest!`] macro, `prop_assert*` macros, `any`,
//! range/tuple/collection strategies, `prop_map`, `sample::select`, and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics: each `proptest!` test runs `cases` deterministic random
//! cases (seeded from the test's name, so runs are reproducible and
//! independent across tests). There is no shrinking — a failing case
//! panics with the ordinary assertion message; re-running reproduces it
//! bit-exactly.

/// Deterministic case generation plumbing.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic stream for case `case` of test `name`.
        #[must_use]
        pub fn for_case(name: &str, case: u32) -> TestRng {
            const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = OFFSET;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(PRIME);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = rng.below(1 << 53) as f64 / (1u64 << 53) as f64;
            self.start + (self.end - self.start) * unit
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // 2^53 + 1 lattice points so both endpoints are reachable.
            let unit = rng.below((1 << 53) + 1) as f64 / (1u64 << 53) as f64;
            self.start() + (self.end() - self.start()) * unit
        }
    }

    /// A weighted union of same-valued strategies (see [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds the union; weights are relative selection frequencies.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights sum to total")
        }
    }

    /// Type-erases a strategy (the [`crate::prop_oneof!`] arm adapter).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end.saturating_sub(self.size.start)).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! impl_uniform {
        ($fname:ident, $n:expr, $sname:ident) => {
            /// The strategy returned by the matching `uniformN` function.
            #[derive(Debug, Clone)]
            pub struct $sname<S> {
                element: S,
            }

            impl<S: Strategy> Strategy for $sname<S> {
                type Value = [S::Value; $n];
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.element.generate(rng))
                }
            }

            /// An array strategy drawing every element from `element`.
            #[must_use]
            pub fn $fname<S: Strategy>(element: S) -> $sname<S> {
                $sname { element }
            }
        };
    }
    impl_uniform!(uniform4, 4, Uniform4);
    impl_uniform!(uniform8, 8, Uniform8);
    impl_uniform!(uniform16, 16, Uniform16);
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() requires options");
        Select { options }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Path-style access (`prop::sample::select`).
    pub mod prop {
        pub use crate::{array, collection, sample};
    }
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Picks among strategies, optionally weighted (`w => strategy`). All
/// arms must generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn composed_strategies_work(
            v in crate::collection::vec((0u8..5, any::<bool>()), 1..6),
            words in crate::array::uniform8(any::<u64>()),
            pick in prop::sample::select(vec![4usize, 8, 32]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|(a, _)| *a < 5));
            prop_assert_eq!(words.len(), 8);
            prop_assert!([4, 8, 32].contains(&pick));
        }

        #[test]
        fn prop_map_applies(n in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }

        #[test]
        fn oneof_unions_arms(
            p in prop_oneof![
                4 => 0.0f64..=1.0,
                1 => prop::sample::select(vec![-5.0f64, 7.0]),
            ],
            q in prop_oneof![0u64..3, 10u64..13],
        ) {
            prop_assert!((0.0..=1.0).contains(&p) || p == -5.0 || p == 7.0);
            prop_assert!(q < 3 || (10..13).contains(&q));
        }

        #[test]
        fn inclusive_f64_range_stays_in_bounds(x in -2.0f64..=3.0) {
            prop_assert!((-2.0..=3.0).contains(&x));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
