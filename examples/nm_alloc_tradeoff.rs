//! The (n:m)-Alloc dial: trading memory capacity for VnC overhead.
//!
//! Runs a write-intensive workload under basic VnC with each allocator
//! ratio and prints the performance/capacity trade-off of §4.4 — the
//! knob an OS can turn per application priority.
//!
//! ```text
//! cargo run --release --example nm_alloc_tradeoff
//! ```

use sdpcm::core::experiments::run_cell;
use sdpcm::core::{ExperimentParams, Scheme};
use sdpcm::osalloc::{NmRatio, VerifyPolicy};
use sdpcm::trace::BenchKind;

fn main() {
    let params = ExperimentParams {
        refs_per_core: 5_000,
        ..ExperimentParams::quick_test()
    };
    let bench = BenchKind::Lbm;

    println!(
        "(n:m)-Alloc trade-off on {} (write-intensive)\n",
        bench.name()
    );

    let din = run_cell(&Scheme::din(), bench, &params);
    let policy = VerifyPolicy::new(1 << 20);

    println!("allocator  usable capacity  adj. lines verified/write  speedup vs DIN");
    for ratio in [
        NmRatio::one_one(),
        NmRatio::three_four(),
        NmRatio::two_three(),
        NmRatio::one_two(),
    ] {
        let r = run_cell(&Scheme::baseline_with_ratio(ratio), bench, &params);
        println!(
            "{:<10} {:>8.1}%          {:>4.2}                      {:.3}",
            ratio.to_string(),
            ratio.capacity_fraction() * 100.0,
            policy.mean_interior_verifications(ratio),
            r.speedup_vs(&din),
        );
    }

    println!(
        "\nreading the dial: (1:2) wastes half the capacity but needs no VnC at all\n\
         (every data strip is isolated by a thermal band); (1:1) keeps everything\n\
         and pays for verifying both neighbours of every write. The OS can pick\n\
         per process — §4.4 integrates this with the buddy allocator, and the\n\
         4-bit tag travels through the page table and TLB to the controller."
    );
}
