//! Quickstart: build a super dense PCM system, run a workload under the
//! full SD-PCM scheme, and inspect what the machinery did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdpcm::core::experiments::run_cell;
use sdpcm::core::{ExperimentParams, Scheme};
use sdpcm::trace::BenchKind;

fn main() {
    let params = ExperimentParams {
        refs_per_core: 5_000,
        ..ExperimentParams::quick_test()
    };

    println!("SD-PCM quickstart: mcf on 4F2 super dense PCM\n");

    // The WD-free 8F2 reference design...
    let din = run_cell(&Scheme::din(), BenchKind::Mcf, &params);
    // ...the naive verify-and-correct baseline on 4F2...
    let baseline = run_cell(&Scheme::baseline(), BenchKind::Mcf, &params);
    // ...and the full SD-PCM recipe on the same 4F2 array.
    let sdpcm = run_cell(&Scheme::lazyc_preread_two_three(), BenchKind::Mcf, &params);

    println!("scheme                 cycles        speedup vs baseline");
    for r in [&din, &baseline, &sdpcm] {
        println!(
            "{:<22} {:>12}  {:.3}",
            r.scheme,
            r.total_cycles,
            r.speedup_vs(&baseline)
        );
    }

    println!("\nwhat the SD-PCM run did under the hood:");
    let s = &sdpcm.ctrl;
    println!("  demand writes committed      {}", s.writes);
    println!(
        "  bit-line WD errors/neighbor  {:.2} (max {})",
        s.bl_errors_per_neighbor.mean(),
        s.bl_errors_per_neighbor.max_observed().unwrap_or(0)
    );
    println!("  verification reads           {}", s.verification_ops);
    println!("  WD errors buffered in ECP    {}", s.ecp_records);
    println!(
        "  correction writes            {} ({:.3} per write)",
        s.correction_ops,
        s.corrections_per_write()
    );
    println!("  pre-reads hidden in idle     {}", s.prereads_issued);
    println!("  pre-reads forwarded          {}", s.preread_forwards);
    println!(
        "\ncell arrays: 4F2 super dense = 2x the density of the 8F2 DIN design,\n\
         at {:.1}% of its performance on this workload.",
        100.0 * sdpcm.speedup_vs(&din)
    );
}
