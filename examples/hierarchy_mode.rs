//! Full cache-hierarchy mode: drive the controller through L1/L2/L3.
//!
//! The paper's simulator models the whole hierarchy (Table 2) and
//! captures the post-cache reference stream with PIN. The benches use the
//! post-cache mode directly; this example runs the other front end: a
//! load/store stream filtered through the Table 2 caches, whose misses
//! and dirty write-backs become the PCM traffic.
//!
//! ```text
//! cargo run --release --example hierarchy_mode
//! ```

use sdpcm::cachesim::cache::AccessKind as CacheAccess;
use sdpcm::cachesim::hierarchy::{CoreCaches, HierarchyConfig};
use sdpcm::engine::{Cycle, SimRng};
use sdpcm::memctrl::{Access, AccessKind, CtrlConfig, CtrlScheme, MemoryController, ReqId};
use sdpcm::osalloc::NmRatio;
use sdpcm::pcm::geometry::MemGeometry;
use sdpcm::pcm::line::LineBuf;

fn main() {
    let geometry = MemGeometry::small(4096);
    let mut ctrl = MemoryController::new(
        CtrlConfig::table2(CtrlScheme::lazyc_preread()),
        geometry,
        SimRng::from_seed_label(7, "hierarchy-example"),
    );
    // A scaled-down hierarchy so the example produces PCM traffic quickly;
    // HierarchyConfig::table2() gives the paper's real sizes.
    let mut caches = CoreCaches::new(HierarchyConfig::tiny());
    let mut rng = SimRng::from_seed_label(7, "stream");

    let mut now = Cycle::ZERO;
    let mut next_id = 0u64;
    let total_lines: u64 = 64 * 512; // walk a 2 MB region with some reuse
    let mut pcm_reads = 0u64;
    let mut pcm_writes = 0u64;

    for i in 0..200_000u64 {
        // 70% reads, 30% writes; 80% of traffic in a hot eighth.
        let hot = rng.chance(0.8);
        let line = if hot {
            rng.below(total_lines / 8)
        } else {
            rng.below(total_lines)
        };
        let kind = if rng.chance(0.3) {
            CacheAccess::Write
        } else {
            CacheAccess::Read
        };
        let out = caches.access(line, kind);
        now += out.latency + Cycle(4); // core work between accesses

        let mut submit = |ctrl: &mut MemoryController, line: u64, write: bool, now: Cycle| {
            let addr = ctrl.store().geometry().line_of(line * 64);
            let kind = if write {
                // Write back the line's current data with a few flips.
                let mut data = ctrl.latest_architectural(addr);
                for b in 0..48 {
                    let bit = (line as usize * 7 + b * 11) % 512;
                    let v = data.bit(bit);
                    data.set_bit(bit, !v);
                }
                AccessKind::Write(data)
            } else {
                AccessKind::Read
            };
            ctrl.submit(
                Access {
                    id: ReqId(next_id),
                    addr,
                    kind,
                    ratio: NmRatio::one_one(),
                    core: 0,
                    arrive: now,
                },
                now,
            )
            .unwrap();
            next_id += 1;
        };

        if let Some(fill) = out.pcm_fill {
            pcm_reads += 1;
            submit(&mut ctrl, fill, false, now);
        }
        for wb in &out.pcm_writebacks {
            pcm_writes += 1;
            submit(&mut ctrl, *wb, true, now);
        }
        // Let the controller catch up now and then.
        if i % 64 == 0 {
            let _ = ctrl.advance(now).unwrap();
        }
    }
    ctrl.drain_all(now);
    while let Some(t) = ctrl.next_event() {
        let _ = ctrl.advance(t).unwrap();
        ctrl.drain_all(t);
    }

    let [(h1, m1), (h2, m2), (h3, m3)] = caches.stats();
    println!("hierarchy filtering of 200k core accesses:");
    println!("  L1: {h1} hits / {m1} misses");
    println!("  L2: {h2} hits / {m2} misses");
    println!("  L3: {h3} hits / {m3} misses");
    println!("  -> PCM demand fills: {pcm_reads}, PCM write-backs: {pcm_writes}");
    let s = ctrl.stats();
    println!("\ncontroller under that traffic (LazyC+PreRead on 4F2):");
    println!("  array writes committed: {}", s.writes);
    println!("  verification reads:     {}", s.verification_ops);
    println!("  WD errors buffered:     {}", s.ecp_records);
    println!("  corrections:            {}", s.correction_ops);
    let _ = LineBuf::zeroed(); // keep the import used even if flips change
}
