//! WD-aware DMA (paper §4.4, "DMA support").
//!
//! DMA engines address physical memory and expect consecutive frames.
//! Under (n:m)-Alloc the physically consecutive layout has holes — the
//! marked strips — so the paper teaches the DMA controller the allocator
//! tag: (1:1) transfers walk densely, (1:2) transfers skip every other
//! strip. This example runs both kinds of transfer end-to-end through
//! the memory controller and verifies the copied data.
//!
//! ```text
//! cargo run --release --example dma_transfer
//! ```

use sdpcm::engine::{Cycle, SimRng};
use sdpcm::memctrl::{Access, AccessKind, CtrlConfig, CtrlScheme, MemoryController, ReqId};
use sdpcm::osalloc::dma::DmaController;
use sdpcm::osalloc::NmRatio;
use sdpcm::pcm::geometry::{LineAddr, MemGeometry, PageId};
use sdpcm::pcm::line::LineBuf;

fn line_addr(geometry: &MemGeometry, frame: u64, slot: u8) -> LineAddr {
    let (bank, row) = geometry.page_to_bank_row(PageId(frame));
    LineAddr { bank, row, slot }
}

fn settle(ctrl: &mut MemoryController, now: Cycle) {
    ctrl.drain_all(now);
    while let Some(t) = ctrl.next_event() {
        let _ = ctrl.advance(t).unwrap();
        ctrl.drain_all(t);
    }
}

fn main() {
    let geometry = MemGeometry::small(512);
    let mut ctrl = MemoryController::new(
        CtrlConfig::table2(CtrlScheme::lazyc()),
        geometry,
        SimRng::from_seed_label(14, "dma-example"),
    );
    let dma = DmaController::new();
    let mut rng = SimRng::from_seed_label(14, "dma-data");
    let mut now = Cycle::ZERO;
    let mut next_id = 0u64;

    for ratio in [NmRatio::one_one(), NmRatio::one_two()] {
        println!("== DMA transfer under {ratio} ==");
        assert!(dma.supports(ratio));

        // A 24-frame buffer starting at frame 0; the walk is the DMA
        // engine's physical address sequence.
        let walk = dma.walk(ratio, 0, 24).expect("supported configuration");
        println!(
            "  physical frames touched: {} .. {} ({} frames, span {})",
            walk[0],
            walk.last().unwrap(),
            walk.len(),
            walk.last().unwrap() - walk[0] + 1
        );

        // Fill the buffer via the controller (the "device writes memory"
        // half of a DMA), then read it back and verify.
        let mut written = Vec::new();
        for &frame in &walk {
            let addr = line_addr(&geometry, frame, 0);
            let mut data = LineBuf::zeroed();
            for _ in 0..64 {
                data.set_bit(rng.index(512), true);
            }
            written.push((addr, data));
            now += Cycle(100);
            next_id += 1;
            ctrl.submit(
                Access {
                    id: ReqId(next_id),
                    addr,
                    kind: AccessKind::Write(data),
                    ratio,
                    core: 0,
                    arrive: now,
                },
                now,
            )
            .unwrap();
        }
        settle(&mut ctrl, now);
        let ok = written
            .iter()
            .all(|(addr, data)| ctrl.architectural_line(*addr) == *data);
        println!(
            "  transfer verified: {} ({} lines)",
            if ok { "OK" } else { "CORRUPT" },
            written.len()
        );
        assert!(ok);

        // Under (1:2) no line of the transfer needed any verification.
        if ratio == NmRatio::one_two() {
            println!(
                "  verification reads so far: {} (interior (1:2) strips need none)",
                ctrl.stats().verification_ops
            );
        }
        println!();
    }

    // Unsupported ratios are rejected up front, as §4.4 specifies.
    let err = dma.walk(NmRatio::two_three(), 0, 8).unwrap_err();
    println!("(2:3) transfer rejected as designed: {err}");
}
