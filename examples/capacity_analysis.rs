//! Capacity/area analysis: the economics behind super dense PCM.
//!
//! Walks through the paper's §3.1 and §6.1 numbers: cell sizes of the
//! three array designs, equal-area capacity, and chip-count/area
//! comparisons — all computed from the `sdpcm-pcm` capacity model.
//!
//! ```text
//! cargo run --release --example capacity_analysis
//! ```

use sdpcm::pcm::capacity::{self, ArrayDesign, CapacityComparison, CELL_ARRAY_CHIP_FRACTION};
use sdpcm::wd::scaling::ArraySpacing;
use sdpcm::wd::thermal::{Direction, ThermalModel, CRYSTALLIZATION_C};

fn main() {
    println!("== Cell-array designs (paper Figure 1) ==\n");
    let thermal = ThermalModel::calibrated_20nm();
    let designs = [
        (
            ArrayDesign::SuperDense,
            ArraySpacing::super_dense(),
            "SD-PCM target",
        ),
        (
            ArrayDesign::DinEnhanced,
            ArraySpacing::din_enhanced(),
            "DIN [DSN'14]",
        ),
        (
            ArrayDesign::Prototype,
            ArraySpacing::prototype(),
            "prototype [ISSCC'12]",
        ),
    ];
    println!("design        cell   capacity-vs-ideal  WL-neighbor  BL-neighbor  WD exposure");
    for (design, spacing, label) in designs {
        let wl = thermal.neighbor_temp(Direction::WordLine, 20.0 * spacing.wordline.in_f());
        let bl = thermal.neighbor_temp(Direction::BitLine, 20.0 * spacing.bitline.in_f());
        let exposure = match (wl >= CRYSTALLIZATION_C, bl >= CRYSTALLIZATION_C) {
            (true, true) => "word-lines + bit-lines",
            (true, false) => "word-lines only",
            (false, true) => "bit-lines only",
            (false, false) => "none",
        };
        println!(
            "{label:<21} {:>2}F2  {:>6.1}%            {wl:>5.0} C      {bl:>5.0} C    {exposure}",
            design.cell_size_f2(),
            design.capacity_fraction_of_ideal() * 100.0,
        );
    }

    println!("\n== Equal-area capacity (paper §6.1) ==\n");
    let CapacityComparison {
        sd_pcm_gb,
        din_gb,
        improvement,
    } = capacity::equal_area_comparison();
    println!("same total cell-array silicon:");
    println!("  SD-PCM (8 dense data chips + double-array low-density ECP): {sd_pcm_gb:.2} GB");
    println!("  DIN    (everything at 8F2):                                 {din_gb:.2} GB");
    println!(
        "  capacity improvement:                                       {:.0}%",
        improvement * 100.0
    );

    println!("\n== Chip-level comparisons ==\n");
    let (din_chips, sd_chips, reduction) = capacity::equal_size_chip_comparison();
    println!("building 4 GB from equal-size chips: DIN needs {din_chips}, SD-PCM needs {sd_chips} ({:.0}% fewer)", reduction * 100.0);
    println!(
        "with big (double-array) chips for the low-density parts: {:.1}% total chip-area reduction",
        capacity::big_chip_area_reduction() * 100.0
    );
    println!(
        "\n(cell arrays occupy {:.1}% of chip area in the prototype, so a 33% array-density gain\n\
         is only a {:.1}% chip shrink — §3.1's point about DIN)",
        CELL_ARRAY_CHIP_FRACTION * 100.0,
        capacity::chip_size_reduction(1.0 / 3.0) * 100.0
    );
}
