//! Exploring the write-disturbance model across technology nodes.
//!
//! WD appeared at 54 nm and became a first-order problem at 20 nm
//! (paper §2.2). This example sweeps the scaling ladder and prints the
//! neighbour temperatures and per-RESET disturbance probabilities the
//! calibrated thermal model predicts for each spacing option.
//!
//! ```text
//! cargo run --release --example disturbance_model
//! ```

use sdpcm::wd::disturb::DisturbanceModel;
use sdpcm::wd::scaling::{Spacing, TechNode};
use sdpcm::wd::thermal::{Direction, ThermalModel, CRYSTALLIZATION_C};

fn main() {
    let thermal = ThermalModel::calibrated_20nm();
    let model = DisturbanceModel::calibrated();

    println!("Write-disturbance risk across the scaling ladder");
    println!("(idle amorphous neighbour temperature during a RESET; disturbance");
    println!(" requires crossing the {CRYSTALLIZATION_C:.0} C crystallization threshold)\n");

    println!("node    spacing  dist    WL temp  WL p(disturb)  BL temp  BL p(disturb)");
    for node in TechNode::ladder() {
        for spacing in [Spacing::TwoF, Spacing::ThreeF, Spacing::FourF] {
            let d = node.distance_nm(spacing);
            let wl_t = thermal.neighbor_temp(Direction::WordLine, d);
            let bl_t = thermal.neighbor_temp(Direction::BitLine, d);
            println!(
                "{:>4}nm  {:>4.0}F   {:>4.0}nm   {:>5.0} C  {:>8.2}%      {:>5.0} C  {:>8.2}%",
                node.feature_nm(),
                spacing.in_f(),
                d,
                wl_t,
                model.probability_at(wl_t) * 100.0,
                bl_t,
                model.probability_at(bl_t) * 100.0,
            );
        }
        println!();
    }

    println!("observations the paper builds on:");
    println!(" * at 54 nm even minimal 2F spacing stays below crystallization — WD was");
    println!("   only just measurable there [VLSIT'10];");
    println!(" * at 20 nm / 2F both directions disturb (Table 1: 9.9% / 11.5%), and the");
    println!("   bit-line direction is hotter because cells share a GST rail (uTrench);");
    println!(" * guard bands work — 3F on bit-lines or 4F on word-lines is WD-free —");
    println!("   but cost 2-3x the cell area, which is exactly what SD-PCM avoids.");
}
