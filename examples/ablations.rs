//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **DIN group size** — smaller inversion groups give the encoder more
//!    freedom against word-line-vulnerable patterns, at more flag bits.
//! 2. **Encoder objective** — DIN (disturbance-aware) vs Flip-N-Write
//!    (wear-aware) vs identity: the same mechanism, opposite goals.
//! 3. **ECP record placement** — overlapped on the dedicated ECP chip
//!    (SD-PCM's design, Figure 7) vs occupying the bank like a data op.
//! 4. **Read-priority mechanism** — write cancellation vs write pausing.
//! 5. **Start-Gap ψ** — wear-levelling copy overhead vs gap speed.
//!
//! ```text
//! cargo run --release --example ablations
//! ```

use sdpcm::core::experiments::run_cell;
use sdpcm::core::{ExperimentParams, Scheme};
use sdpcm::engine::SimRng;
use sdpcm::osalloc::NmRatio;
use sdpcm::pcm::line::{DiffMask, LineBuf};
use sdpcm::trace::BenchKind;
use sdpcm::wd::din::{DinCodec, DinFlags};
use sdpcm::wd::fnw::FnwCodec;
use sdpcm::wd::pattern::wordline_vulnerable_count;

fn random_line(rng: &mut SimRng) -> LineBuf {
    let mut words = [0u64; 8];
    for w in &mut words {
        *w = rng.next_u64();
    }
    LineBuf::from_words(words)
}

fn main() {
    let params = ExperimentParams {
        refs_per_core: 4_000,
        ..ExperimentParams::quick_test()
    };

    println!("== 1. DIN group size (victims & programmed cells per write) ==\n");
    println!("group  flags/line  WL-vulnerable/write  cells programmed/write");
    for group in [8usize, 16, 32, 64] {
        let codec = DinCodec::new(group);
        let mut rng = SimRng::from_seed_label(31, "ablate-din");
        let (mut stored, mut flags) = (LineBuf::zeroed(), DinFlags::default());
        let (mut vic, mut cost) = (0usize, 0u64);
        let n = 400;
        for _ in 0..n {
            let plain = random_line(&mut rng);
            let (enc, f) = codec.encode(&plain, &stored, flags);
            let d = DiffMask::between(&stored, &enc);
            vic += wordline_vulnerable_count(&enc, &d);
            cost += u64::from(d.changed_count());
            stored = enc;
            flags = f;
        }
        println!(
            "{group:>5}  {:>10}  {:>19.2}  {:>22.1}",
            codec.overhead_bits(),
            vic as f64 / f64::from(n),
            cost as f64 / f64::from(n)
        );
    }

    println!("\n== 2. Encoder objective: DIN vs Flip-N-Write vs identity ==\n");
    println!("encoder    WL-vulnerable/write  cells programmed/write");
    let run_encoder =
        |name: &str, enc: &dyn Fn(&LineBuf, &LineBuf, DinFlags) -> (LineBuf, DinFlags)| {
            let mut rng = SimRng::from_seed_label(32, "ablate-enc");
            let (mut stored, mut flags) = (LineBuf::zeroed(), DinFlags::default());
            let (mut vic, mut cost) = (0usize, 0u64);
            let n = 400;
            for _ in 0..n {
                let plain = random_line(&mut rng);
                let (e, f) = enc(&plain, &stored, flags);
                let d = DiffMask::between(&stored, &e);
                vic += wordline_vulnerable_count(&e, &d);
                cost += u64::from(d.changed_count());
                stored = e;
                flags = f;
            }
            println!(
                "{name:<10} {:>18.2}  {:>22.1}",
                vic as f64 / f64::from(n),
                cost as f64 / f64::from(n)
            );
        };
    let din = DinCodec::new(8);
    let fnw = FnwCodec::new(8);
    run_encoder("DIN", &|p, s, f| din.encode(p, s, f));
    run_encoder("FNW", &|p, s, f| fnw.encode(p, s, f));
    run_encoder("identity", &|p, _s, _f| (*p, DinFlags::default()));

    println!("\n== 3. ECP record placement (LazyC on lbm) ==\n");
    let base = run_cell(&Scheme::baseline(), BenchKind::Lbm, &params);
    let overlapped = run_cell(&Scheme::lazyc(), BenchKind::Lbm, &params);
    let inline = run_cell(
        &Scheme {
            name: "LazyC(inline-ECP)".into(),
            ctrl: Scheme::lazyc().ctrl.with_inline_ecp_writes(),
            ratio: NmRatio::one_one(),
        },
        BenchKind::Lbm,
        &params,
    );
    println!("placement   speedup vs basic VnC");
    println!(
        "overlapped  {:.3}   (dedicated ECP chip, Figure 7)",
        overlapped.speedup_vs(&base)
    );
    println!(
        "inline      {:.3}   (records occupy the bank)",
        inline.speedup_vs(&base)
    );

    println!("\n== 4. Write cancellation vs write pausing (LazyC on mcf) ==\n");
    let bench = BenchKind::Mcf;
    let plain = run_cell(&Scheme::lazyc(), bench, &params);
    let wc = run_cell(
        &Scheme {
            name: "LazyC+WC".into(),
            ctrl: Scheme::lazyc().ctrl.with_write_cancellation(),
            ratio: NmRatio::one_one(),
        },
        bench,
        &params,
    );
    let wp = run_cell(
        &Scheme {
            name: "LazyC+WP".into(),
            ctrl: Scheme::lazyc().ctrl.with_write_pausing(),
            ratio: NmRatio::one_one(),
        },
        bench,
        &params,
    );
    println!("mechanism     speedup vs LazyC  avg read lat  p99 read lat  events");
    println!(
        "none          {:>7.3}          {:>7.0} cyc  {:>8} cyc",
        1.0,
        plain.ctrl.avg_read_latency(),
        plain.ctrl.read_latency_quantile(0.99)
    );
    println!(
        "cancellation  {:>7.3}          {:>7.0} cyc  {:>8} cyc  {} cancels",
        wc.speedup_vs(&plain),
        wc.ctrl.avg_read_latency(),
        wc.ctrl.read_latency_quantile(0.99),
        wc.ctrl.write_cancellations
    );
    println!(
        "pausing       {:>7.3}          {:>7.0} cyc  {:>8} cyc  {} pauses",
        wp.speedup_vs(&plain),
        wp.ctrl.avg_read_latency(),
        wp.ctrl.read_latency_quantile(0.99),
        wp.ctrl.write_pauses
    );

    println!("\n== 5. Array-energy overhead of each scheme (lbm) ==\n");
    println!("scheme               energy overhead vs demand traffic");
    for s in [
        Scheme::din(),
        Scheme::baseline(),
        Scheme::lazyc(),
        Scheme::lazyc_preread_two_three(),
        Scheme::one_two_alloc(),
    ] {
        let r = run_cell(&s, BenchKind::Lbm, &params);
        println!(
            "{:<20} {:>6.1}%",
            s.name,
            r.energy.overhead_fraction() * 100.0
        );
    }

    println!("\n== 6. Start-Gap gap period (DIN on zeusmp) ==\n");
    let no_sg = run_cell(&Scheme::din(), BenchKind::Zeusmp, &params);
    println!("psi      speedup vs no-wear-leveling  gap moves");
    for psi in [16u32, 64, 256] {
        let r = run_cell(
            &Scheme {
                name: format!("DIN+SG{psi}"),
                ctrl: Scheme::din().ctrl.with_start_gap(psi),
                ratio: NmRatio::one_one(),
            },
            BenchKind::Zeusmp,
            &params,
        );
        println!(
            "{psi:>4}     {:>10.3}                 {:>9}",
            r.speedup_vs(&no_sg),
            r.ctrl.gap_moves
        );
    }
    println!("\n(smaller psi levels wear faster but pays more copy bandwidth)");
}
